#!/usr/bin/env python3
"""Consolidated cluster with priorities: the paper's motivating story.

The introduction motivates the work with consolidated clusters where
production (high-priority) jobs share nodes with best-effort jobs.
This example runs a small best-effort batch alongside periodic
production jobs and compares the three preemption primitives on:

* production-job latency (the business metric), and
* total batch makespan (the wasted-work metric).

Run:
    python examples/priority_consolidation.py
"""

from repro import HadoopCluster, MB, make_primitive
from repro.metrics.stats import summarize
from repro.schedulers.dummy import DummyScheduler
from repro.workloads.jobspec import JobSpec, TaskSpec


def best_effort_batch(num_jobs: int = 3):
    """Long exploratory jobs (the 'data exploration' class)."""
    return [
        JobSpec(
            name=f"batch-{i}",
            priority=0,
            tasks=[
                TaskSpec(
                    input_bytes=640 * MB,
                    parse_rate=7 * MB,
                    name=f"batch-{i}-t{t}",
                )
                for t in range(2)
            ],
        )
        for i in range(num_jobs)
    ]


def production_job(index: int) -> JobSpec:
    """Short, latency-critical production jobs."""
    return JobSpec(
        name=f"prod-{index}",
        priority=10,
        tasks=[TaskSpec(input_bytes=128 * MB, parse_rate=7 * MB)],
    )


def run(primitive_name: str):
    cluster = HadoopCluster(
        num_nodes=2,
        scheduler=DummyScheduler(),
        seed=11,
        trace=False,
    )
    primitive = make_primitive(primitive_name, cluster)
    batch_jobs = [cluster.submit_job(spec) for spec in best_effort_batch()]
    suspended = []

    def arrival(index: int):
        def submit() -> None:
            cluster.jobtracker.submit_job(production_job(index))
            # Preempt one running best-effort task per needed slot.
            from repro.preemption.eviction import (
                SmallestMemoryPolicy,
                collect_candidates,
            )

            protect = {f"prod-{index}"}
            candidates = collect_candidates(cluster, protect_jobs=protect)
            for victim in SmallestMemoryPolicy().choose(candidates, 1):
                try:
                    primitive.preempt(victim.tip)
                    suspended.append(victim.tip)
                except Exception:
                    pass

        return submit

    # Three production arrivals while the batch churns.
    for i, at in enumerate((40.0, 120.0, 200.0)):
        cluster.sim.schedule(at, arrival(i))

    def restore(job) -> None:
        if job.spec.name.startswith("prod-"):
            for tip in list(suspended):
                primitive.restore(tip)
            suspended.clear()

    cluster.jobtracker.on_job_complete(restore)
    cluster.run_until_jobs_complete(timeout=36_000)

    prod_sojourns = [
        job.sojourn_time
        for job in cluster.jobtracker.jobs.values()
        if job.spec.name.startswith("prod-")
    ]
    finish = max(j.finish_time for j in cluster.jobtracker.jobs.values())
    start = min(j.submit_time for j in batch_jobs)
    return summarize(prod_sojourns).mean, finish - start


def main() -> None:
    print("consolidated cluster: 3 best-effort jobs + 3 production arrivals\n")
    print(f"{'primitive':>10} | {'prod sojourn (s)':>16} | {'batch makespan (s)':>18}")
    print("-" * 52)
    for name in ("wait", "kill", "suspend"):
        sojourn, makespan = run(name)
        print(f"{name:>10} | {sojourn:16.1f} | {makespan:18.1f}")
    print(
        "\nsuspend gives production jobs kill-like latency at wait-like "
        "makespan:\nthe gap the paper's abstract promises to fill."
    )


if __name__ == "__main__":
    main()
