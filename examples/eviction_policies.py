#!/usr/bin/env python3
"""Eviction policies: deciding *which* task to suspend (Section V-A).

Four background tasks with different progress and memory footprints
run on two nodes; a high-priority job arrives and two of them must be
preempted.  The policy choice changes swap traffic and makespan even
though the mechanism (suspend/resume) is identical.

Run:
    python examples/eviction_policies.py
"""

from repro.experiments.eviction_study import run_eviction_study


def main() -> None:
    report = run_eviction_study(runs=3)
    print(report.render(plots=False))
    print()
    metrics = report.extras["metrics"]
    policies = report.extras["policies"]

    def mean(policy, key):
        values = metrics[policy][key]
        return sum(values) / len(values)

    best_swap = min(policies, key=lambda p: mean(p, "swapped_mb"))
    best_makespan = min(policies, key=lambda p: mean(p, "makespan"))
    print(f"least swap traffic : {best_swap} "
          f"({mean(best_swap, 'swapped_mb'):.0f} MB)")
    print(f"best makespan      : {best_makespan} "
          f"({mean(best_makespan, 'makespan'):.1f} s)")
    print(
        "\nThe paper's guidance: pick small-memory victims to minimise\n"
        "paging; pick nearly-done victims to keep sojourn times tight."
    )


if __name__ == "__main__":
    main()
