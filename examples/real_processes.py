#!/usr/bin/env python3
"""The primitive on real processes: live SIGTSTP/SIGCONT/SIGKILL.

Everything else in this repository simulates; this script actually
does it.  It spawns genuine worker processes, suspends one with
SIGTSTP mid-parse (watch /proc report state 'T'), runs the
high-priority worker, resumes with SIGCONT, and prints wall-clock
sojourn/makespan for all three primitives.

Run (Linux only):
    python examples/real_processes.py
"""

import sys
import time

from repro.posixrt.controller import WorkerHandle, WorkerSpec
from repro.posixrt.runner import MiniExperiment
from repro.units import MB, format_size


def demonstrate_signals() -> None:
    """Step-by-step: suspend a live worker and watch /proc."""
    print("--- live signal demo ---")
    spec = WorkerSpec(
        input_bytes=8 * MB,
        memory_bytes=32 * MB,
        rate_bytes_per_sec=4 * MB,
        name="demo",
    )
    with WorkerHandle(spec) as worker:
        worker.wait_progress(0.25, timeout=30)
        status = worker.proc_status()
        print(f"pid {worker.pid}: state={status.state} "
              f"rss={format_size(status.vm_rss_bytes)} "
              f"progress={worker.progress():.0%}")
        print("sending SIGTSTP ...")
        worker.suspend()
        worker.wait_stopped(timeout=10)
        status = worker.proc_status()
        print(f"pid {worker.pid}: state={status.state} (stopped by job control)")
        frozen = worker.progress()
        time.sleep(0.3)
        assert worker.progress() == frozen, "progress must freeze while stopped"
        print(f"progress frozen at {frozen:.0%} while suspended")
        print("sending SIGCONT ...")
        worker.resume()
        worker.wait_done(timeout=60)
        print(f"worker finished; progress={worker.progress():.0%}\n")


def compare_primitives() -> None:
    print("--- two-job microbenchmark on real processes ---")
    experiment = MiniExperiment(
        input_mb=6, rate_mb_per_sec=8.0, progress_at_launch=0.5
    )
    rows = experiment.compare(("wait", "kill", "suspend"))
    print(f"{'primitive':>10} | {'th sojourn (s)':>14} | {'makespan (s)':>12}")
    print("-" * 44)
    for name, outcome in rows.items():
        print(f"{name:>10} | {outcome.sojourn_th:14.2f} | {outcome.makespan:12.2f}")
    print(
        "\nsuspend matches kill on latency and wait on makespan -- the\n"
        "paper's result, reproduced with real POSIX signals."
    )


def main() -> int:
    if not sys.platform.startswith("linux"):
        print("this demo needs Linux (POSIX signals + /proc)")
        return 1
    demonstrate_signals()
    compare_primitives()
    return 0


if __name__ == "__main__":
    sys.exit(main())
