#!/usr/bin/env python3
"""Worst-case memory study: watching the OS page a suspended task.

Reproduces the mechanics behind Figures 3-4 at one data point and
narrates what the kernel model does: the high-priority task's
allocation drops the page cache first (swappiness 0), then pages the
suspended task out to swap; the resume faults everything back in.

Run:
    python examples/memory_hungry.py
"""

from repro import GB, HadoopCluster, MB, SuspendResumePrimitive
from repro.experiments.params import paper_hadoop_config, paper_node_config
from repro.schedulers.dummy import DummyScheduler
from repro.units import format_size
from repro.workloads.synthetic import two_job_microbenchmark


def snapshot(cluster, label: str) -> None:
    summary = cluster.kernel_of("node00").memory_summary()
    print(
        f"  [{cluster.sim.now:7.1f}s] {label:<28} "
        f"free={format_size(summary['free_ram']):>9} "
        f"cache={format_size(summary['page_cache']):>9} "
        f"swap={format_size(summary['swap_used']):>9}"
    )


def main() -> None:
    cluster = HadoopCluster(
        num_nodes=1,
        node_config=paper_node_config(),
        hadoop_config=paper_hadoop_config(),
        scheduler=DummyScheduler(),
        seed=3,
    )
    tl_spec, th_spec = two_job_microbenchmark(
        heavy=True, tl_footprint=int(2.5 * GB), th_footprint=2 * GB
    )
    primitive = SuspendResumePrimitive(cluster)
    job_tl = cluster.submit_job(tl_spec)

    print("4 GB node; tl allocates 2.5 GB, th allocates 2 GB\n")
    snapshot(cluster, "boot")

    def preempt() -> None:
        snapshot(cluster, "tl at 50% (before suspend)")
        cluster.jobtracker.submit_job(th_spec)
        primitive.preempt(job_tl.tips[0])

    cluster.when_job_progress("tl", 0.5, preempt)

    def on_complete(job) -> None:
        if job.spec.name == "th":
            snapshot(cluster, "th done (tl paged out)")
            primitive.restore(job_tl.tips[0])
        else:
            snapshot(cluster, "tl done (faulted back in)")

    cluster.jobtracker.on_job_complete(on_complete)
    cluster.run_until_jobs_complete()

    attempt_tl = cluster.attempts_of("tl")[0]
    attempt_th = cluster.attempts_of("th")[0]
    job_th = cluster.job_by_name("th")
    makespan = max(job_tl.finish_time, job_th.finish_time) - job_tl.submit_time

    print()
    print(f"tl bytes ever paged out : {format_size(attempt_tl.lifetime_swapped_bytes())}")
    print(f"th bytes ever paged out : {format_size(attempt_th.lifetime_swapped_bytes())}"
          "  (the allocator self-swaps under heavy pressure)")
    print(f"th sojourn time         : {job_th.sojourn_time:.1f} s")
    print(f"makespan                : {makespan:.1f} s")
    print(
        "\nCompare with examples/quickstart.py (light tasks): the suspended\n"
        "task stays entirely in RAM there, so suspension is free."
    )


if __name__ == "__main__":
    main()
