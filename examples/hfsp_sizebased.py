#!/usr/bin/env python3
"""HFSP + suspend: size-based scheduling with the new primitive.

The paper's conclusion reports "preliminary results showing that our
preemption primitive performs well in the context of HFSP, our
size-based scheduler".  This example schedules a SWIM-like mix of
short and long jobs under HFSP and compares the primitives on
short-job sojourn (what size-based scheduling optimises) and total
makespan (what kill-style preemption damages).

Run:
    python examples/hfsp_sizebased.py
"""

from repro import HadoopCluster, MB, make_primitive
from repro.experiments.params import paper_hadoop_config, paper_node_config
from repro.metrics.stats import summarize
from repro.schedulers.hfsp import HfspScheduler
from repro.workloads.jobspec import JobSpec, TaskSpec


def workload():
    """One long job up front, short jobs trickling in."""
    long_job = JobSpec(
        name="long",
        tasks=[
            TaskSpec(input_bytes=768 * MB, parse_rate=7 * MB, name=f"long-{i}")
            for i in range(2)
        ],
    )
    shorts = [
        JobSpec(
            name=f"short-{i}",
            submit_offset=offset,
            tasks=[TaskSpec(input_bytes=96 * MB, parse_rate=7 * MB)],
        )
        for i, offset in enumerate((25.0, 60.0, 95.0))
    ]
    return long_job, shorts


def run(primitive_name: str):
    factory = None
    if primitive_name != "wait":
        factory = lambda cluster: make_primitive(primitive_name, cluster)
    scheduler = HfspScheduler(primitive_factory=factory)
    cluster = HadoopCluster(
        num_nodes=1,
        node_config=paper_node_config(),
        hadoop_config=paper_hadoop_config().replace(map_slots=2),
        scheduler=scheduler,
        seed=5,
        trace=False,
    )
    scheduler.attach_cluster(cluster)
    long_spec, shorts = workload()
    long_job = cluster.submit_job(long_spec)
    for spec in shorts:
        cluster.submit_job(spec)
    cluster.run_until_jobs_complete(timeout=36_000)

    short_sojourns = [
        job.sojourn_time
        for job in cluster.jobtracker.jobs.values()
        if job.spec.name.startswith("short-")
    ]
    finish = max(j.finish_time for j in cluster.jobtracker.jobs.values())
    return (
        summarize(short_sojourns).mean,
        long_job.sojourn_time,
        finish - long_job.submit_time,
    )


def main() -> None:
    print("HFSP (shortest-remaining-size-first) over 1 node x 2 slots\n")
    print(
        f"{'primitive':>10} | {'short sojourn (s)':>17} | "
        f"{'long sojourn (s)':>16} | {'makespan (s)':>12}"
    )
    print("-" * 66)
    for name in ("wait", "kill", "suspend"):
        short, long_s, makespan = run(name)
        print(f"{name:>10} | {short:17.1f} | {long_s:16.1f} | {makespan:12.1f}")
    print(
        "\nWith suspension, HFSP serves short jobs immediately (like kill)\n"
        "while the long job keeps all of its work (like wait)."
    )


if __name__ == "__main__":
    main()
