#!/usr/bin/env python3
"""Quickstart: suspend and resume a Hadoop task in 60 lines.

Builds a one-node simulated Hadoop 1 cluster, runs the paper's two-job
microbenchmark with the OS-assisted suspend/resume primitive, and
prints the timeline plus the two metrics the paper reports.

Run:
    python examples/quickstart.py
"""

from repro import HadoopCluster, SuspendResumePrimitive, two_job_microbenchmark
from repro.metrics.timeline import extract_timeline, render_gantt
from repro.schedulers.dummy import DummyScheduler


def main() -> None:
    # A single-node cluster: 4 GB of RAM, one map slot, 3 s heartbeats.
    cluster = HadoopCluster(num_nodes=1, scheduler=DummyScheduler(), seed=7)

    # tl = low-priority job, th = high-priority job; both parse one
    # 512 MB synthetic block (Section IV-A of the paper).
    tl_spec, th_spec = two_job_microbenchmark()
    primitive = SuspendResumePrimitive(cluster)

    job_tl = cluster.submit_job(tl_spec)

    # When tl reaches 50% progress, th arrives and tl is suspended
    # (SIGTSTP rides the next heartbeat to tl's TaskTracker).
    def preempt() -> None:
        cluster.jobtracker.submit_job(th_spec)
        primitive.preempt(job_tl.tips[0])

    cluster.when_job_progress("tl", 0.5, preempt)

    # When th completes, tl is resumed (SIGCONT) and finishes the
    # remaining half of its input -- no work is lost.
    def maybe_resume(job) -> None:
        if job.spec.name == "th":
            primitive.restore(job_tl.tips[0])

    cluster.jobtracker.on_job_complete(maybe_resume)

    cluster.run_until_jobs_complete()

    job_th = cluster.job_by_name("th")
    makespan = max(job_tl.finish_time, job_th.finish_time) - job_tl.submit_time
    print("execution schedule ('=' running, '.' suspended):\n")
    segments = [
        s for s in extract_timeline(cluster.sim.trace_log) if "_m_" in s.task
    ]
    print(render_gantt(segments))
    print()
    print(f"sojourn time of th : {job_th.sojourn_time:7.1f} s")
    print(f"makespan           : {makespan:7.1f} s")
    print(f"work wasted by tl  : {job_tl.wasted_seconds:7.1f} s (suspension loses nothing)")


if __name__ == "__main__":
    main()
