#!/usr/bin/env python
"""Validate a run ledger: schema, fold, and manifest agreement.

Three checks, all of which a healthy sweep passes by construction:

1. **Schema** -- every line decodes as a v<=1 JSON object with the
   envelope fields (``v``, ``seq``, ``pid``, ``t``, ``event``), ``seq``
   is monotone per writing process, and every event name is known.
2. **Fold** -- :func:`repro.obs.replay` reconstructs a coherent final
   state: a ``sweep-start``, every non-pending cell accounted for, and
   (when the sweep ran to completion) a ``sweep-finish`` whose counts
   match the folded cell table.
3. **Manifest** -- with ``--manifest``, the replayed state must agree
   with the sweep's final ``manifest.json``: same total, same done
   count, same per-key completion and quarantine flags, and the same
   supervisor counters the manifest recorded.

Exit code 0 = valid; 1 = any violation (each printed).  CI runs this
over the chaos-smoke sweep's ledger, so a chaos-ridden run must leave
a ledger that replays into exactly the manifest it shipped with.

Usage::

    PYTHONPATH=src python tools/validate_ledger.py chaos-ledger.jsonl \\
        --manifest chaos-manifest.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.aggregate import replay  # noqa: E402
from repro.obs.ledger import SCHEMA_VERSION, iter_ledger  # noqa: E402

#: every event the current writers emit; an unknown name in a ledger
#: means writer and validator have drifted apart
KNOWN_EVENTS = frozenset({
    "sweep-start", "sweep-finish",
    "cell-cached", "cell-start", "cell-finish", "cell-retry",
    "cell-quarantine",
    "worker-spawn", "worker-death", "worker-retire",
    "snapshot", "counters",
})

#: envelope keys every record must carry
ENVELOPE = ("v", "seq", "pid", "t", "event")


def check_schema(path: str, errors: list) -> int:
    """Envelope + per-pid seq monotonicity; returns records seen."""
    last_seq: dict = {}
    count = 0
    for record in iter_ledger(path, warn=False):
        count += 1
        missing = [key for key in ENVELOPE if key not in record]
        if missing:
            errors.append(
                f"record {count} ({record.get('event', '?')}) lacks "
                f"envelope fields: {', '.join(missing)}"
            )
            continue
        if record["v"] > SCHEMA_VERSION:
            errors.append(f"record {count} claims future schema v{record['v']}")
        if record["event"] not in KNOWN_EVENTS:
            errors.append(f"record {count}: unknown event {record['event']!r}")
        pid = record["pid"]
        if pid in last_seq and record["seq"] <= last_seq[pid]:
            errors.append(
                f"record {count}: seq {record['seq']} not monotone for "
                f"pid {pid} (last {last_seq[pid]})"
            )
        last_seq[pid] = record["seq"]
    return count


def check_fold(path: str, errors: list):
    """Replay the file; sanity-check the folded final state."""
    state = replay(path, warn=False)
    if state.event_counts.get("sweep-start", 0) == 0:
        errors.append("no sweep-start record")
        return state
    folded_done = state.count("done")
    folded_cached = state.count("cached")
    folded_quarantined = state.count("quarantined")
    starts = state.event_counts.get("cell-start", 0)
    finishes = state.event_counts.get("cell-finish", 0)
    if finishes > starts:
        errors.append(f"{finishes} cell-finish but only {starts} cell-start")
    if state.finished:
        if state.count("running"):
            errors.append(
                f"sweep-finish seen with {state.count('running')} cell(s) "
                "still marked running"
            )
        expected = state.total - folded_quarantined
        if folded_done + folded_cached != expected:
            errors.append(
                f"finished sweep folded to {folded_done}+{folded_cached} "
                f"done/cached cells, expected {expected} "
                f"(total {state.total} - {folded_quarantined} quarantined)"
            )
    return state


def check_manifest(state, manifest_path: str, errors: list) -> None:
    """The replayed state must equal the final manifest."""
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if state.total != manifest.get("total"):
        errors.append(
            f"total: ledger {state.total} != manifest {manifest.get('total')}"
        )
    if state.done != manifest.get("done"):
        errors.append(
            f"done: ledger {state.done} != manifest {manifest.get('done')}"
        )
    folded = {
        cell["key"]: cell for cell in state.cells.values()
        if cell.get("key")
    }
    for entry in manifest.get("cells", []):
        key = entry.get("key")
        cell = folded.get(key)
        if cell is None:
            errors.append(f"manifest cell {key} absent from ledger")
            continue
        ledger_done = cell["state"] in ("done", "cached")
        if ledger_done != entry.get("done", False):
            errors.append(
                f"cell {key}: ledger says "
                f"{'done' if ledger_done else 'not done'}, manifest says "
                f"{'done' if entry.get('done') else 'not done'}"
            )
        if bool(entry.get("quarantined")) != (
            cell["state"] == "quarantined"
        ):
            errors.append(f"cell {key}: quarantine flag disagrees")
    stats = manifest.get("supervisor")
    if stats and state.counters:
        for name, value in stats.items():
            if name in state.counters and state.counters[name] != value:
                errors.append(
                    f"counter {name}: ledger {state.counters[name]} != "
                    f"manifest {value}"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("ledger", help="ledger.jsonl to validate")
    parser.add_argument("--manifest", default=None,
                        help="final manifest.json the replayed state "
                        "must agree with")
    args = parser.parse_args(argv)

    errors: list = []
    count = check_schema(args.ledger, errors)
    if count == 0:
        errors.append("ledger holds no decodable records")
    state = check_fold(args.ledger, errors)
    if args.manifest:
        check_manifest(state, args.manifest, errors)

    if errors:
        for message in errors:
            print(f"validate_ledger: FAIL -- {message}", file=sys.stderr)
        return 1
    summary = (
        f"{count} records, {state.total} cells "
        f"({state.count('done')} done, {state.count('cached')} cached, "
        f"{state.count('quarantined')} quarantined), "
        f"{'finished' if state.finished else 'in flight'}"
    )
    print(f"validate_ledger: OK -- {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
