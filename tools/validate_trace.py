#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file produced by ``repro trace``.

Thin CLI over :func:`repro.telemetry.export.validate_chrome_trace` so
CI (and anyone handed a ``run.json``) can check a trace against the
trace-event schema without opening Perfetto.  Exits non-zero with the
first schema violation; on success prints a one-line summary of what
the file contains (event counts by phase, traced processes).

Usage::

    PYTHONPATH=src python tools/validate_trace.py run.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry.export import validate_chrome_trace  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="require at least this many non-metadata events (default 1)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            obj = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"validate_trace: cannot read {args.trace}: {exc}",
              file=sys.stderr)
        return 1

    try:
        validate_chrome_trace(obj)
    except ValueError as exc:
        print(f"validate_trace: {args.trace}: {exc}", file=sys.stderr)
        return 1

    events = obj["traceEvents"]
    phases = Counter(event["ph"] for event in events)
    body = sum(count for phase, count in phases.items() if phase != "M")
    if body < args.min_events:
        print(
            f"validate_trace: {args.trace}: only {body} non-metadata "
            f"events (need >= {args.min_events})",
            file=sys.stderr,
        )
        return 1
    processes = sorted(
        event["args"]["name"]
        for event in events
        if event["ph"] == "M" and event["name"] == "process_name"
    )
    summary = ", ".join(f"{phase}={count}" for phase, count in sorted(phases.items()))
    print(
        f"validate_trace: {args.trace} OK -- {len(events)} events "
        f"({summary}); processes: {', '.join(processes) or '(none)'}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
