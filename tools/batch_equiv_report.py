"""Batched-vs-unbatched digest-equality report (CI artifact).

Runs one small cell from each experiment family -- SWIM scale replay
(facebook and steady mixes), the network-fabric shuffle study, the
memory-admission (memscale) study, and the fig2 two-job harness --
twice each: once with ``batch_heartbeats`` on and once off, with
everything else (including ``heartbeat_phases``) held fixed.  Records
both TraceLog digests, the event counts, and the metric sketches per
cell, and exits non-zero if any pair differs.

The point of the artifact is auditability: the batched dispatch path
is only allowed to be a *performance* change, and this report is the
per-commit receipt that the two paths produced byte-identical traces
on every experiment family.  The exhaustive evidence lives in the
test suite (``tests/test_batched_differential.py``); this report is
the cheap always-on slice CI uploads next to ``BENCH_PR3.json``.

Usage::

    python tools/batch_equiv_report.py --out BATCH_EQUIV.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: every cell runs both modes on the same phase grid; 4 phases gives
#: 500-way heartbeat coalescing at scale and still exercises the
#: batch-context repair machinery at these small sizes
PHASES = 4


def _scale_cell(scenario: str) -> dict:
    from repro.experiments.runner import derive_seed
    from repro.experiments.scale_study import _run_once

    def run(batched: bool) -> dict:
        return _run_once(
            scenario=scenario, primitive_name="suspend", trackers=15,
            num_jobs=12, seed=derive_seed(9000, "scale", scenario, 15,
                                          "suspend", 0),
            trace=True, heartbeat_phases=PHASES, batch_heartbeats=batched,
        )

    return {"batched": run(True), "unbatched": run(False)}


def _shuffle_cell() -> dict:
    from repro.experiments.runner import derive_seed
    from repro.experiments.shuffle_study import _run_once

    def run(batched: bool) -> dict:
        return _run_once(
            primitive_name="kill", trackers=15, num_jobs=10,
            oversubscription=2.5,
            seed=derive_seed(11000, "shuffle", 15, "kill", 2.5, 0.0, 0),
            trace=True, heartbeat_phases=PHASES, batch_heartbeats=batched,
        )

    return {"batched": run(True), "unbatched": run(False)}


def _memscale_cell() -> dict:
    from repro.experiments.memscale_study import (
        RESERVE_BYTES,
        SWAP_BYTES,
        _run_once,
    )
    from repro.experiments.runner import derive_seed

    def run(batched: bool) -> dict:
        return _run_once(
            mode="suspend-gated", trackers=15, num_jobs=10,
            seed=derive_seed(12000, "memscale", 15, "suspend-gated",
                             SWAP_BYTES, RESERVE_BYTES, 0),
            trace=True, heartbeat_phases=PHASES, batch_heartbeats=batched,
        )

    return {"batched": run(True), "unbatched": run(False)}


def _fig2_cell() -> dict:
    from repro.experiments import params as P
    from repro.experiments.harness import TwoJobHarness

    def run(batched: bool) -> dict:
        config = P.paper_hadoop_config().replace(
            heartbeat_phases=PHASES, batch_heartbeats=batched,
        )
        harness = TwoJobHarness("suspend", 0.5, runs=1, keep_traces=True,
                                hadoop_config=config)
        result = harness.run_once(seed=99)
        sim = result.trace_cluster.sim
        return {
            "trace_digest": sim.trace_log.digest(),
            "events": float(sim.events_fired),
            "sketch": (
                f"th={result.sojourn_th:.6f},mk={result.makespan:.6f},"
                f"wasted={result.tl_wasted_seconds:.6f},"
                f"susp={result.suspend_count}"
            ),
        }

    return {"batched": run(True), "unbatched": run(False)}


CELLS = {
    "scale_facebook_suspend_15": lambda: _scale_cell("baseline"),
    "scale_steady_suspend_15": lambda: _scale_cell("steady"),
    "shuffle_kill_15": _shuffle_cell,
    "memscale_suspend_gated_15": _memscale_cell,
    "fig2_suspend_50pct": _fig2_cell,
}

#: the fields each pair must agree on, where present
COMPARED = ("trace_digest", "events", "sketch")


def build_report() -> dict:
    report = {"phases": PHASES, "cells": {}, "all_equal": True}
    for name, fn in CELLS.items():
        pair = fn()
        entry = {}
        equal = True
        for field in COMPARED:
            batched = pair["batched"].get(field)
            unbatched = pair["unbatched"].get(field)
            if batched is None and unbatched is None:
                continue
            entry[f"batched_{field}"] = batched
            entry[f"unbatched_{field}"] = unbatched
            equal = equal and batched == unbatched
        entry["equal"] = equal
        report["cells"][name] = entry
        report["all_equal"] = report["all_equal"] and equal
        print(f"  {name:>28}: {'EQUAL' if equal else 'DIVERGED'}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BATCH_EQUIV.json",
                        help="report artifact path (default BATCH_EQUIV.json)")
    args = parser.parse_args(argv)

    print("batch_equiv_report: running paired cells...")
    report = build_report()
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    if not report["all_equal"]:
        print("batch_equiv_report: DIGEST DIVERGENCE", file=sys.stderr)
        return 1
    print("batch_equiv_report: all cells byte-identical across modes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
