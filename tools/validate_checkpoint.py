#!/usr/bin/env python
"""Validate a checkpoint file produced by ``repro checkpoint``.

Thin CLI over :mod:`repro.checkpoint` so CI (and anyone handed a
``ck.bin``) can sanity-check a file without blindly unpickling it.
Three depths, each implying the previous:

* default -- parse the header (magic, JSON, required keys) and print
  the per-layer inventory; no pickle byte is executed;
* ``--strict`` -- additionally require the header's format version
  and schema fingerprint to match *this* source tree (the only tree
  whose replay identity the file guarantees);
* ``--restore`` -- additionally unpickle the payload and cross-check
  the live object graph against the header's layer inventory (clock,
  pending events, RNG streams, trace digest).

Exits non-zero with the first violation; on success prints a one-line
summary per layer.

Usage::

    PYTHONPATH=src python tools/validate_checkpoint.py ck.bin --strict
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.checkpoint import (  # noqa: E402
    layer_inventory,
    load,
    read_header,
    restore,
    validate_header,
)
from repro.errors import SnapshotError  # noqa: E402

REQUIRED_KEYS = ("format", "schema", "root_type", "layers")


def _check_header(header: dict, path: str) -> None:
    missing = [key for key in REQUIRED_KEYS if key not in header]
    if missing:
        raise SnapshotError(
            f"{path}: header is missing required keys: {', '.join(missing)}"
        )
    layers = header["layers"]
    if not isinstance(layers, dict) or "engine" not in layers:
        raise SnapshotError(
            f"{path}: layer inventory lacks the engine layer "
            f"(has: {sorted(layers) if isinstance(layers, dict) else layers!r})"
        )


def _check_live_graph(header: dict, root, path: str) -> None:
    """The restored object must match what the header advertised."""
    live = layer_inventory(root)
    frozen = header["layers"]
    if sorted(live) != sorted(frozen):
        raise SnapshotError(
            f"{path}: restored layers {sorted(live)} != header "
            f"layers {sorted(frozen)}"
        )
    for layer in live:
        if live[layer] != frozen[layer]:
            raise SnapshotError(
                f"{path}: layer {layer!r} diverged on restore: "
                f"{live[layer]} != {frozen[layer]}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("checkpoint", help="checkpoint file to validate")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="require format/schema to match this source tree",
    )
    parser.add_argument(
        "--restore",
        action="store_true",
        help="unpickle the payload and cross-check it against the "
        "header (implies --strict: a drifted schema cannot restore)",
    )
    args = parser.parse_args(argv)

    try:
        header = read_header(args.checkpoint)
        _check_header(header, args.checkpoint)
        if args.strict or args.restore:
            validate_header(header)
        if args.restore:
            root = restore(load(args.checkpoint))
            _check_live_graph(header, root, args.checkpoint)
    except (SnapshotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    depth = ("restored" if args.restore
             else "strict" if args.strict else "header")
    print(f"{args.checkpoint}: valid ({depth} check, "
          f"format {header['format']}, schema {header['schema']}, "
          f"root {header['root_type']})")
    for name in sorted(header["layers"]):
        print(f"  {name}: {header['layers'][name]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
