#!/usr/bin/env python
"""Chaos smoke: a supervised sweep under injected faults must be
byte-identical to a clean serial run.

Runs a small scale-study grid twice -- once serially and undisturbed,
once sharded over supervised workers with a seeded chaos plan that
SIGKILLs one worker and hangs another -- and fails loudly on any
divergence in the result lists (TraceLog digests included).  Writes
the sweep's quarantine manifest next to the cell cache so CI can
upload it as an artifact.

Usage::

    PYTHONPATH=src python tools/chaos_smoke.py --out chaos-manifest.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import QuarantineError  # noqa: E402
from repro.experiments.chaos import ChaosFault, make_plan  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    Cell,
    cell_key,
    derive_seed,
    run_cells,
)
from repro.experiments.supervisor import SupervisorConfig  # noqa: E402


def _grid(trackers: int, num_jobs: int):
    cells = []
    for primitive in ("wait", "suspend", "kill"):
        seed = derive_seed(
            9000, "scale", "baseline", trackers, primitive, 0
        )
        cells.append(Cell.make(
            "repro.experiments.scale_study", "_run_once",
            scenario="baseline", primitive_name=primitive,
            trackers=trackers, num_jobs=num_jobs, seed=seed, trace=True,
        ))
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="chaos-manifest.json",
                        help="where to copy the sweep manifest")
    parser.add_argument("--ledger-out", default="chaos-ledger.jsonl",
                        help="where to copy the sweep's run ledger "
                        "(validate with tools/validate_ledger.py)")
    parser.add_argument("--trackers", type=int, default=5)
    parser.add_argument("--num-jobs", type=int, default=5)
    parser.add_argument("--cell-timeout", type=float, default=20.0,
                        help="wall budget per attempt (catches the hang); "
                        "generous next to the ~1 s cells, small enough "
                        "that the injected hang costs CI only seconds")
    args = parser.parse_args(argv)

    cells = _grid(args.trackers, args.num_jobs)
    keys = [cell_key(cell) for cell in cells]

    print("chaos_smoke: clean serial baseline ...", flush=True)
    baseline = run_cells(cells, workers=1)

    # One worker SIGKILL and one hang, at fixed cell boundaries; the
    # plan is explicit (not seeded+rated) so the smoke always injects
    # exactly these two faults regardless of grid edits.
    plan = make_plan(
        {
            (keys[0], 0): ChaosFault("kill"),
            (keys[1], 0): ChaosFault("hang"),
        },
    )
    config = SupervisorConfig(
        max_retries=2,
        cell_timeout=args.cell_timeout,
        heartbeat_interval=0.1,
        chaos=plan,
        snapshot_every=None,
    )

    print(f"chaos_smoke: supervised sweep under {plan.describe()} ...",
          flush=True)
    cache = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    quarantined = 0
    try:
        try:
            disturbed = run_cells(
                cells, workers=3, cache_dir=str(cache), supervise=config,
            )
        except QuarantineError as exc:
            quarantined = len(exc.records)
            disturbed = None
        manifest_path = cache / "manifest.json"
        if manifest_path.exists():
            shutil.copy(manifest_path, args.out)
            print(f"chaos_smoke: manifest copied to {args.out}")
        ledger_file = cache / "ledger.jsonl"
        if ledger_file.exists():
            shutil.copy(ledger_file, args.ledger_out)
            print(f"chaos_smoke: run ledger copied to {args.ledger_out}")
    finally:
        shutil.rmtree(cache, ignore_errors=True)

    if quarantined:
        print(
            f"chaos_smoke: FAIL -- {quarantined} cell(s) quarantined; "
            "the injected faults fit inside the retry budget, so "
            "recovery itself is broken",
            file=sys.stderr,
        )
        return 1
    if disturbed != baseline:
        for index, (a, b) in enumerate(zip(baseline, disturbed)):
            if a != b:
                print(
                    f"chaos_smoke: FAIL -- cell {index} diverged:\n"
                    f"  clean:   {a}\n  chaotic: {b}",
                    file=sys.stderr,
                )
        return 1

    digests = [result["trace_digest"] for result in disturbed]
    print(
        "chaos_smoke: OK -- chaos-disturbed sweep byte-identical to the "
        f"clean serial run; trace digests: {', '.join(digests)}"
    )
    json_blob = json.dumps(baseline, sort_keys=True, default=repr)
    canon = hashlib.sha256(json_blob.encode("utf-8")).hexdigest()[:16]
    print(f"chaos_smoke: result canon sha256 prefix {canon}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
