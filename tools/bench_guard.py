"""Benchmark guard: regenerate BENCH_PR3.json and police regressions.

Runs a small battery of deterministic workloads spanning the layers
the virtual-time resource refactor touched -- the contention
microbench, a two-job paper cell, SWIM replay cells, a network-fabric
shuffle cell, a memory-admission (memscale) cell, and the
batched-heartbeat scale cells (2000 trackers in the default tier,
5000 behind ``--slow``), which assert sketch equality between the
batched and unbatched dispatch paths and a >=3x speedup at full
scale -- and records, per bench:

* ``wall_s``   -- wall-clock seconds (machine-dependent);
* ``events``   -- simulation events fired (deterministic);
* ``engine_ops`` -- schedule + reschedule calls (deterministic);
* ``labels``   -- fired events per collapsed label family, from the
  engine's self-profiling hooks (deterministic: same seed, same
  counts to the event).

``--check BASELINE`` compares against a checked-in baseline.  **Only
the deterministic counters are strict**: they compare exactly on any
machine, so a >20% event/op growth exits non-zero, and the per-label
family counts must match the baseline *exactly* -- any drift in what
the engine fires per label is a behaviour change someone must either
explain or bless with ``--update-baseline``.  Wall-clock
baselines are checked in from whatever host refreshed them last, and
per-bench speed ratios vary across CPUs far beyond any useful
tolerance; the guard therefore *recalibrates* the wall baseline --
every bench's baseline wall is scaled by the median current/baseline
ratio across benches (the machine factor) -- and reports benches that
regressed relative to their recalibrated baseline as **warnings
only**, never a failing exit.  A genuine algorithmic slowdown shows up
in the strict counters; a wall-only warning is a profiling lead, not a
gate.

Usage::

    python tools/bench_guard.py --out BENCH_PR3.json
    python tools/bench_guard.py --out BENCH_PR3.json \
        --check benchmarks/BENCH_PR3.baseline.json
    python tools/bench_guard.py --update-baseline   # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

WALL_TOLERANCE = 1.20
COUNTER_TOLERANCE = 1.20
#: benches faster than this are policed by their deterministic
#: counters only -- sub-250ms wall clocks are timer noise on shared CI
WALL_FLOOR_S = 0.25
BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "BENCH_PR3.baseline.json"
)


def bench_resource_churn(scale: float = 1.0) -> dict:
    """The tentpole pattern: one resource, many claims, heavy churn."""
    from repro.osmodel.resources import RateResource
    from repro.sim.engine import Simulation
    from repro.telemetry.profiling import collapse_labels

    claims_n = max(int(600 * scale), 8)
    cycles = max(int(20_000 * scale), 16)
    sim = Simulation(profile=True)
    res = RateResource(sim, capacity=100.0)
    claims = [res.submit(1e8 + i, lambda: None) for i in range(claims_n)]
    for cycle in range(cycles):
        victim = claims[(cycle * 37) % claims_n]
        res.pause(victim)
        res.activate(victim)
        if cycle % 50 == 0:
            res.set_speed_factor(0.5 if cycle % 100 == 0 else 1.0)
    return {
        "events": sim.events_fired,
        "engine_ops": sim.events_scheduled + sim.reschedules,
        "labels": collapse_labels(sim.label_counts),
    }


def bench_two_job_suspend(scale: float = 1.0) -> dict:
    """Figure-2 microbenchmark cells (suspend at 50%), heavy variant
    included so the bench clears the wall-clock floor."""
    from repro.experiments.harness import TwoJobHarness
    from repro.telemetry.profiling import collapse_labels

    runs = max(int(10 * scale), 1)
    events = ops = 0
    labels = {}
    for seed in range(99, 99 + runs):
        harness = TwoJobHarness("suspend", 0.5, runs=1, keep_traces=True,
                                profile=True)
        result = harness.run_once(seed=seed)
        sim = result.trace_cluster.sim
        events += sim.events_fired
        ops += sim.events_scheduled + sim.reschedules
        for family, count in collapse_labels(sim.label_counts).items():
            labels[family] = labels.get(family, 0) + count
    return {"events": events, "engine_ops": ops, "labels": labels}


def bench_scale_baseline_50(scale: float = 1.0) -> dict:
    """A mid-size SWIM replay cell: 50 trackers, facebook mix."""
    return _scale_cell("baseline", trackers=max(int(50 * scale), 5),
                       num_jobs=max(int(50 * scale), 5))


def bench_scale_shuffle_100(scale: float = 1.0) -> dict:
    """The contention-heavy replay cell: shuffle-heavy mix."""
    return _scale_cell("shuffle-heavy", trackers=max(int(100 * scale), 5),
                       num_jobs=max(int(100 * scale), 5))


def bench_shuffle_net_25(scale: float = 1.0) -> dict:
    """The network-fabric smoke cell: flow-routed shuffle under kill
    on oversubscribed uplinks (the ``shuffle`` experiment's machinery)."""
    from repro.experiments.runner import derive_seed
    from repro.experiments.shuffle_study import _run_once

    trackers = max(int(25 * scale), 5)
    num_jobs = max(int(25 * scale), 5)
    out = _run_once(
        primitive_name="kill",
        trackers=trackers,
        num_jobs=num_jobs,
        oversubscription=2.5,
        seed=derive_seed(11000, "shuffle", trackers, "kill", 2.5, 0.0, 0),
        profile=True,
    )
    return {"events": int(out["events"]), "engine_ops": 0,
            "labels": out["engine"]["labels"]}


def bench_memscale_25(scale: float = 1.0) -> dict:
    """The memory-admission smoke cell: gated suspension on
    swap-constrained nodes (the ``memscale`` experiment's machinery:
    headroom snapshots per heartbeat, the admission gate on every
    preemption decision, stateful footprints through the VMM)."""
    from repro.experiments.memscale_study import (
        RESERVE_BYTES,
        SWAP_BYTES,
        _run_once,
    )
    from repro.experiments.runner import derive_seed

    trackers = max(int(25 * scale), 5)
    num_jobs = max(int(25 * scale), 5)
    out = _run_once(
        mode="suspend-gated",
        trackers=trackers,
        num_jobs=num_jobs,
        seed=derive_seed(
            12000, "memscale", trackers, "suspend-gated",
            SWAP_BYTES, RESERVE_BYTES, 0,
        ),
        profile=True,
    )
    return {"events": int(out["events"]), "engine_ops": 0,
            "labels": out["engine"]["labels"]}


def bench_checkpoint_smoke(scale: float = 1.0) -> dict:
    """Checkpoint round trip on the fig2 cell: snapshot mid-flight,
    finish, restore, finish again -- and *assert* replay identity
    (digest + metrics equality), so a divergence fails the bench
    outright rather than drifting a counter.

    Beyond the standard fields it records ``checkpoint_bytes`` (file
    size) and ``resume_wall_s`` (restore + replay-to-completion wall
    seconds); both are advisory, like ``wall_s``.
    """
    import tempfile

    from repro.checkpoint.cells import checkpoint_cell, resume_cell

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fig2.ck")
        unbroken = checkpoint_cell("fig2", path)
        nbytes = os.path.getsize(path)
        start = time.perf_counter()
        resumed = resume_cell(path)
        resume_wall = round(time.perf_counter() - start, 4)
    if resumed != unbroken:
        raise AssertionError(
            "checkpoint replay diverged from the unbroken run: "
            f"{resumed} != {unbroken}"
        )
    # The gate here is the assertion above; the counters the generic
    # checker polices stay zero (the cells run unprofiled because
    # engine self-profile stats are the one legitimately
    # restored-vs-continued divergence).
    return {"events": 0, "engine_ops": 0,
            "checkpoint_bytes": nbytes, "resume_wall_s": resume_wall}


def bench_scale_2000(scale: float = 1.0) -> dict:
    """The batched-dispatch tentpole cell: 2000 trackers on the
    steady mix, run twice -- batched heartbeats on, then off -- with
    *assertions* that the two runs' metric sketches are byte-identical
    and (at full scale) that the batched run is at least
    ``MIN_BATCH_SPEEDUP`` times faster.  An equivalence break or a
    speedup collapse fails the bench outright, like
    ``checkpoint_smoke``'s replay gate."""
    return _batched_speedup_cell(
        trackers=max(int(2000 * scale), 20),
        num_jobs=max(int(600 * scale), 10),
        min_speedup=MIN_BATCH_SPEEDUP if scale >= 1.0 else 0.0,
    )


def bench_scale_5000(scale: float = 1.0) -> dict:
    """The slow-tier batched-dispatch cell: 5000 trackers, same gates
    as ``scale_2000``.  Lives in ``SLOW_BENCHES`` (opt-in via
    ``--slow``) because the unbatched leg alone runs for minutes."""
    return _batched_speedup_cell(
        trackers=max(int(5000 * scale), 20),
        num_jobs=max(int(600 * scale), 10),
        min_speedup=MIN_BATCH_SPEEDUP if scale >= 1.0 else 0.0,
    )


def _batched_speedup_cell(trackers: int, num_jobs: int,
                          min_speedup: float) -> dict:
    """Run one steady-mix scale cell batched and unbatched; gate on
    sketch equality (always) and the speedup floor (full scale only --
    small test-scale cells cannot amortize enough work to hit it).

    Runs unprofiled: the engine's per-label attribution adds the same
    absolute overhead to both legs, which would compress the measured
    ratio toward 1.  The deterministic ``events`` counter still gates
    drift; ``speedup`` and the per-leg walls are advisory extras.
    """
    from repro.experiments.runner import derive_seed
    from repro.experiments.scale_study import _run_once

    seed = derive_seed(9000, "scale", "steady", trackers, "suspend", 0)
    common = dict(scenario="steady", primitive_name="suspend",
                  trackers=trackers, num_jobs=num_jobs, seed=seed,
                  heartbeat_phases=4)
    start = time.perf_counter()
    batched = _run_once(batch_heartbeats=True, **common)
    batched_wall = time.perf_counter() - start
    start = time.perf_counter()
    unbatched = _run_once(batch_heartbeats=False, **common)
    unbatched_wall = time.perf_counter() - start
    if batched["sketch"] != unbatched["sketch"]:
        raise AssertionError(
            f"batched/unbatched divergence at {trackers} trackers: "
            f"sketch {batched['sketch']} != {unbatched['sketch']}"
        )
    speedup = unbatched_wall / batched_wall
    if speedup < min_speedup:
        raise AssertionError(
            f"batched dispatch speedup collapsed at {trackers} trackers: "
            f"{speedup:.2f}x < required {min_speedup:.1f}x "
            f"(batched {batched_wall:.1f}s, unbatched {unbatched_wall:.1f}s)"
        )
    if batched["events"] != unbatched["events"]:
        raise AssertionError(
            f"batched/unbatched event-count divergence at {trackers} "
            f"trackers: {batched['events']:.0f} != {unbatched['events']:.0f}"
        )
    return {
        "events": int(batched["events"]),
        "engine_ops": 0,
        "speedup": round(speedup, 2),
        "batched_wall_s": round(batched_wall, 4),
        "unbatched_wall_s": round(unbatched_wall, 4),
    }


def _scale_cell(scenario: str, trackers: int, num_jobs: int) -> dict:
    from repro.experiments.runner import derive_seed
    from repro.experiments.scale_study import _run_once

    out = _run_once(
        scenario=scenario,
        primitive_name="suspend",
        trackers=trackers,
        num_jobs=num_jobs,
        seed=derive_seed(9000, "scale", scenario, trackers, "suspend", 0),
        profile=True,
    )
    return {"events": int(out["events"]), "engine_ops": 0,
            "labels": out["engine"]["labels"]}


def bench_ledger_sweep(scale: float = 1.0) -> dict:
    """The run-ledger observability path: a serial cached sweep plus a
    warm-cache rerun, with the replayed ledger's event counts recorded
    as strict deterministic counters (same policy as per-label event
    families).  The serial path is used deliberately -- supervised
    sweeps add wall-clock-gated ``counters`` records whose count is
    machine-dependent."""
    import tempfile

    from repro.experiments.runner import Cell, derive_seed, run_cells
    from repro.obs import replay
    from repro.obs.ledger import ledger_path

    trackers = max(int(5 * scale), 2)
    num_jobs = max(int(5 * scale), 2)
    cells = [
        Cell.make(
            "repro.experiments.scale_study", "_run_once",
            scenario="baseline", primitive_name=primitive,
            trackers=trackers, num_jobs=num_jobs,
            seed=derive_seed(9000, "scale", "baseline", trackers,
                             primitive, 0),
        )
        for primitive in ("wait", "suspend", "kill")
    ]
    with tempfile.TemporaryDirectory() as tmp:
        results = run_cells(cells, workers=1, cache_dir=tmp)
        run_cells(cells, workers=1, cache_dir=tmp)  # warm -> cell-cached
        state = replay(ledger_path(tmp), warn=False)
    return {
        "events": int(sum(r["events"] for r in results)),
        "engine_ops": 0,
        "labels": {f"ledger/{name}": count
                   for name, count in sorted(state.event_counts.items())},
    }


BENCHES = {
    "resource_churn": bench_resource_churn,
    "two_job_suspend": bench_two_job_suspend,
    "scale_baseline_50": bench_scale_baseline_50,
    "scale_shuffle_100": bench_scale_shuffle_100,
    "shuffle_net_25": bench_shuffle_net_25,
    "memscale_25": bench_memscale_25,
    "checkpoint_smoke": bench_checkpoint_smoke,
    "ledger_sweep": bench_ledger_sweep,
    "scale_2000": bench_scale_2000,
}

#: opt-in tier (``--slow``): benches whose full-scale run takes
#: minutes; ``check()`` compares shared names only, so a smoke
#: baseline and a ``--slow`` run coexist without special-casing
SLOW_BENCHES = {
    "scale_5000": bench_scale_5000,
}

#: the batched-dispatch cells must beat the unbatched path by at
#: least this factor at full scale (the ISSUE-10 acceptance bar)
MIN_BATCH_SPEEDUP = 3.0


def run_benches(scale: float = 1.0, slow: bool = False) -> dict:
    results = {}
    benches = dict(BENCHES)
    if slow:
        benches.update(SLOW_BENCHES)
    for name, fn in benches.items():
        start = time.perf_counter()
        counters = fn(scale)
        counters["wall_s"] = round(time.perf_counter() - start, 4)
        results[name] = counters
        print(f"  {name:>20}: {counters['wall_s']:.3f}s "
              f"events={counters['events']} ops={counters['engine_ops']}")
    return results


def check(current: dict, baseline: dict) -> tuple:
    """Compare against a baseline.

    Returns ``(problems, warnings)``: *problems* (failing) come only
    from the deterministic event/op counters, which are machine
    independent; *warnings* (advisory) flag benches whose wall clock
    regressed against the baseline recalibrated to this host -- each
    baseline wall is scaled by the median current/baseline ratio, so
    a uniformly different machine cancels out and only relative
    outliers surface.
    """
    problems = []
    warnings = []
    shared = [name for name in baseline if name in current]
    if not shared:
        return ["baseline and current share no benches"], []
    # Calibrate on the benches whose baselines are long enough to time
    # stably; sub-floor benches are pure timer noise and would corrupt
    # the median (they are policed by their counters instead).
    ratios = [
        current[name]["wall_s"] / baseline[name]["wall_s"]
        for name in shared
        if baseline[name]["wall_s"] >= WALL_FLOOR_S
    ]
    machine_factor = statistics.median(ratios) if ratios else 1.0
    for name in shared:
        cur, base = current[name], baseline[name]
        for counter in ("events", "engine_ops"):
            if base.get(counter, 0) > 0 and cur[counter] > base[counter] * COUNTER_TOLERANCE:
                problems.append(
                    f"{name}: {counter} {cur[counter]} vs baseline "
                    f"{base[counter]} (> {COUNTER_TOLERANCE:.0%})"
                )
        # Per-label event counts are exact-deterministic: any drift is
        # a behaviour change, so compare strictly (no tolerance).
        if "labels" in base and "labels" in cur and cur["labels"] != base["labels"]:
            families = sorted(set(base["labels"]) | set(cur["labels"]))
            drift = [
                f"{family} {base['labels'].get(family, 0)}->"
                f"{cur['labels'].get(family, 0)}"
                for family in families
                if base["labels"].get(family, 0) != cur["labels"].get(family, 0)
            ]
            problems.append(
                f"{name}: per-label event counts drifted "
                f"({'; '.join(drift[:8])}"
                + (f"; +{len(drift) - 8} more" if len(drift) > 8 else "")
                + ")"
            )
        if base["wall_s"] >= WALL_FLOOR_S and machine_factor > 0:
            recalibrated = base["wall_s"] * machine_factor
            if cur["wall_s"] > recalibrated * WALL_TOLERANCE:
                warnings.append(
                    f"{name}: wall {cur['wall_s']:.3f}s vs recalibrated "
                    f"baseline {recalibrated:.3f}s "
                    f"(machine x{machine_factor:.2f}, > {WALL_TOLERANCE:.0%}; "
                    f"advisory -- counters are the gate)"
                )
    return problems, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_PR3.json",
                        help="result artifact path (default BENCH_PR3.json)")
    parser.add_argument("--check", default=None,
                        help="baseline JSON to compare against "
                        "(non-zero exit on >20%% regression)")
    parser.add_argument("--update-baseline", action="store_true",
                        help=f"write results to {BASELINE_PATH}")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (tests use <1)")
    parser.add_argument("--slow", action="store_true",
                        help="also run the slow tier "
                        f"({', '.join(SLOW_BENCHES)})")
    args = parser.parse_args(argv)

    print("bench_guard: running benches...")
    results = run_benches(scale=args.scale, slow=args.slow)
    payload = {"scale": args.scale, "benches": results}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.update_baseline:
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {BASELINE_PATH}")

    if args.check:
        with open(args.check, encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("scale") != args.scale:
            print(f"error: baseline scale {baseline.get('scale')} != "
                  f"run scale {args.scale}", file=sys.stderr)
            return 2
        problems, warnings = check(results, baseline["benches"])
        for warning in warnings:
            print(f"bench_guard: WARNING {warning}", file=sys.stderr)
        if problems:
            print("bench_guard: REGRESSIONS DETECTED", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("bench_guard: counters within tolerance of baseline"
              + (f" ({len(warnings)} wall warnings)" if warnings else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
