"""Hadoop engine configuration.

Defaults follow Hadoop 1 conventions on a small cluster: 3-second
heartbeats (plus out-of-band heartbeats when tasks complete), one map
slot per node for the paper's microbenchmark, job setup/cleanup tasks
enabled, and a per-task JVM whose base footprint models "the Hadoop
execution engine (i.e., JVM, I/O buffers, overhead due to sorting,
etc.)".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import GB, MB


@dataclass
class HadoopConfig:
    """Cluster-wide Hadoop knobs.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between periodic TaskTracker heartbeats
        (``mapreduce.jobtracker.heartbeat.interval.min`` is 3 s for
        clusters under 300 nodes).
    oob_heartbeat_latency:
        Delay of an out-of-band heartbeat after a task state change
        (``mapreduce.tasktracker.outofband.heartbeat`` behaviour).
    rpc_latency:
        One-way latency applied to JobTracker directives before the
        TaskTracker acts on them.
    map_slots / reduce_slots:
        Slots per TaskTracker.  The paper's microbenchmark uses a
        single map slot so tl and th contend for it.
    jvm_startup_time:
        Seconds to fork and boot a child JVM.
    jvm_base_memory:
        Resident footprint of the execution engine itself.
    task_finalize_time:
        Fixed bookkeeping time at the end of a stateless task.
    task_cleanup_duration:
        Duration of the cleanup attempt run for a killed task ("kill
        runs a cleanup task to remove temporary outputs of the killed
        task").
    job_setup_duration / job_cleanup_duration:
        Durations of the per-job setup and cleanup tasks Hadoop 1
        schedules around the real work.
    run_job_setup_cleanup:
        Disable to model ``mapred.committer``-less jobs (used by some
        unit tests to shorten scenarios).
    suspend_resend_timeout:
        If a suspend/resume directive is not confirmed within this
        many seconds the JobTracker re-piggybacks it (lost-heartbeat
        defence).
    max_suspended_per_tracker:
        Cap on concurrently suspended tasks per TaskTracker, enforcing
        Section III-A's constraint that aggregate suspended memory
        must fit in swap.
    child_heap_limit:
        Upper bound a task may allocate (``mapred.child.java.opts``);
        the paper notes the 2 GB worst case "requires an ad hoc change
        to the Hadoop configuration".
    tracker_expiry_interval:
        Seconds without a heartbeat after which the JobTracker declares
        a TaskTracker lost and requeues its work
        (``mapred.tasktracker.expiry.interval``, 600 s in stock
        Hadoop 1).  Fault studies shrink this for snappier recovery.
    map_max_attempts / reduce_max_attempts:
        Per-task retry caps (``mapred.map.max.attempts`` /
        ``mapred.reduce.max.attempts``).  A task whose attempt count
        reaches the cap fails its job.
    tracker_blacklist_threshold:
        Task failures on one TaskTracker after which it is blacklisted
        and stops receiving new work (``mapred.max.tracker.failures``).
        0 disables blacklisting.
    rerun_completed_maps_on_loss:
        When a TaskTracker is lost, re-execute the completed map tasks
        whose output lived on it (real Hadoop does this because map
        output is served from tracker-local disk).
    speculative_execution:
        Enable JobTracker-side backup attempts for stragglers
        (``mapred.map.tasks.speculative.execution``).
    speculative_lag:
        Minimum seconds an attempt must have run before it can be
        considered a straggler.
    speculative_slowness:
        An attempt is a straggler when its progress rate falls below
        this fraction of the mean progress rate of its job's running
        peers.  Suspended attempts are never stragglers: their
        progress is frozen by design, not by slowness.
    """

    heartbeat_interval: float = 3.0
    oob_heartbeat_latency: float = 0.1
    rpc_latency: float = 0.05
    map_slots: int = 1
    reduce_slots: int = 1
    jvm_startup_time: float = 1.2
    jvm_base_memory: int = 192 * MB
    task_finalize_time: float = 0.3
    task_cleanup_duration: float = 2.0
    job_setup_duration: float = 1.5
    job_cleanup_duration: float = 1.5
    run_job_setup_cleanup: bool = True
    suspend_resend_timeout: float = 10.0
    max_suspended_per_tracker: int = 4
    child_heap_limit: int = 3 * GB
    sort_rate: float = 40 * MB
    #: multiplicative jitter on task service times (the paper's 20-run
    #: averages stay within +/-5% of the mean; this reproduces that
    #: spread across seeds)
    task_time_jitter: float = 0.03
    #: extra heap a hoarding collector keeps on top of a stateful
    #: task's live state (Section V-B: collectors that do not release
    #: memory inflate the suspended footprint); 0 disables the effect
    jvm_heap_slack: float = 0.0
    tracker_expiry_interval: float = 600.0
    map_max_attempts: int = 4
    reduce_max_attempts: int = 4
    tracker_blacklist_threshold: int = 4
    rerun_completed_maps_on_loss: bool = True
    speculative_execution: bool = False
    speculative_lag: float = 30.0
    speculative_slowness: float = 0.5
    #: phase-locked heartbeat grid: with P > 0, tracker i heartbeats on
    #: the exact instant grid ``0.05 + 0.11*(i % P) + k*interval`` and
    #: snaps back to its grid line after every out-of-band heartbeat,
    #: so same-phase trackers share each instant forever.  0 keeps the
    #: historical free-drifting stagger.
    heartbeat_phases: int = 0
    #: let the JobTracker amortise one scheduler pass (candidate list,
    #: SRPT order, aux scan) across all heartbeats sharing an engine
    #: batch.  Pure caching: batched-on == batched-off event-for-event.
    batch_heartbeats: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on nonsense."""
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if self.map_slots < 1 or self.reduce_slots < 0:
            raise ConfigurationError("slot counts out of range")
        for name in (
            "oob_heartbeat_latency",
            "rpc_latency",
            "jvm_startup_time",
            "task_finalize_time",
            "task_cleanup_duration",
            "job_setup_duration",
            "job_cleanup_duration",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} may not be negative")
        if self.jvm_base_memory < 0 or self.child_heap_limit <= 0:
            raise ConfigurationError("memory limits out of range")
        if self.max_suspended_per_tracker < 0:
            raise ConfigurationError("max_suspended_per_tracker out of range")
        if self.sort_rate <= 0:
            raise ConfigurationError("sort_rate must be positive")
        if not 0 <= self.task_time_jitter < 1:
            raise ConfigurationError("task_time_jitter must be in [0, 1)")
        if self.jvm_heap_slack < 0:
            raise ConfigurationError("jvm_heap_slack may not be negative")
        if self.tracker_expiry_interval <= 0:
            raise ConfigurationError("tracker_expiry_interval must be positive")
        if self.map_max_attempts < 1 or self.reduce_max_attempts < 1:
            raise ConfigurationError("max attempt caps must be at least 1")
        if self.tracker_blacklist_threshold < 0:
            raise ConfigurationError("tracker_blacklist_threshold out of range")
        if self.speculative_lag < 0:
            raise ConfigurationError("speculative_lag may not be negative")
        if not 0 < self.speculative_slowness <= 1:
            raise ConfigurationError("speculative_slowness must be in (0, 1]")
        if self.heartbeat_phases < 0:
            raise ConfigurationError("heartbeat_phases out of range")
        if (
            self.heartbeat_phases > 0
            and 0.05 + 0.11 * (self.heartbeat_phases - 1)
            >= self.heartbeat_interval
        ):
            raise ConfigurationError(
                "heartbeat_phases spread the phase offsets past one "
                "heartbeat_interval; use fewer phases or a longer interval"
            )

    def replace(self, **overrides) -> "HadoopConfig":
        """Return a copy with the given fields replaced."""
        import dataclasses

        return dataclasses.replace(self, **overrides)
