"""TaskTrackers: per-node task execution daemons.

A TaskTracker owns its node's map/reduce slots, spawns child JVMs for
launch directives, relays the preemption signals, and reports status
through heartbeats -- periodic ones every
``HadoopConfig.heartbeat_interval`` seconds plus out-of-band ones
whenever a task finishes, is suspended, or is resumed (Hadoop's
``mapreduce.tasktracker.outofband.heartbeat`` behaviour, which the
paper's latency numbers rely on).

Slot rules implement the core of the suspend primitive: a suspended
attempt keeps its process but *releases its slot*; resuming requires
a free slot again.  Killed attempts hold their slot for the duration
of the kill-cleanup attempt ("kill runs a cleanup task to remove
temporary outputs of the killed task").
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import SlotExhaustedError, UnknownTaskError
from repro.hadoop.attempt import AttemptRole, TaskAttempt
from repro.hadoop.config import HadoopConfig
from repro.hadoop.heartbeat import (
    AttemptStatus,
    HeartbeatReport,
    HeartbeatResponse,
    KillTaskAction,
    LaunchTaskAction,
    ResumeTaskAction,
    SuspendTaskAction,
    TrackerAction,
)
from repro.hadoop.jvm import GcPolicy
from repro.hadoop.states import (
    ATTEMPT_STATE_CODE,
    ATTEMPT_STATE_CODES,
    AttemptState,
)
from repro.osmodel.kernel import NodeKernel
from repro.sim.engine import Simulation
from repro.workloads.jobspec import TaskKind, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.jobtracker import JobTracker

#: all heartbeat events share one batch key, so same-instant heartbeats
#: from phase-locked trackers coalesce into one engine batch
HEARTBEAT_BATCH_KEY = "hb"


class AttemptStateTable:
    """Array-of-struct attempt state for one TaskTracker incarnation.

    One byte of state code per attempt ever launched on the tracker,
    plus exact per-state population counts.  Attempts write through on
    every transition (:meth:`repro.hadoop.attempt.TaskAttempt._set_state`),
    which makes the per-heartbeat suspended-attempt count an O(1) array
    read instead of a scan over the live attempt set.  A tracker
    restart installs a *fresh* table; attempts of the dead incarnation
    keep their reference to the old one, so late transitions from
    stranded processes cannot corrupt the new daemon's counts.
    """

    __slots__ = ("codes", "attempt_ids", "counts")

    def __init__(self):
        self.codes = array("B")
        self.attempt_ids: List[str] = []
        self.counts = [0] * len(ATTEMPT_STATE_CODES)

    def register(self, attempt_id: str, state: AttemptState) -> int:
        """Add an attempt; returns its slot index."""
        code = ATTEMPT_STATE_CODE[state]
        index = len(self.codes)
        self.codes.append(code)
        self.attempt_ids.append(attempt_id)
        self.counts[code] += 1
        return index

    def transition(self, index: int, old: AttemptState, new: AttemptState) -> None:
        """Move one attempt's code between states."""
        old_code = ATTEMPT_STATE_CODE[old]
        new_code = ATTEMPT_STATE_CODE[new]
        self.codes[index] = new_code
        self.counts[old_code] -= 1
        self.counts[new_code] += 1

    def count(self, state: AttemptState) -> int:
        """Current number of attempts in ``state``."""
        return self.counts[ATTEMPT_STATE_CODE[state]]

    def __len__(self) -> int:
        return len(self.codes)


class TaskTracker:
    """One node's task execution daemon."""

    def __init__(
        self,
        sim: Simulation,
        kernel: NodeKernel,
        config: HadoopConfig,
        jobtracker: "JobTracker",
        gc_policy: GcPolicy = GcPolicy.HOARD,
    ):
        self.sim = sim
        self.kernel = kernel
        self.config = config
        self.jobtracker = jobtracker
        self.gc_policy = gc_policy
        self.host = kernel.config.hostname
        self.map_slots = config.map_slots
        self.reduce_slots = config.reduce_slots
        self.attempts: Dict[str, TaskAttempt] = {}
        #: attempts that still belong in heartbeat reports: live ones
        #: plus terminal ones not yet reported.  ``attempts`` keeps the
        #: full history for lookups; iterating it per heartbeat made
        #: report building O(every attempt the node ever ran).  A dict
        #: (not a set) so iteration keeps deterministic launch order.
        self._reportable: Dict[str, TaskAttempt] = {}
        #: attempt ids (or cleanup tokens) holding a map slot
        self._map_slot_holders: Set[str] = set()
        self._reduce_slot_holders: Set[str] = set()
        #: terminal attempts not yet reported to the JobTracker
        self._unreported: List[str] = []
        self._sequence = 0
        self._heartbeat_event = None
        self._oob_pending = False
        #: per-incarnation attempt state codes + per-state counts;
        #: replaced wholesale on restart (see AttemptStateTable)
        self.attempt_table = AttemptStateTable()
        #: phase-locked heartbeat grid (config.heartbeat_phases > 0):
        #: absolute time of the first grid point and the integer index
        #: of the next one.  Grid instants are computed as
        #: ``origin + interval * tick`` -- a pure function of the tick,
        #: never an accumulation -- so same-phase trackers produce the
        #: exact same float forever and their heartbeats coalesce.
        self._phase_origin: Optional[float] = None
        self._phase_tick = 0
        self.started = False
        self.heartbeats_sent = 0
        #: callbacks fired with each TaskAttempt right after launch
        self.launch_callbacks: List = []
        jobtracker.register_tracker(self)

    # -- slot accounting ----------------------------------------------------------

    @property
    def free_map_slots(self) -> int:
        """Map slots not currently held."""
        return self.map_slots - len(self._map_slot_holders)

    @property
    def free_reduce_slots(self) -> int:
        """Reduce slots not currently held."""
        return self.reduce_slots - len(self._reduce_slot_holders)

    def _holders_for(self, kind: TaskKind) -> Set[str]:
        if kind is TaskKind.REDUCE:
            return self._reduce_slot_holders
        return self._map_slot_holders

    def _occupy_slot(self, attempt: TaskAttempt) -> None:
        holders = self._holders_for(attempt.spec.kind)
        limit = self.reduce_slots if attempt.spec.kind is TaskKind.REDUCE else self.map_slots
        if len(holders) >= limit:
            raise SlotExhaustedError(
                f"{self.host}: no free {attempt.spec.kind.value} slot for "
                f"{attempt.attempt_id}"
            )
        holders.add(attempt.attempt_id)

    def _release_slot(self, attempt: TaskAttempt) -> None:
        self._holders_for(attempt.spec.kind).discard(attempt.attempt_id)

    def suspended_attempts(self) -> List[TaskAttempt]:
        """Attempts currently suspended on this tracker."""
        return [
            a
            for a in self._reportable.values()
            if a.state is AttemptState.SUSPENDED
        ]

    # -- heartbeat loop ----------------------------------------------------------------

    def start(self, stagger: float = 0.0) -> None:
        """Begin the periodic heartbeat loop."""
        if self.started:
            return
        self.started = True
        if self.config.heartbeat_phases > 0:
            self._phase_origin = self.sim.now + stagger
            self._phase_tick = 0
        self._heartbeat_event = self.sim.schedule(
            stagger,
            self._heartbeat,
            label=f"tt.heartbeat:{self.host}",
            batch_key=HEARTBEAT_BATCH_KEY,
        )

    def request_oob_heartbeat(self) -> None:
        """Schedule an out-of-band heartbeat (coalesced)."""
        if not self.started or self._oob_pending:
            return
        self._oob_pending = True
        if self._heartbeat_event is not None:
            self._heartbeat_event.cancel()
        self._heartbeat_event = self.sim.schedule(
            self.config.oob_heartbeat_latency,
            self._heartbeat,
            True,
            label=f"tt.oob-heartbeat:{self.host}",
            batch_key=HEARTBEAT_BATCH_KEY,
        )

    def _heartbeat(self, out_of_band: bool = False) -> None:
        self._oob_pending = False
        report = self.build_report(out_of_band)
        self.heartbeats_sent += 1
        response = self.jobtracker.heartbeat(report)
        # Directives take one RPC hop to act on.
        self.sim.schedule(
            self.config.rpc_latency,
            self._execute_actions,
            response.actions,
            label=f"tt.actions:{self.host}",
        )
        self._arm_periodic_heartbeat()

    def _arm_periodic_heartbeat(self) -> None:
        """Schedule the next periodic heartbeat.

        Historical mode (``heartbeat_phases == 0``): one interval from
        now, so out-of-band heartbeats permanently shift the phase.
        Phase-locked mode: the smallest grid instant strictly after
        now, so the tracker snaps back onto its phase grid after every
        out-of-band excursion and same-phase trackers keep sharing the
        exact same firing instants.
        """
        origin = self._phase_origin
        if origin is None:
            self._heartbeat_event = self.sim.schedule(
                self.config.heartbeat_interval,
                self._heartbeat,
                label=f"tt.heartbeat:{self.host}",
                batch_key=HEARTBEAT_BATCH_KEY,
            )
            return
        interval = self.config.heartbeat_interval
        tick = self._phase_tick
        # Directives granted against this heartbeat's report land one
        # rpc hop out; reporting again before they occupy their slots
        # would double-book them (the historical paths keep the same
        # invariant: oob_heartbeat_latency > rpc_latency and periodic
        # gaps of a full interval).  So the next grid point must clear
        # now + rpc_latency, not merely now.
        horizon = self.sim.now + self.config.rpc_latency
        while origin + interval * tick <= horizon:
            tick += 1
        self._phase_tick = tick
        self._heartbeat_event = self.sim.schedule_at(
            origin + interval * tick,
            self._heartbeat,
            label=f"tt.heartbeat:{self.host}",
            batch_key=HEARTBEAT_BATCH_KEY,
        )

    def build_report(self, out_of_band: bool = False) -> HeartbeatReport:
        """Snapshot status for the JobTracker."""
        self._sequence += 1
        statuses = []
        reported_terminal = []
        for attempt in self._reportable.values():
            if attempt.state.terminal and attempt.attempt_id not in self._unreported:
                continue
            statuses.append(
                AttemptStatus(
                    attempt_id=attempt.attempt_id,
                    tip_id=attempt.tip_id,
                    job_id=attempt.job_id,
                    state=attempt.state,
                    progress=attempt.progress(),
                    resident_bytes=attempt.resident_bytes(),
                    swapped_bytes=attempt.current_swapped_bytes(),
                    discarded_network_bytes=attempt.discarded_network_bytes(),
                    oom_killed=attempt.oom_killed(),
                )
            )
            if attempt.state.terminal:
                reported_terminal.append(attempt.attempt_id)
        for attempt_id in reported_terminal:
            self._unreported.remove(attempt_id)
            self._reportable.pop(attempt_id, None)
        return HeartbeatReport(
            tracker=self.host,
            sequence=self._sequence,
            free_map_slots=self.free_map_slots,
            free_reduce_slots=self.free_reduce_slots,
            attempts=statuses,
            # O(1) table read; equals len(self.suspended_attempts())
            # because SUSPENDED is never terminal, so every suspended
            # attempt is still reportable.
            suspended_count=self.attempt_table.count(AttemptState.SUSPENDED),
            out_of_band=out_of_band,
            headroom=self.kernel.memory_headroom(),
        )

    # -- directive execution ----------------------------------------------------------------

    def _execute_actions(self, actions: List[TrackerAction]) -> None:
        if not self.started:
            # The node died while the directives were on the wire; a
            # dead daemon launches nothing (the JobTracker requeues
            # through the expiry/restart paths).
            return
        for action in actions:
            if isinstance(action, LaunchTaskAction):
                self._launch(action)
            elif isinstance(action, SuspendTaskAction):
                self._suspend(action.attempt_id)
            elif isinstance(action, ResumeTaskAction):
                self._resume(action.attempt_id)
            elif isinstance(action, KillTaskAction):
                self._kill(action.attempt_id, action.reason)
            else:  # pragma: no cover - defensive
                raise UnknownTaskError(f"unknown action {action!r}")

    def _launch(self, action: LaunchTaskAction) -> None:
        descriptor = self.jobtracker.attempt_descriptor(action.attempt_id)
        role = AttemptRole.TASK
        if action.is_setup:
            role = AttemptRole.JOB_SETUP
        elif action.is_cleanup:
            role = AttemptRole.JOB_CLEANUP
        attempt = TaskAttempt(
            tracker=self,
            attempt_id=action.attempt_id,
            tip_id=action.tip_id,
            job_id=descriptor.job_id,
            spec=descriptor.spec,
            role=role,
            gc_policy=self.gc_policy,
        )
        self.attempts[attempt.attempt_id] = attempt
        self._reportable[attempt.attempt_id] = attempt
        self._occupy_slot(attempt)
        attempt.launch()
        for callback in list(self.launch_callbacks):
            callback(attempt)

    def _suspend(self, attempt_id: str) -> None:
        attempt = self.attempts.get(attempt_id)
        if attempt is None or attempt.state.terminal:
            return  # completed in the meanwhile; heartbeat already told JT
        attempt.suspend()

    def _resume(self, attempt_id: str) -> None:
        attempt = self.attempts.get(attempt_id)
        if attempt is None or attempt.state is not AttemptState.SUSPENDED:
            return
        # Resume needs a slot back before the process may run.
        self._occupy_slot(attempt)
        attempt.resume()

    def _kill(self, attempt_id: str, reason: str) -> None:
        attempt = self.attempts.get(attempt_id)
        if attempt is None or attempt.state.terminal:
            return
        attempt.kill(reason)

    # -- attempt callbacks --------------------------------------------------------------------

    def attempt_suspended(self, attempt: TaskAttempt) -> None:
        """Stop landed: free the slot, tell the JobTracker soon."""
        self._release_slot(attempt)
        self.trace("attempt.suspended", attempt=attempt.attempt_id)
        self.request_oob_heartbeat()

    def attempt_resumed(self, attempt: TaskAttempt) -> None:
        """SIGCONT landed (slot was re-occupied before signalling)."""
        self.trace("attempt.resumed", attempt=attempt.attempt_id)
        self.request_oob_heartbeat()

    def attempt_finished(self, attempt: TaskAttempt) -> None:
        """Attempt reached a terminal state."""
        self._unreported.append(attempt.attempt_id)
        self.jobtracker.record_attempt_counters(attempt.job_id, attempt.counters)
        holders = self._holders_for(attempt.spec.kind)
        if attempt.state is AttemptState.KILLED and attempt.attempt_id in holders:
            # Hold the slot for the kill-cleanup attempt, then free it.
            self.trace("attempt.cleanup-start", attempt=attempt.attempt_id)
            self.sim.schedule(
                self.config.task_cleanup_duration,
                self._finish_cleanup,
                attempt,
                label=f"tt.cleanup:{attempt.attempt_id}",
            )
        else:
            self._release_slot(attempt)
        self.trace(
            "attempt.finished",
            attempt=attempt.attempt_id,
            state=attempt.state.value,
        )
        self.request_oob_heartbeat()

    def _finish_cleanup(self, attempt: TaskAttempt) -> None:
        self._release_slot(attempt)
        self.trace("attempt.cleanup-done", attempt=attempt.attempt_id)
        self.request_oob_heartbeat()

    # -- failure ----------------------------------------------------------------------------

    def shutdown(self) -> None:
        """The node dies: stop heartbeating, lose every process.

        Called by :meth:`repro.hadoop.jobtracker.JobTracker.tracker_lost`;
        nothing is reported back (the JobTracker requeues from its own
        bookkeeping, as real Hadoop does on tracker expiry).
        """
        self.started = False
        if self._heartbeat_event is not None:
            self._heartbeat_event.cancel()
            self._heartbeat_event = None
        for attempt in list(self.attempts.values()):
            if attempt.state.terminal or attempt.process is None:
                continue
            if not attempt.process.alive:
                continue  # already dead (repeated shutdown after a crash)
            # The process dies with the node; silence the normal
            # reporting path first.
            attempt.process.exit_callbacks.clear()
            attempt.kill("tracker lost")
        self._map_slot_holders.clear()
        self._reduce_slot_holders.clear()
        self.trace("tt.shutdown")

    def restart(self, stagger: float = 0.0) -> None:
        """The daemon comes back after a crash.

        A restarted TaskTracker has no task state (real Hadoop loses
        the in-memory attempt table with the process), so the attempt
        registry is dropped and the JobTracker is told to requeue
        anything it still believes runs here before heartbeats resume.
        """
        if self.started:
            return
        # Requeue first, while the old attempt records still exist --
        # the JobTracker reads their final progress for wasted-work
        # accounting -- then drop the state the fresh daemon lacks.
        self.jobtracker.handle_tracker_restart(self)
        self.attempts.clear()
        self._reportable.clear()
        self._unreported.clear()
        self._map_slot_holders.clear()
        self._reduce_slot_holders.clear()
        self._oob_pending = False
        # Fresh incarnation, fresh state table: stranded attempts of
        # the dead daemon keep their reference to the old table and
        # cannot perturb the new counts.  The phase grid restarts from
        # the resurrection instant.
        self.attempt_table = AttemptStateTable()
        self._phase_origin = None
        self._phase_tick = 0
        self.trace("tt.restart")
        self.start(stagger=stagger)

    # -- misc -------------------------------------------------------------------------------

    def attempt(self, attempt_id: str) -> TaskAttempt:
        """Look up an attempt by id."""
        if attempt_id not in self.attempts:
            raise UnknownTaskError(f"{self.host} has no attempt {attempt_id}")
        return self.attempts[attempt_id]

    def trace(self, label: str, **fields) -> None:
        """Record a trace event tagged with this tracker's host."""
        self.sim.trace_log.record(self.sim.now, label, host=self.host, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TaskTracker(host={self.host!r}, "
            f"free_slots={self.free_map_slots}/{self.map_slots})"
        )
