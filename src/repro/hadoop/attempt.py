"""Task attempts: one execution of a task on one TaskTracker.

The attempt owns the child JVM process and translates preemption
directives into POSIX signals -- the mechanism at the core of the
paper:

    "to suspend and resume tasks, our preemption primitive uses the
    standard POSIX SIGTSTP and SIGCONT signals."

State changes of the underlying process (stopped, resumed, exited)
bubble up to the TaskTracker, which frees/occupies slots and requests
out-of-band heartbeats.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import ProcessStateError, TaskStateError
from repro.hadoop.config import HadoopConfig
from repro.hadoop.counters import Counters
from repro.hadoop.jvm import ChildJVM, GcPolicy
from repro.hadoop.states import AttemptState
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.process import ExitReason, OSProcess
from repro.osmodel.signals import Signal
from repro.workloads.jobspec import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.tasktracker import TaskTracker


class AttemptRole(enum.Enum):
    """What the attempt executes."""

    TASK = "task"
    JOB_SETUP = "job_setup"
    JOB_CLEANUP = "job_cleanup"


class TaskAttempt:
    """One attempt of a task-in-progress, bound to a TaskTracker."""

    def __init__(
        self,
        tracker: "TaskTracker",
        attempt_id: str,
        tip_id: str,
        job_id: str,
        spec: TaskSpec,
        role: AttemptRole = AttemptRole.TASK,
        gc_policy: GcPolicy = GcPolicy.HOARD,
    ):
        self.tracker = tracker
        self.attempt_id = attempt_id
        self.tip_id = tip_id
        self.job_id = job_id
        self.spec = spec
        self.role = role
        self.gc_policy = gc_policy
        self.state = AttemptState.STARTING
        #: per-tracker array-of-struct attempt state table (None when
        #: the tracker predates it, e.g. bare test doubles); keeping
        #: the reference here means an attempt stranded by a tracker
        #: restart keeps mutating its *old* incarnation's table and can
        #: never corrupt the fresh one's counts
        self._table = getattr(tracker, "attempt_table", None)
        self._table_index = -1
        if self._table is not None:
            self._table_index = self._table.register(attempt_id, self.state)
        self.jvm: Optional[ChildJVM] = None
        self.counters = Counters()
        self.launched_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.suspend_count = 0
        self.resume_count = 0
        self._final_progress = 0.0

    # -- identity helpers ------------------------------------------------------

    @property
    def sim(self):
        """The shared simulation clock."""
        return self.tracker.sim

    @property
    def kernel(self) -> NodeKernel:
        """The node kernel this attempt runs on."""
        return self.tracker.kernel

    @property
    def config(self) -> HadoopConfig:
        """Cluster Hadoop configuration."""
        return self.tracker.config

    @property
    def pid(self) -> Optional[int]:
        """Child JVM pid (None before launch)."""
        return self.jvm.pid if self.jvm else None

    @property
    def process(self) -> Optional[OSProcess]:
        """Child JVM process (None before launch)."""
        return self.jvm.process if self.jvm else None

    def _set_state(self, new: AttemptState) -> None:
        """Every attempt state change funnels through here so the
        tracker's state table (per-state population counts read once
        per heartbeat) stays exact."""
        old = self.state
        if new is old:
            return
        self.state = new
        if self._table is not None:
            self._table.transition(self._table_index, old, new)

    # -- lifecycle -----------------------------------------------------------------

    def launch(self) -> None:
        """Spawn the child JVM and start executing."""
        if self.jvm is not None:
            raise TaskStateError(f"{self.attempt_id} already launched")
        extra = 0.0
        if self.role is AttemptRole.JOB_SETUP:
            extra = self.config.job_setup_duration
        elif self.role is AttemptRole.JOB_CLEANUP:
            extra = self.config.job_cleanup_duration
        self.jvm = ChildJVM(
            self.kernel,
            self.config,
            self.spec,
            name=self.attempt_id,
            gc_policy=self.gc_policy,
            extra_work_seconds=extra,
        )
        proc = self.jvm.process
        proc.on_exit(self._on_proc_exit)
        proc.on_stop(self._on_proc_stop)
        proc.on_resume(self._on_proc_resume)
        self.launched_at = self.sim.now
        self._set_state(AttemptState.RUNNING)
        self.jvm.start()
        self.tracker.trace("attempt.launch", attempt=self.attempt_id)

    def progress(self) -> float:
        """Task progress in [0, 1]."""
        if self.state is AttemptState.SUCCEEDED:
            return 1.0
        if self.jvm is None:
            return 0.0
        if self.state.terminal:
            return self._final_progress
        return self.jvm.progress()

    # -- preemption primitives (signal side) ------------------------------------------

    def suspend(self) -> None:
        """Deliver SIGTSTP.  The stop lands after the handler latency;
        :meth:`_on_proc_stop` confirms it."""
        if self.state not in (AttemptState.RUNNING, AttemptState.STARTING):
            return  # completed or already suspended in the meanwhile
        self._set_state(AttemptState.SUSPENDING)
        self.kernel.signal(self.pid, Signal.SIGTSTP)

    def resume(self) -> None:
        """Deliver SIGCONT; :meth:`_on_proc_resume` confirms."""
        if self.state is not AttemptState.SUSPENDED:
            return
        self.kernel.signal(self.pid, Signal.SIGCONT)

    def kill(self, reason: str = "") -> None:
        """Deliver SIGKILL (works on running and suspended attempts)."""
        if self.state.terminal or self.jvm is None:
            return
        try:
            self.kernel.signal(self.pid, Signal.SIGKILL)
        except ProcessStateError:  # pragma: no cover - defensive
            pass

    # -- process callbacks ----------------------------------------------------------------

    def _on_proc_stop(self, proc: OSProcess) -> None:
        if self.state is not AttemptState.SUSPENDING:
            # A stop we did not ask for (e.g. direct kernel signal in
            # tests); account it the same way.
            if self.state.terminal:
                return
        self._set_state(AttemptState.SUSPENDED)
        self.suspend_count += 1
        self.counters.increment("task", "suspensions")
        self.tracker.attempt_suspended(self)

    def _on_proc_resume(self, proc: OSProcess) -> None:
        if self.state is not AttemptState.SUSPENDED:
            return
        self._set_state(AttemptState.RUNNING)
        self.resume_count += 1
        self.counters.increment("task", "resumes")
        self.tracker.attempt_resumed(self)

    def _on_proc_exit(self, proc: OSProcess, reason: ExitReason) -> None:
        self._final_progress = 0.0 if self.jvm is None else self.jvm.progress()
        self.finished_at = self.sim.now
        if reason is ExitReason.EXITED:
            self._set_state(AttemptState.SUCCEEDED)
        elif reason is ExitReason.KILLED:
            self._set_state(AttemptState.KILLED)
        else:
            self._set_state(AttemptState.FAILED)
        self._finalize_counters()
        self.tracker.attempt_finished(self)

    def _finalize_counters(self) -> None:
        """Fill the task counters at attempt end (Hadoop reports them
        with the final status update)."""
        self.counters.set_value(
            "task",
            "input_bytes",
            int(self._final_progress * self.spec.input_bytes),
        )
        fetched = self.fetched_network_bytes()
        if fetched:
            self.counters.set_value("task", "shuffle_bytes_fetched", fetched)
        discarded = self.discarded_network_bytes()
        if discarded:
            self.counters.set_value(
                "task", "network_bytes_discarded", discarded
            )
        self.counters.set_value(
            "task", "swapped_bytes", self.lifetime_swapped_bytes()
        )
        if self.oom_killed():
            self.counters.increment("task", "oom_kills")
        if self.jvm is not None:
            self.counters.set_value(
                "task",
                "fault_in_ms",
                int(self.jvm.engine.fault_in_seconds * 1000),
            )
            self.counters.set_value(
                "task",
                "stopped_ms",
                int(self.jvm.process.stopped_seconds * 1000),
            )

    # -- network introspection (the shuffle study's metric) --------------------------------

    def fetched_network_bytes(self) -> int:
        """Bytes this attempt pulled over the fabric, settled to now."""
        if self.jvm is None:
            return 0
        from repro.netmodel.fetch import NetworkFetchItem

        return int(
            sum(
                item.fetched_bytes()
                for item in self.jvm.engine.plan
                if isinstance(item, NetworkFetchItem)
            )
        )

    def discarded_network_bytes(self) -> int:
        """Network traffic a kill (or failure) threw away.

        Every shuffle byte the attempt moved is lost with it -- the
        completed fetches die with the attempt's local state, and the
        in-flight ones were frozen at abort time.  Zero for succeeded
        (nothing discarded) and live attempts.
        """
        if self.jvm is None or not self.state.terminal:
            return 0
        if self.state is AttemptState.SUCCEEDED:
            return 0
        return self.fetched_network_bytes()

    # -- memory introspection (Figure 4's metric) ------------------------------------------

    def oom_killed(self) -> bool:
        """True when this attempt's JVM was reaped by the OOM killer."""
        return (
            self.process is not None
            and self.process.exit_reason is ExitReason.OOM
        )

    def current_swapped_bytes(self) -> int:
        """Bytes of this attempt's image currently in swap."""
        if self.pid is None:
            return 0
        return self.kernel.vmm.swap.swapped_bytes(self.pid)

    def lifetime_swapped_bytes(self) -> int:
        """Bytes ever paged out for this attempt -- what Figure 4 plots."""
        if self.pid is None:
            return 0
        return self.kernel.vmm.swap.lifetime_swapped_bytes(self.pid)

    def resident_bytes(self) -> int:
        """Current resident set size of the child JVM."""
        if self.process is None:
            return 0
        return self.process.image.resident

    def runtime_seconds(self) -> float:
        """Wall time from launch to completion (or now)."""
        if self.launched_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else self.sim.now
        return end - self.launched_at

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TaskAttempt({self.attempt_id}, {self.state.value})"
