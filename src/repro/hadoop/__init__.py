"""A Hadoop 1 engine model: JobTracker, TaskTrackers, heartbeats.

This package models the Hadoop pieces the paper modifies and measures:

* the **JobTracker** ("a centralized machine responsible for keeping
  track of system state and scheduling") with the paper's new task
  states ``MUST_SUSPEND``/``SUSPENDED``/``MUST_RESUME``;
* **TaskTrackers** ("machines responsible for running Map/Reduce
  tasks") that spawn child JVMs as real (simulated) OS processes and
  relay POSIX signals to them;
* the **heartbeat protocol**: periodic status reports, out-of-band
  heartbeats when a task finishes, and piggybacked directives
  (launch/kill/suspend/resume);
* **jobs, tasks and attempts** with Hadoop 1 lifecycle details that
  matter to the measured metrics: job setup/cleanup tasks, killed-task
  cleanup attempts, slot accounting.
"""

from repro.hadoop.attempt import TaskAttempt
from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.config import HadoopConfig
from repro.hadoop.heartbeat import (
    HeartbeatResponse,
    KillTaskAction,
    LaunchTaskAction,
    ResumeTaskAction,
    SuspendTaskAction,
)
from repro.hadoop.job import JobInProgress, JobState
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.states import AttemptState, TipState
from repro.hadoop.task import TaskInProgress
from repro.hadoop.tasktracker import TaskTracker

__all__ = [
    "HadoopCluster",
    "HadoopConfig",
    "JobTracker",
    "TaskTracker",
    "JobInProgress",
    "JobState",
    "TaskInProgress",
    "TaskAttempt",
    "TipState",
    "AttemptState",
    "HeartbeatResponse",
    "LaunchTaskAction",
    "KillTaskAction",
    "SuspendTaskAction",
    "ResumeTaskAction",
]
