"""Job and task counters.

A very small subset of Hadoop's counter framework: hierarchical
``group.name`` counters that attempts increment and jobs aggregate.
The experiment harness reads them to report paged bytes, signals sent,
and redundant (re-executed) work.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counters:
    """A two-level counter map with merge support."""

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, int]] = defaultdict(dict)

    def increment(self, group: str, name: str, amount: int = 1) -> int:
        """Add ``amount`` and return the new value."""
        group_map = self._groups[group]
        group_map[name] = group_map.get(name, 0) + amount
        return group_map[name]

    def set_value(self, group: str, name: str, value: int) -> None:
        """Overwrite a counter."""
        self._groups[group][name] = value

    def value(self, group: str, name: str, default: int = 0) -> int:
        """Read a counter (0 when absent)."""
        return self._groups.get(group, {}).get(name, default)

    def merge(self, other: "Counters") -> None:
        """Add every counter of ``other`` into this map."""
        for group, name, value in other:
            self.increment(group, name, value)

    def __iter__(self) -> Iterator[Tuple[str, str, int]]:
        for group, names in self._groups.items():
            for name, value in names.items():
                yield group, name, value

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict snapshot (copies)."""
        return {group: dict(names) for group, names in self._groups.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        total = sum(len(names) for names in self._groups.values())
        return f"Counters(groups={len(self._groups)}, counters={total})"


#: Counter names used by the engine.
GROUP_TASK = "task"
COUNTER_INPUT_BYTES = "input_bytes"
COUNTER_OUTPUT_BYTES = "output_bytes"
COUNTER_SWAPPED_BYTES = "swapped_bytes"
COUNTER_FAULT_IN_SECONDS_MS = "fault_in_ms"
COUNTER_WASTED_SECONDS_MS = "wasted_ms"
COUNTER_SUSPENSIONS = "suspensions"
COUNTER_RESUMES = "resumes"
