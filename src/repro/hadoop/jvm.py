"""Child JVMs: the OS processes that execute task attempts.

"In Hadoop, Map and Reduce tasks are regular Unix processes running
in child JVMs spawned by the TaskTracker" -- so a :class:`ChildJVM`
wraps one :class:`~repro.osmodel.process.OSProcess` plus the
:class:`~repro.osmodel.work.WorkPlan` derived from the task spec.

The JVM installs a ``SIGTSTP`` handler (the reason the paper uses
SIGTSTP rather than SIGSTOP: handlers "manage external state, e.g.,
when closing and reopening network connections"), so suspension pays
the configured handler latency.

Garbage-collector behaviour from the paper's Section V-B is modelled
by :class:`GcPolicy`: a collector that releases memory back to the OS
(G1-style) shrinks the suspended footprint after the map phase, while
a hoarding collector (ParallelOld-style) keeps the heap until exit.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.hadoop.config import HadoopConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.process import OSProcess
from repro.osmodel.signals import Signal
from repro.osmodel.work import (
    CpuWorkItem,
    DiskReadItem,
    DiskWriteItem,
    MemAllocItem,
    MemTouchItem,
    SleepItem,
    WorkEngine,
    WorkItem,
    WorkPlan,
)
from repro.errors import ConfigurationError
from repro.workloads.jobspec import TaskKind, TaskSpec


class GcPolicy(enum.Enum):
    """Whether the collector returns freed heap to the OS (Section V-B)."""

    HOARD = "hoard"  # ParallelOld-style: heap stays until process exit
    RELEASE = "release"  # G1-style: System.gc() after large-object disposal


def _sigtstp_noop(proc) -> None:
    """SIGTSTP handler body: streams are implicitly paused, nothing to
    tidy.  Module-level so suspended JVMs survive checkpoint pickling."""


class _GcReleaseItem(SleepItem):
    """A short GC pause that returns the stateful footprint to the OS
    (RELEASE policy only)."""

    __slots__ = ("release_bytes",)

    def __init__(self, release_bytes: int, label: str = "gc-release"):
        super().__init__(0.2, label=label)  # System.gc() pause
        self.release_bytes = release_bytes

    def begin(self, engine: WorkEngine) -> None:
        engine.kernel.release_memory(engine.process, self.release_bytes)
        self.duration = 0.2
        self.remaining = self.duration
        SleepItem.begin(self, engine)


class ChildJVM:
    """One task attempt's process and work plan."""

    def __init__(
        self,
        kernel: NodeKernel,
        config: HadoopConfig,
        spec: TaskSpec,
        name: str,
        gc_policy: GcPolicy = GcPolicy.HOARD,
        extra_work_seconds: float = 0.0,
    ):
        if spec.footprint_bytes + config.jvm_base_memory > config.child_heap_limit:
            raise ConfigurationError(
                f"task footprint exceeds child heap limit "
                f"({spec.footprint_bytes + config.jvm_base_memory} > "
                f"{config.child_heap_limit}); the paper notes the 2 GB worst "
                f"case requires an ad hoc configuration change"
            )
        self.kernel = kernel
        self.config = config
        self.spec = spec
        self.name = name
        self.gc_policy = gc_policy
        self.extra_work_seconds = extra_work_seconds
        self.process: OSProcess = kernel.spawn(name)
        # SIGTSTP handler: tidy external state before stopping.  The
        # latency is charged by the process model; the handler body is
        # a no-op here because streams are implicitly paused.
        self.process.dispositions.install(Signal.SIGTSTP, _sigtstp_noop)
        self.engine = WorkEngine(self.process, WorkPlan(self._build_items()))

    # -- plan construction ---------------------------------------------------

    def _build_items(self) -> List[WorkItem]:
        spec = self.spec
        cfg = self.config
        jitter = self.kernel.sim.rng.stream("task-jitter")
        startup = jitter.jitter(cfg.jvm_startup_time, cfg.task_time_jitter)
        self._parse_rate = jitter.jitter(spec.parse_rate, cfg.task_time_jitter)
        heap = cfg.jvm_base_memory + spec.footprint_bytes
        if spec.stateful and self.gc_policy is GcPolicy.HOARD:
            # A non-releasing collector keeps garbage on top of the
            # live state, inflating the (suspendable) footprint.
            heap += int(spec.footprint_bytes * cfg.jvm_heap_slack)
        items: List[WorkItem] = [
            SleepItem(startup, label="jvm-start"),
            MemAllocItem(heap, label="setup"),
        ]
        if spec.resume_read_bytes > 0:
            # Natjam-style fast-forward: read the checkpoint back before
            # processing the remaining input (deserialization cost).
            items.append(
                DiskReadItem(spec.resume_read_bytes, label="checkpoint-restore")
            )
        if spec.kind is TaskKind.MAP:
            items.append(
                CpuWorkItem.for_bytes(
                    spec.input_bytes,
                    self._parse_rate,
                    label="map",
                    weight=1.0,
                    reads_input=True,
                )
            )
        else:
            items.extend(self._reduce_phases())
        if self.extra_work_seconds > 0:
            # Job setup/cleanup attempts: fixed framework bookkeeping
            # (creating/removing the output directory and temp areas).
            items.append(SleepItem(self.extra_work_seconds, label="aux-work"))
        if spec.stateful:
            items.append(MemTouchItem(label="finalize"))
        else:
            items.append(SleepItem(cfg.task_finalize_time, label="finalize"))
        if self.gc_policy is GcPolicy.RELEASE and spec.stateful:
            # Dispose of the large state, then hint the collector; the
            # footprint returns to the OS before the commit phase, so a
            # task suspended while committing is cheap to hold.
            items.append(self._gc_release_item())
        if spec.output_bytes > 0:
            items.append(DiskWriteItem(spec.output_bytes, label="commit"))
        return items

    def _reduce_phases(self) -> List[WorkItem]:
        """Hadoop reduce progress: shuffle, sort, reduce thirds.

        With a network fabric attached, the shuffle third fetches the
        map outputs from the hosts that produced them as real flows
        (:class:`~repro.netmodel.fetch.NetworkFetchItem`); without
        one, it keeps the historical local disk-read stand-in.
        """
        spec = self.spec
        shuffle_bytes = spec.shuffle_bytes or spec.input_bytes
        if spec.shuffle_sources and self.kernel.fabric is not None:
            from repro.netmodel.fetch import NetworkFetchItem

            shuffle_item: WorkItem = NetworkFetchItem(
                spec.shuffle_sources, label="shuffle", weight=1.0 / 3
            )
        else:
            shuffle_item = DiskReadItem(
                shuffle_bytes, label="shuffle", weight=1.0 / 3
            )
        return [
            shuffle_item,
            CpuWorkItem(
                shuffle_bytes / self.config.sort_rate,
                label="sort",
                weight=1.0 / 3,
            ),
            CpuWorkItem.for_bytes(
                spec.input_bytes,
                self._parse_rate,
                label="reduce",
                weight=1.0 - 2.0 / 3,
                reads_input=False,
            ),
        ]

    def _gc_release_item(self) -> WorkItem:
        """A short GC pause that returns the stateful footprint to the OS.

        Only meaningful for the RELEASE policy: the ablation bench
        compares suspended footprints (and hence paging overheads)
        under the two collectors.
        """
        return _GcReleaseItem(self.spec.footprint_bytes, label="gc-release")

    # -- convenience -----------------------------------------------------------

    @property
    def pid(self) -> int:
        """The underlying process id."""
        return self.process.pid

    def start(self) -> None:
        """Begin executing the plan."""
        self.engine.start()

    def progress(self) -> float:
        """Weighted task progress in [0, 1]."""
        return self.engine.progress()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ChildJVM(name={self.name!r}, pid={self.pid})"
