"""Heartbeat protocol messages.

"Hadoop has a 'heartbeat' mechanism where, at fixed intervals and
every time a task finishes, TaskTrackers inform the JobTracker about
their state."  The JobTracker's answer piggybacks directives; the
paper adds :class:`SuspendTaskAction` and :class:`ResumeTaskAction`
alongside the existing launch/kill actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.hadoop.states import AttemptState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.osmodel.vmm import MemoryHeadroom


@dataclass(frozen=True, slots=True)
class AttemptStatus:
    """One attempt's status inside a heartbeat report."""

    attempt_id: str
    tip_id: str
    job_id: str
    state: AttemptState
    progress: float
    resident_bytes: int = 0
    swapped_bytes: int = 0
    #: shuffle traffic a terminal (killed/failed) attempt discards;
    #: the JobTracker charges it to the wasted-network-bytes ledger
    discarded_network_bytes: int = 0
    #: True when a FAILED attempt died to the OOM killer; the
    #: JobTracker charges its loss to the oom-kill ledger cause
    oom_killed: bool = False


@dataclass(slots=True)
class HeartbeatReport:
    """TaskTracker -> JobTracker."""

    tracker: str
    sequence: int
    free_map_slots: int
    free_reduce_slots: int
    attempts: List[AttemptStatus] = field(default_factory=list)
    suspended_count: int = 0
    out_of_band: bool = False
    #: per-node memory/swap headroom snapshot (Section III-A's
    #: operands), taken once per heartbeat by the TaskTracker
    headroom: Optional["MemoryHeadroom"] = None

    def status_of(self, attempt_id: str) -> Optional[AttemptStatus]:
        """Find one attempt's status in this report."""
        for status in self.attempts:
            if status.attempt_id == attempt_id:
                return status
        return None


class TrackerAction:
    """Base class for piggybacked directives."""

    __slots__ = ()

    def describe(self) -> str:
        """Short human-readable form for traces."""
        return type(self).__name__


@dataclass(slots=True)
class LaunchTaskAction(TrackerAction):
    """Start a new attempt of ``tip_id`` on the tracker."""

    tip_id: str
    attempt_id: str
    is_setup: bool = False
    is_cleanup: bool = False

    def describe(self) -> str:
        kind = "setup" if self.is_setup else "cleanup" if self.is_cleanup else "task"
        return f"launch[{kind}] {self.attempt_id}"


@dataclass(slots=True)
class KillTaskAction(TrackerAction):
    """SIGKILL an attempt (and run its cleanup attempt)."""

    attempt_id: str
    reason: str = ""

    def describe(self) -> str:
        return f"kill {self.attempt_id} ({self.reason})"


@dataclass(slots=True)
class SuspendTaskAction(TrackerAction):
    """SIGTSTP an attempt -- the paper's new directive."""

    attempt_id: str

    def describe(self) -> str:
        return f"suspend {self.attempt_id}"


@dataclass(slots=True)
class ResumeTaskAction(TrackerAction):
    """SIGCONT a suspended attempt -- the paper's new directive."""

    attempt_id: str

    def describe(self) -> str:
        return f"resume {self.attempt_id}"


@dataclass(slots=True)
class HeartbeatResponse:
    """JobTracker -> TaskTracker."""

    sequence: int
    actions: List[TrackerAction] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable action list."""
        return "; ".join(a.describe() for a in self.actions) or "<none>"
