"""Heartbeat protocol messages.

"Hadoop has a 'heartbeat' mechanism where, at fixed intervals and
every time a task finishes, TaskTrackers inform the JobTracker about
their state."  The JobTracker's answer piggybacks directives; the
paper adds :class:`SuspendTaskAction` and :class:`ResumeTaskAction`
alongside the existing launch/kill actions.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.hadoop.states import AttemptState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.job import JobInProgress
    from repro.osmodel.vmm import MemoryHeadroom


@dataclass(frozen=True, slots=True)
class AttemptStatus:
    """One attempt's status inside a heartbeat report."""

    attempt_id: str
    tip_id: str
    job_id: str
    state: AttemptState
    progress: float
    resident_bytes: int = 0
    swapped_bytes: int = 0
    #: shuffle traffic a terminal (killed/failed) attempt discards;
    #: the JobTracker charges it to the wasted-network-bytes ledger
    discarded_network_bytes: int = 0
    #: True when a FAILED attempt died to the OOM killer; the
    #: JobTracker charges its loss to the oom-kill ledger cause
    oom_killed: bool = False


@dataclass(slots=True)
class HeartbeatReport:
    """TaskTracker -> JobTracker."""

    tracker: str
    sequence: int
    free_map_slots: int
    free_reduce_slots: int
    attempts: List[AttemptStatus] = field(default_factory=list)
    suspended_count: int = 0
    out_of_band: bool = False
    #: per-node memory/swap headroom snapshot (Section III-A's
    #: operands), taken once per heartbeat by the TaskTracker
    headroom: Optional["MemoryHeadroom"] = None

    def status_of(self, attempt_id: str) -> Optional[AttemptStatus]:
        """Find one attempt's status in this report."""
        for status in self.attempts:
            if status.attempt_id == attempt_id:
                return status
        return None


class TrackerAction:
    """Base class for piggybacked directives."""

    __slots__ = ()

    def describe(self) -> str:
        """Short human-readable form for traces."""
        return type(self).__name__


@dataclass(slots=True)
class LaunchTaskAction(TrackerAction):
    """Start a new attempt of ``tip_id`` on the tracker."""

    tip_id: str
    attempt_id: str
    is_setup: bool = False
    is_cleanup: bool = False

    def describe(self) -> str:
        kind = "setup" if self.is_setup else "cleanup" if self.is_cleanup else "task"
        return f"launch[{kind}] {self.attempt_id}"


@dataclass(slots=True)
class KillTaskAction(TrackerAction):
    """SIGKILL an attempt (and run its cleanup attempt)."""

    attempt_id: str
    reason: str = ""

    def describe(self) -> str:
        return f"kill {self.attempt_id} ({self.reason})"


@dataclass(slots=True)
class SuspendTaskAction(TrackerAction):
    """SIGTSTP an attempt -- the paper's new directive."""

    attempt_id: str

    def describe(self) -> str:
        return f"suspend {self.attempt_id}"


@dataclass(slots=True)
class ResumeTaskAction(TrackerAction):
    """SIGCONT a suspended attempt -- the paper's new directive."""

    attempt_id: str

    def describe(self) -> str:
        return f"resume {self.attempt_id}"


@dataclass(slots=True)
class HeartbeatResponse:
    """JobTracker -> TaskTracker."""

    sequence: int
    actions: List[TrackerAction] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable action list."""
        return "; ".join(a.describe() for a in self.actions) or "<none>"


class HeartbeatBatch:
    """Shared scheduling context for one batch of same-instant heartbeats.

    When ``HadoopConfig.batch_heartbeats`` is on, the JobTracker keeps
    one of these per engine event batch (see
    :attr:`repro.sim.engine.Simulation.batch_id`): the job snapshot, the
    pending-aux job list, and the scheduler's sorted job order are
    computed once for the first heartbeat of the batch and *repaired*
    -- via the jobs' observer notes -- rather than rebuilt for every
    subsequent same-instant heartbeat.  Validity is
    ``(batch_id, jobs epoch)``: a new batch, a submitted job, or any
    job completion/kill discards the context wholesale.

    The per-heartbeat answers produced through a batch context are
    *identical* to the historical rebuild-every-time path; the
    differential/property suites in ``tests/test_batched_differential.py``
    and ``tests/test_batch_properties.py`` hold the two byte-for-byte
    equal.
    """

    __slots__ = (
        "batch_id",
        "epoch",
        "jobs",
        "job_pos",
        "aux_pos",
        "aux_jobs",
        "aux_ids",
        "aux_dirty",
        "size_dirty",
        "sched_dirty",
        "key_of",
        "cand_keys",
        "cand_jobs",
        "cand_ids",
    )

    def __init__(self, batch_id: int, epoch: int, jobs: List["JobInProgress"]):
        self.batch_id = batch_id
        self.epoch = epoch
        #: running-jobs snapshot in submission order (the JobTracker's
        #: iteration order); stable for the life of the context because
        #: any membership change bumps the epoch
        self.jobs = jobs
        self.job_pos: Dict[str, int] = {
            job.job_id: i for i, job in enumerate(jobs)
        }
        #: jobs with a pending setup/cleanup tip, as parallel lists
        #: sorted by submission position (= historical scan order);
        #: repaired by bisect on aux notes instead of re-scanned
        self.aux_pos: List[int] = []
        self.aux_jobs: List["JobInProgress"] = []
        self.aux_ids: Set[str] = set()
        for i, job in enumerate(jobs):
            if job.pending_aux_tip() is not None:
                self.aux_pos.append(i)
                self.aux_jobs.append(job)
                self.aux_ids.add(job.job_id)
        #: jobs whose pending-aux verdict may have moved since the last
        #: repair -- dicts keyed by job_id (NOT sets of jobs: set
        #: iteration order hashes object ids and is not deterministic)
        self.aux_dirty: Dict[str, "JobInProgress"] = {}
        #: jobs whose remaining-size sort key may have moved
        self.size_dirty: Dict[str, "JobInProgress"] = {}
        #: jobs whose has-schedulable-tips verdict may have moved
        self.sched_dirty: Dict[str, "JobInProgress"] = {}
        #: scheduler-owned SRPT bookkeeping, filled lazily on the
        #: scheduler's first walk of the batch: job_id -> sort key for
        #: *every* job, plus the parallel sorted key/job lists (and id
        #: set) of just the jobs with schedulable tips -- so each walk
        #: visits candidates, not the whole live-job set
        self.key_of: Optional[dict] = None
        self.cand_keys: Optional[list] = None
        self.cand_jobs: Optional[List["JobInProgress"]] = None
        self.cand_ids: Optional[Set[str]] = None

    def note(self, job: "JobInProgress", kind: str) -> None:
        """Observer hook: a job's hot state moved mid-batch."""
        if kind == "size":
            self.size_dirty[job.job_id] = job
        elif kind == "sched":
            self.sched_dirty[job.job_id] = job
        else:
            self.aux_dirty[job.job_id] = job

    def refresh_aux(self) -> None:
        """Repair the pending-aux lists from the dirty notes."""
        if not self.aux_dirty:
            return
        for job_id, job in self.aux_dirty.items():
            pos = self.job_pos.get(job_id)
            if pos is None:
                continue  # defensive: unknown job cannot be listed
            pending = job.pending_aux_tip() is not None
            present = job_id in self.aux_ids
            if pending and not present:
                at = bisect.bisect_left(self.aux_pos, pos)
                self.aux_pos.insert(at, pos)
                self.aux_jobs.insert(at, job)
                self.aux_ids.add(job_id)
            elif not pending and present:
                at = bisect.bisect_left(self.aux_pos, pos)
                del self.aux_pos[at]
                del self.aux_jobs[at]
                self.aux_ids.discard(job_id)
        self.aux_dirty.clear()
