"""Tasks-in-progress: the JobTracker's view of one logical task.

A TIP owns the attempt history and the paper's extended state machine
(``MUST_SUSPEND``/``SUSPENDED``/``MUST_RESUME`` alongside the stock
states).  Transitions are validated against
:data:`repro.hadoop.states.TIP_TRANSITIONS`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Set

from repro.errors import TaskStateError
from repro.hadoop.states import TIP_STATE_CODE, TipState, check_tip_transition
from repro.workloads.jobspec import TaskKind, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.job import JobInProgress


class TipRole(enum.Enum):
    """Real work or per-job framework bookkeeping."""

    MAP = "m"
    REDUCE = "r"
    JOB_SETUP = "js"
    JOB_CLEANUP = "jc"


class TaskInProgress:
    """One logical task of a job.

    ``__slots__`` because scale replays create one TIP per task of
    every job in the workload and schedulers touch them on every
    heartbeat; dropping the per-instance dict measurably shrinks both
    footprint and attribute-access time.
    """

    __slots__ = (
        "job",
        "index",
        "spec",
        "role",
        "full_seconds",
        "tip_id",
        "state",
        "hot",
        "hot_index",
        "_tracker",
        "tracker_observer",
        "active_attempt_id",
        "attempt_ids",
        "next_attempt_number",
        "_progress",
        "finished_at",
        "first_launched_at",
        "last_launched_at",
        "wasted_seconds",
        "failed_attempt_count",
        "failed_on",
        "speculative_attempt_id",
        "speculative_tracker",
        "speculative_launched_at",
        "output_lost_count",
        "suspended_seconds",
        "_suspended_at",
        "directive_issued_at",
        "directive_sent_at",
        "locality_skipped_at",
    )

    def __init__(
        self,
        job: "JobInProgress",
        index: int,
        spec: TaskSpec,
        role: TipRole = TipRole.MAP,
    ):
        self.job = job
        self.index = index
        self.spec = spec
        self.role = role
        #: single-core seconds of the full task body (static: derived
        #: from the immutable base spec); schedulers read this on every
        #: heartbeat, so it is computed once
        self.full_seconds = spec.input_bytes / spec.parse_rate
        self.tip_id = f"task_{job.job_id}_{role.value}_{index:06d}"
        self.state = TipState.UNASSIGNED
        #: array-of-struct backing shared with the sibling tips of the
        #: job (:class:`repro.hadoop.job.JobHotArrays`); None until the
        #: owning job adopts the tip (standalone tips in unit tests
        #: keep the per-object fallback fields)
        self.hot = None
        self.hot_index = -1
        self._tracker: Optional[str] = None
        #: callback(tip, old_host, new_host) fired on every tracker
        #: (re)binding; the JobTracker uses it to keep its per-tracker
        #: tip index exact without rescanning all tips per heartbeat
        self.tracker_observer = None
        self.active_attempt_id: Optional[str] = None
        self.attempt_ids: List[str] = []
        self.next_attempt_number = 0
        self._progress = 0.0
        self.finished_at: Optional[float] = None
        self.first_launched_at: Optional[float] = None
        self.last_launched_at: Optional[float] = None
        #: seconds of work discarded by kill-style preemption
        self.wasted_seconds = 0.0
        #: attempts that ended in FAILED (counts toward max-attempts)
        self.failed_attempt_count = 0
        #: hosts where an attempt of this TIP failed (avoided on retry)
        self.failed_on: Set[str] = set()
        #: backup attempt launched by speculative execution, if any
        self.speculative_attempt_id: Optional[str] = None
        self.speculative_tracker: Optional[str] = None
        self.speculative_launched_at: Optional[float] = None
        #: how many times this TIP's completed output was lost with a
        #: dead tracker and had to be recomputed
        self.output_lost_count = 0
        #: wall time this TIP's current attempt spent suspended; the
        #: speculator excludes it from progress-rate runtimes so a
        #: resumed victim is not misread as a straggler
        self.suspended_seconds = 0.0
        self._suspended_at: Optional[float] = None
        #: when the user/scheduler issued the outstanding directive
        self.directive_issued_at: Optional[float] = None
        #: when the JobTracker last piggybacked it on a heartbeat
        self.directive_sent_at: Optional[float] = None
        #: when delay scheduling first skipped this tip on an off-rack
        #: slot offer; once the locality wait is exhausted the tip
        #: accepts any slot (see TaskScheduler.locality knob)
        self.locality_skipped_at: Optional[float] = None

    # -- array-of-struct adoption ------------------------------------------------

    def adopt_hot(self, hot, index: int) -> None:
        """Move this tip's hot fields into the job's shared arrays.

        Called once by the owning job right after construction; the
        arrays become the source of truth for progress, state code and
        tracker binding, and the per-object fields mirror them.
        """
        self.hot = hot
        self.hot_index = index
        hot.progress[index] = self._progress
        hot.full_seconds[index] = self.full_seconds
        hot.state_codes[index] = TIP_STATE_CODE[self.state]
        hot.trackers[index] = self._tracker

    # -- tracker binding --------------------------------------------------------

    @property
    def tracker(self) -> Optional[str]:
        """Host currently running this TIP's active attempt (if any)."""
        return self._tracker

    @tracker.setter
    def tracker(self, host: Optional[str]) -> None:
        old = self._tracker
        if host == old:
            return
        self._tracker = host
        if self.hot is not None:
            self.hot.trackers[self.hot_index] = host
        if self.tracker_observer is not None:
            self.tracker_observer(self, old, host)

    # -- progress ----------------------------------------------------------------

    @property
    def progress(self) -> float:
        """Fraction of the task body completed (last reported)."""
        if self.hot is not None:
            return self.hot.progress[self.hot_index]
        return self._progress

    @progress.setter
    def progress(self, value: float) -> None:
        # Route through the job so its cached remaining-size aggregate
        # (the HFSP per-heartbeat sort key) knows to recompute.
        if self.hot is not None:
            self.hot.progress[self.hot_index] = value
        else:
            self._progress = value
        self.job.note_tip_progress()

    # -- state machine ----------------------------------------------------------

    def set_state(self, new: TipState) -> None:
        """Transition with validation."""
        check_tip_transition(self.state, new)
        old = self.state
        self.state = new
        if self.hot is not None:
            self.hot.state_codes[self.hot_index] = TIP_STATE_CODE[new]
        self.job.note_tip_state_changed(old, new, self)

    @property
    def schedulable(self) -> bool:
        """True when the JobTracker may start a (new) attempt."""
        return self.state is TipState.UNASSIGNED

    def work_seconds(self, progress: float = 1.0) -> float:
        """Single-core seconds behind ``progress`` of this task's body.

        The one place the task-cost model lives: wasted-work accounting
        (kills, failures, node losses, speculation losers) all charge
        through here.
        """
        return progress * self.full_seconds

    @property
    def is_aux(self) -> bool:
        """True for job setup/cleanup bookkeeping tasks."""
        return self.role in (TipRole.JOB_SETUP, TipRole.JOB_CLEANUP)

    @property
    def complete(self) -> bool:
        """True once the task succeeded."""
        return self.state is TipState.SUCCEEDED

    # -- attempt management --------------------------------------------------------

    def new_attempt_id(self, tracker: str) -> str:
        """Allocate the next attempt id and bind the TIP to a tracker."""
        attempt_id = f"attempt_{self.tip_id}_{self.next_attempt_number}"
        self.next_attempt_number += 1
        self.attempt_ids.append(attempt_id)
        self.active_attempt_id = attempt_id
        self.tracker = tracker
        return attempt_id

    def mark_launched(self, now: float) -> None:
        """Record the (first) attempt launch; TIP becomes RUNNING."""
        if self.first_launched_at is None:
            self.first_launched_at = now
        self.last_launched_at = now
        self.suspended_seconds = 0.0
        self._suspended_at = None
        self.locality_skipped_at = None
        self.set_state(TipState.RUNNING)

    def mark_succeeded(self, now: float) -> None:
        """Attempt reported success."""
        self.set_state(TipState.SUCCEEDED)
        self.progress = 1.0
        self.finished_at = now
        self.active_attempt_id = None
        if self.role in (TipRole.MAP, TipRole.REDUCE):
            self.job.note_work_tip_completed(+1)

    # -- speculative execution ------------------------------------------------------

    @property
    def has_speculative(self) -> bool:
        """True while a backup attempt exists for this TIP."""
        return self.speculative_attempt_id is not None

    def new_speculative_attempt_id(
        self, tracker: str, now: Optional[float] = None
    ) -> str:
        """Allocate a backup attempt id without disturbing the primary."""
        attempt_id = f"attempt_{self.tip_id}_{self.next_attempt_number}"
        self.next_attempt_number += 1
        self.attempt_ids.append(attempt_id)
        self.speculative_attempt_id = attempt_id
        self.speculative_tracker = tracker
        self.speculative_launched_at = now
        return attempt_id

    def clear_speculative(self) -> None:
        """Forget the backup attempt (it finished or its node died)."""
        self.speculative_attempt_id = None
        self.speculative_tracker = None
        self.speculative_launched_at = None

    def promote_speculative(self) -> None:
        """The backup overtook the primary: it becomes the attempt of
        record (called just before :meth:`mark_succeeded`).

        The launch time and suspension total switch to the backup's so
        whole-life progress rates (the speculator's peer mean) describe
        the attempt that actually completed, not the replaced primary.
        """
        self.active_attempt_id = self.speculative_attempt_id
        self.tracker = self.speculative_tracker
        if self.speculative_launched_at is not None:
            self.last_launched_at = self.speculative_launched_at
            self.suspended_seconds = 0.0
            self._suspended_at = None
        self.clear_speculative()

    def mark_killed_attempt(self, progress_lost: float, reschedule: bool) -> None:
        """Attempt was killed; optionally requeue the TIP.

        ``progress_lost`` (fraction of the task) is converted to
        wasted work for the redundant-work accounting the paper's
        makespan metric surfaces.
        """
        self.wasted_seconds += self.work_seconds(progress_lost)
        self.active_attempt_id = None
        self.tracker = None
        self.progress = 0.0
        if self.state is not TipState.KILLED:
            self.set_state(TipState.KILLED)
        if reschedule:
            self.set_state(TipState.UNASSIGNED)

    def mark_failed_attempt(
        self, progress_lost: float, tracker: Optional[str]
    ) -> None:
        """Attempt failed (task error, not a kill); count it toward the
        retry cap and remember the host so retries avoid it.

        The retry-vs-fail-the-job decision is the JobTracker's
        (:meth:`~repro.hadoop.jobtracker.JobTracker._on_attempt_failed`
        checks the attempt cap); the discarded work is accounted like a
        kill.
        """
        self.wasted_seconds += self.work_seconds(progress_lost)
        self.failed_attempt_count += 1
        if tracker is not None:
            self.failed_on.add(tracker)
        self.active_attempt_id = None
        self.tracker = None
        self.progress = 0.0
        if self.state is not TipState.FAILED:
            self.set_state(TipState.FAILED)

    def mark_lost_tracker(self) -> None:
        """The tracker died; requeue (suspended image is lost too)."""
        if self.state.terminal:
            return
        self.active_attempt_id = None
        self.tracker = None
        self.progress = 0.0
        self.set_state(TipState.UNASSIGNED)

    def mark_output_lost(self) -> None:
        """A completed map's output died with its tracker; re-execute.

        Legal only from SUCCEEDED; the lost work is charged as wasted
        (the whole task body must be recomputed).
        """
        self.wasted_seconds += self.work_seconds()
        self.output_lost_count += 1
        self.progress = 0.0
        self.finished_at = None
        self.active_attempt_id = None
        self.tracker = None
        self.set_state(TipState.UNASSIGNED)
        if self.role in (TipRole.MAP, TipRole.REDUCE):
            self.job.note_work_tip_completed(-1)

    # -- preemption-side transitions -----------------------------------------------

    def request_suspend(self, now: float) -> None:
        """User/scheduler asked to suspend; legal only while RUNNING."""
        if self.state is not TipState.RUNNING:
            raise TaskStateError(
                f"cannot suspend {self.tip_id} in state {self.state.value}"
            )
        self.set_state(TipState.MUST_SUSPEND)
        self.directive_issued_at = now
        self.directive_sent_at = None

    def confirm_suspended(self, now: Optional[float] = None) -> None:
        """Heartbeat confirmed the stop landed."""
        self.set_state(TipState.SUSPENDED)
        self.directive_issued_at = None
        self.directive_sent_at = None
        self._suspended_at = now

    def request_resume(self, now: float) -> None:
        """User/scheduler asked to resume; legal only while SUSPENDED."""
        if self.state is not TipState.SUSPENDED:
            raise TaskStateError(
                f"cannot resume {self.tip_id} in state {self.state.value}"
            )
        self.set_state(TipState.MUST_RESUME)
        self.directive_issued_at = now
        self.directive_sent_at = None

    def confirm_resumed(self, now: Optional[float] = None) -> None:
        """Heartbeat confirmed the process is running again."""
        self.set_state(TipState.RUNNING)
        self.directive_issued_at = None
        self.directive_sent_at = None
        if now is not None and self._suspended_at is not None:
            self.suspended_seconds += now - self._suspended_at
        self._suspended_at = None

    def request_kill(self, now: float) -> None:
        """User/scheduler asked to kill the active attempt."""
        if self.state.terminal or self.state is TipState.UNASSIGNED:
            raise TaskStateError(
                f"cannot kill {self.tip_id} in state {self.state.value}"
            )
        self.set_state(TipState.MUST_KILL)
        self.directive_issued_at = now
        self.directive_sent_at = None

    @property
    def kind(self) -> TaskKind:
        """Map or reduce."""
        return self.spec.kind

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TaskInProgress({self.tip_id}, {self.state.value})"
