"""Tasks-in-progress: the JobTracker's view of one logical task.

A TIP owns the attempt history and the paper's extended state machine
(``MUST_SUSPEND``/``SUSPENDED``/``MUST_RESUME`` alongside the stock
states).  Transitions are validated against
:data:`repro.hadoop.states.TIP_TRANSITIONS`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional

from repro.errors import TaskStateError
from repro.hadoop.states import TipState, check_tip_transition
from repro.workloads.jobspec import TaskKind, TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.job import JobInProgress


class TipRole(enum.Enum):
    """Real work or per-job framework bookkeeping."""

    MAP = "m"
    REDUCE = "r"
    JOB_SETUP = "js"
    JOB_CLEANUP = "jc"


class TaskInProgress:
    """One logical task of a job."""

    def __init__(
        self,
        job: "JobInProgress",
        index: int,
        spec: TaskSpec,
        role: TipRole = TipRole.MAP,
    ):
        self.job = job
        self.index = index
        self.spec = spec
        self.role = role
        self.tip_id = f"task_{job.job_id}_{role.value}_{index:06d}"
        self.state = TipState.UNASSIGNED
        self.tracker: Optional[str] = None
        self.active_attempt_id: Optional[str] = None
        self.attempt_ids: List[str] = []
        self.next_attempt_number = 0
        self.progress = 0.0
        self.finished_at: Optional[float] = None
        self.first_launched_at: Optional[float] = None
        #: seconds of work discarded by kill-style preemption
        self.wasted_seconds = 0.0
        #: when the user/scheduler issued the outstanding directive
        self.directive_issued_at: Optional[float] = None
        #: when the JobTracker last piggybacked it on a heartbeat
        self.directive_sent_at: Optional[float] = None

    # -- state machine ----------------------------------------------------------

    def set_state(self, new: TipState) -> None:
        """Transition with validation."""
        check_tip_transition(self.state, new)
        self.state = new

    @property
    def schedulable(self) -> bool:
        """True when the JobTracker may start a (new) attempt."""
        return self.state is TipState.UNASSIGNED

    @property
    def is_aux(self) -> bool:
        """True for job setup/cleanup bookkeeping tasks."""
        return self.role in (TipRole.JOB_SETUP, TipRole.JOB_CLEANUP)

    @property
    def complete(self) -> bool:
        """True once the task succeeded."""
        return self.state is TipState.SUCCEEDED

    # -- attempt management --------------------------------------------------------

    def new_attempt_id(self, tracker: str) -> str:
        """Allocate the next attempt id and bind the TIP to a tracker."""
        attempt_id = f"attempt_{self.tip_id}_{self.next_attempt_number}"
        self.next_attempt_number += 1
        self.attempt_ids.append(attempt_id)
        self.active_attempt_id = attempt_id
        self.tracker = tracker
        return attempt_id

    def mark_launched(self, now: float) -> None:
        """Record the (first) attempt launch; TIP becomes RUNNING."""
        if self.first_launched_at is None:
            self.first_launched_at = now
        self.set_state(TipState.RUNNING)

    def mark_succeeded(self, now: float) -> None:
        """Attempt reported success."""
        self.set_state(TipState.SUCCEEDED)
        self.progress = 1.0
        self.finished_at = now
        self.active_attempt_id = None

    def mark_killed_attempt(self, progress_lost: float, reschedule: bool) -> None:
        """Attempt was killed; optionally requeue the TIP.

        ``progress_lost`` (fraction of the task) is converted to
        wasted work for the redundant-work accounting the paper's
        makespan metric surfaces.
        """
        self.wasted_seconds += progress_lost * self.spec.input_bytes / self.spec.parse_rate
        self.active_attempt_id = None
        self.tracker = None
        self.progress = 0.0
        if self.state is not TipState.KILLED:
            self.set_state(TipState.KILLED)
        if reschedule:
            self.set_state(TipState.UNASSIGNED)

    def mark_lost_tracker(self) -> None:
        """The tracker died; requeue (suspended image is lost too)."""
        if self.state.terminal:
            return
        self.active_attempt_id = None
        self.tracker = None
        self.progress = 0.0
        self.set_state(TipState.UNASSIGNED)

    # -- preemption-side transitions -----------------------------------------------

    def request_suspend(self, now: float) -> None:
        """User/scheduler asked to suspend; legal only while RUNNING."""
        if self.state is not TipState.RUNNING:
            raise TaskStateError(
                f"cannot suspend {self.tip_id} in state {self.state.value}"
            )
        self.set_state(TipState.MUST_SUSPEND)
        self.directive_issued_at = now
        self.directive_sent_at = None

    def confirm_suspended(self) -> None:
        """Heartbeat confirmed the stop landed."""
        self.set_state(TipState.SUSPENDED)
        self.directive_issued_at = None
        self.directive_sent_at = None

    def request_resume(self, now: float) -> None:
        """User/scheduler asked to resume; legal only while SUSPENDED."""
        if self.state is not TipState.SUSPENDED:
            raise TaskStateError(
                f"cannot resume {self.tip_id} in state {self.state.value}"
            )
        self.set_state(TipState.MUST_RESUME)
        self.directive_issued_at = now
        self.directive_sent_at = None

    def confirm_resumed(self) -> None:
        """Heartbeat confirmed the process is running again."""
        self.set_state(TipState.RUNNING)
        self.directive_issued_at = None
        self.directive_sent_at = None

    def request_kill(self, now: float) -> None:
        """User/scheduler asked to kill the active attempt."""
        if self.state.terminal or self.state is TipState.UNASSIGNED:
            raise TaskStateError(
                f"cannot kill {self.tip_id} in state {self.state.value}"
            )
        self.set_state(TipState.MUST_KILL)
        self.directive_issued_at = now
        self.directive_sent_at = None

    @property
    def kind(self) -> TaskKind:
        """Map or reduce."""
        return self.spec.kind

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TaskInProgress({self.tip_id}, {self.state.value})"
