"""The JobTracker: cluster state, heartbeats, and the preemption API.

"Mirroring the implementation of the kill primitive in Hadoop, we
introduce i) new messages between the JobTracker ... and TaskTrackers
..., and ii) new identifiers for task states in the JobTracker."

The preemption API (:meth:`JobTracker.suspend_task`,
:meth:`JobTracker.resume_task`, :meth:`JobTracker.kill_task`) "can be
used both by users on the command line and by schedulers".  Directives
are piggybacked on the next heartbeat from the task's TaskTracker and
confirmed by the one after, exactly as Section III-B describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import (
    TaskStateError,
    UnknownJobError,
    UnknownTaskError,
)
from repro.hadoop.config import HadoopConfig
from repro.hadoop.heartbeat import (
    AttemptStatus,
    HeartbeatReport,
    HeartbeatResponse,
    KillTaskAction,
    LaunchTaskAction,
    ResumeTaskAction,
    SuspendTaskAction,
    TrackerAction,
)
from repro.hadoop.job import JobInProgress, JobState
from repro.hadoop.states import AttemptState, TipState
from repro.hadoop.task import TaskInProgress, TipRole
from repro.sim.engine import Simulation
from repro.workloads.jobspec import JobSpec, TaskKind, TaskSpec


@dataclass(frozen=True)
class AttemptDescriptor:
    """Everything a TaskTracker needs to launch an attempt."""

    attempt_id: str
    tip_id: str
    job_id: str
    spec: TaskSpec
    is_setup: bool = False
    is_cleanup: bool = False


class JobTracker:
    """Central coordinator: jobs, tasks, trackers, scheduling."""

    def __init__(self, sim: Simulation, config: HadoopConfig, scheduler):
        self.sim = sim
        self.config = config
        self.scheduler = scheduler
        self.jobs: Dict[str, JobInProgress] = {}
        self.trackers: Dict[str, "object"] = {}
        self._tips: Dict[str, TaskInProgress] = {}
        self._descriptors: Dict[str, AttemptDescriptor] = {}
        self._job_counter = itertools.count(1)
        self._completion_callbacks: List[Callable[[JobInProgress], None]] = []
        #: hooks that may rewrite a TaskSpec at attempt-creation time
        #: (used by checkpoint-based primitives to fast-forward)
        self.spec_transformers: List[
            Callable[[TaskInProgress, TaskSpec], TaskSpec]
        ] = []
        self.heartbeats_received = 0
        scheduler.bind(self)

    # -- registration -------------------------------------------------------------

    def register_tracker(self, tracker) -> None:
        """Called by TaskTracker constructors."""
        self.trackers[tracker.host] = tracker

    def on_job_complete(self, callback: Callable[[JobInProgress], None]) -> None:
        """Register a callback fired when any job reaches SUCCEEDED."""
        self._completion_callbacks.append(callback)

    # -- job API ---------------------------------------------------------------------

    def submit_job(self, spec: JobSpec) -> JobInProgress:
        """Accept a job; its setup task becomes schedulable immediately."""
        job_id = f"{next(self._job_counter):04d}"
        job = JobInProgress(
            job_id,
            spec,
            submit_time=self.sim.now,
            run_setup_cleanup=self.config.run_job_setup_cleanup,
        )
        self.jobs[job_id] = job
        for tip in job.all_tips():
            self._tips[tip.tip_id] = tip
        self.trace("jt.submit", job=job_id, name=spec.name)
        self.scheduler.job_added(job)
        return job

    def job(self, job_id: str) -> JobInProgress:
        """Look up a job by id."""
        if job_id not in self.jobs:
            raise UnknownJobError(f"unknown job {job_id}")
        return self.jobs[job_id]

    def job_by_name(self, name: str) -> JobInProgress:
        """Look up the most recently submitted job with a spec name."""
        for job in reversed(list(self.jobs.values())):
            if job.spec.name == name:
                return job
        raise UnknownJobError(f"no job named {name!r}")

    def kill_job(self, job_id: str) -> None:
        """Kill a job and all of its live attempts."""
        job = self.job(job_id)
        job.kill(self.sim.now)
        for tip in job.all_tips():
            if tip.state.active and tip.state is not TipState.MUST_KILL:
                try:
                    tip.request_kill(self.sim.now)
                except TaskStateError:  # pragma: no cover - defensive
                    pass
        self.trace("jt.kill-job", job=job_id)

    # -- the preemption API (Section III-B) ----------------------------------------------

    def suspend_task(self, tip_id: str) -> None:
        """Mark a running task MUST_SUSPEND; the suspend directive rides
        the next heartbeat to the task's TaskTracker."""
        tip = self.tip(tip_id)
        tip.request_suspend(self.sim.now)
        self.trace("jt.must-suspend", tip=tip_id)

    def resume_task(self, tip_id: str) -> None:
        """Mark a suspended task MUST_RESUME; the resume directive is
        sent as soon as the owning tracker has a free slot."""
        tip = self.tip(tip_id)
        tip.request_resume(self.sim.now)
        self.trace("jt.must-resume", tip=tip_id)

    def kill_task(self, tip_id: str) -> None:
        """Kill the task's active attempt; the TIP is rescheduled from
        scratch (the pre-existing Hadoop primitive)."""
        tip = self.tip(tip_id)
        tip.request_kill(self.sim.now)
        self.trace("jt.must-kill", tip=tip_id)

    def tip(self, tip_id: str) -> TaskInProgress:
        """Look up a task-in-progress by id."""
        if tip_id not in self._tips:
            raise UnknownTaskError(f"unknown task {tip_id}")
        return self._tips[tip_id]

    def attempt_descriptor(self, attempt_id: str) -> AttemptDescriptor:
        """Descriptor for a previously assigned attempt."""
        if attempt_id not in self._descriptors:
            raise UnknownTaskError(f"unknown attempt {attempt_id}")
        return self._descriptors[attempt_id]

    def record_attempt_counters(self, job_id: str, counters) -> None:
        """Merge a terminal attempt's counters into its job."""
        job = self.jobs.get(job_id)
        if job is not None:
            job.counters.merge(counters)

    # -- tracker failure ----------------------------------------------------------

    def tracker_lost(self, host: str) -> None:
        """A TaskTracker stopped heartbeating: requeue everything it ran.

        Suspended process images die with the node ("a suspended
        process can only be resumed on the same machine"), so their
        tasks restart from scratch -- the same fallback as a non-local
        resume.
        """
        tracker = self.trackers.pop(host, None)
        if tracker is None:
            raise UnknownJobError(f"no tracker registered on {host!r}")
        tracker.shutdown()
        for tip in self._tips_on_tracker(host):
            if tip.state.terminal:
                continue
            progress_lost = tip.progress
            tip.mark_lost_tracker()
            tip.wasted_seconds += (
                progress_lost * tip.spec.input_bytes / tip.spec.parse_rate
            )
        self.trace("jt.tracker-lost", tracker=host)

    # -- heartbeat handling -----------------------------------------------------------------

    def heartbeat(self, report: HeartbeatReport) -> HeartbeatResponse:
        """Process a TaskTracker report and reply with directives."""
        self.heartbeats_received += 1
        self._process_report(report)
        actions: List[TrackerAction] = []
        free_map = report.free_map_slots
        free_reduce = report.free_reduce_slots

        # 1. Pending preemption directives for this tracker.  Resumes
        #    go first so a freed slot returns to the suspended task
        #    before the scheduler can hand it to a new attempt.
        free_map, free_reduce = self._preemption_actions(
            report, actions, free_map, free_reduce
        )

        # 2. Job setup/cleanup launches (Hadoop runs them outside the
        #    pluggable scheduler).
        free_map = self._aux_launches(report, actions, free_map)

        # 3. Pluggable scheduler fills the remaining slots.  Guard
        #    against scheduler bugs: drop duplicates and tips that are
        #    no longer schedulable.
        seen = set()
        for tip in self.scheduler.assign_tasks(report.tracker, free_map, free_reduce):
            if tip.tip_id in seen or not tip.schedulable:
                continue
            seen.add(tip.tip_id)
            if tip.spec.kind is TaskKind.REDUCE:
                if free_reduce <= 0:
                    continue
                free_reduce -= 1
            else:
                if free_map <= 0:
                    continue
                free_map -= 1
            actions.append(self._make_launch(tip, report.tracker))

        response = HeartbeatResponse(sequence=report.sequence, actions=actions)
        if actions:
            self.trace(
                "jt.response", tracker=report.tracker, actions=response.describe()
            )
        return response

    # -- report processing --------------------------------------------------------------------

    def _process_report(self, report: HeartbeatReport) -> None:
        for status in report.attempts:
            tip = self._tips.get(status.tip_id)
            if tip is None or status.attempt_id != tip.active_attempt_id:
                # Stale report for a superseded attempt.
                continue
            if status.state is AttemptState.SUCCEEDED:
                self._on_attempt_succeeded(tip, status)
            elif status.state in (AttemptState.KILLED, AttemptState.FAILED):
                self._on_attempt_killed(tip, status)
            elif status.state is AttemptState.SUSPENDED:
                if tip.state is TipState.MUST_SUSPEND:
                    tip.confirm_suspended()
                    self.trace("jt.suspended", tip=tip.tip_id)
                tip.progress = status.progress
            elif status.state in (AttemptState.RUNNING, AttemptState.SUSPENDING):
                if tip.state is TipState.MUST_RESUME:
                    tip.confirm_resumed()
                    self.trace("jt.resumed", tip=tip.tip_id)
                tip.progress = status.progress

    def _on_attempt_succeeded(self, tip: TaskInProgress, status: AttemptStatus) -> None:
        job = tip.job
        # "or whether it completed in the meanwhile": MUST_SUSPEND and
        # MUST_KILL races resolve in favour of completion.
        tip.mark_succeeded(self.sim.now)
        self.trace("jt.tip-done", tip=tip.tip_id)
        if tip.role is TipRole.JOB_SETUP:
            job.on_setup_done(self.sim.now)
        self._maybe_complete_job(job)
        self.scheduler.job_updated(job)

    def _on_attempt_killed(self, tip: TaskInProgress, status: AttemptStatus) -> None:
        job = tip.job
        reschedule = job.state is JobState.RUNNING or job.state is JobState.PREP
        tip.mark_killed_attempt(progress_lost=status.progress, reschedule=reschedule)
        self.trace(
            "jt.tip-killed",
            tip=tip.tip_id,
            lost=round(status.progress, 3),
            reschedule=reschedule,
        )
        self.scheduler.job_updated(job)

    def _maybe_complete_job(self, job: JobInProgress) -> None:
        if job.cleanup_tip is None:
            # No cleanup phase: the job finishes with its last tip.
            if job.maybe_finish(self.sim.now):
                self._announce_completion(job)
        else:
            if job.maybe_finish(self.sim.now):
                self._announce_completion(job)

    def _announce_completion(self, job: JobInProgress) -> None:
        self.trace("jt.job-done", job=job.job_id, name=job.spec.name)
        self.scheduler.job_completed(job)
        for callback in self._completion_callbacks:
            callback(job)

    # -- directive generation ---------------------------------------------------------------------

    def _preemption_actions(
        self,
        report: HeartbeatReport,
        actions: List[TrackerAction],
        free_map: int,
        free_reduce: int,
    ):
        now = self.sim.now
        for tip in self._tips_on_tracker(report.tracker):
            if tip.active_attempt_id is None:
                continue
            if tip.state is TipState.MUST_RESUME:
                kind_free = free_reduce if tip.kind is TaskKind.REDUCE else free_map
                if kind_free <= 0:
                    continue  # retry when a slot opens
                if not self._should_send(tip, now):
                    continue
                actions.append(ResumeTaskAction(attempt_id=tip.active_attempt_id))
                if tip.kind is TaskKind.REDUCE:
                    free_reduce -= 1
                else:
                    free_map -= 1
                tip.directive_sent_at = now
            elif tip.state is TipState.MUST_SUSPEND:
                if self._should_send(tip, now):
                    actions.append(SuspendTaskAction(attempt_id=tip.active_attempt_id))
                    tip.directive_sent_at = now
            elif tip.state is TipState.MUST_KILL:
                if self._should_send(tip, now):
                    actions.append(
                        KillTaskAction(
                            attempt_id=tip.active_attempt_id, reason="preempted"
                        )
                    )
                    tip.directive_sent_at = now
        return free_map, free_reduce

    def _should_send(self, tip: TaskInProgress, now: float) -> bool:
        """First send happens immediately; unanswered directives are
        re-sent after the resend timeout (lost-heartbeat defence)."""
        if tip.directive_sent_at is None:
            return True
        return now - tip.directive_sent_at >= self.config.suspend_resend_timeout

    def _tips_on_tracker(self, tracker: str) -> List[TaskInProgress]:
        return [t for t in self._tips.values() if t.tracker == tracker]

    def _aux_launches(
        self, report: HeartbeatReport, actions: List[TrackerAction], free_map: int
    ) -> int:
        """Launch job setup/cleanup tasks (highest priority)."""
        for job in self.jobs.values():
            if free_map <= 0:
                break
            if job.setup_pending:
                actions.append(self._make_launch(job.setup_tip, report.tracker))
                free_map -= 1
            elif job.cleanup_pending:
                actions.append(self._make_launch(job.cleanup_tip, report.tracker))
                free_map -= 1
        return free_map

    def _make_launch(self, tip: TaskInProgress, tracker: str) -> LaunchTaskAction:
        attempt_id = tip.new_attempt_id(tracker)
        spec = tip.spec
        for transform in self.spec_transformers:
            spec = transform(tip, spec)
        descriptor = AttemptDescriptor(
            attempt_id=attempt_id,
            tip_id=tip.tip_id,
            job_id=tip.job.job_id,
            spec=spec,
            is_setup=tip.role is TipRole.JOB_SETUP,
            is_cleanup=tip.role is TipRole.JOB_CLEANUP,
        )
        self._descriptors[attempt_id] = descriptor
        tip.mark_launched(self.sim.now)
        return LaunchTaskAction(
            tip_id=tip.tip_id,
            attempt_id=attempt_id,
            is_setup=descriptor.is_setup,
            is_cleanup=descriptor.is_cleanup,
        )

    # -- introspection -------------------------------------------------------------------------------

    def running_jobs(self) -> List[JobInProgress]:
        """Jobs not yet terminal, submission order."""
        return [j for j in self.jobs.values() if not j.state.terminal]

    def trace(self, label: str, **fields) -> None:
        """Record a JobTracker trace event."""
        self.sim.trace_log.record(self.sim.now, label, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"JobTracker(jobs={len(self.jobs)}, trackers={len(self.trackers)})"
        )
