"""The JobTracker: cluster state, heartbeats, and the preemption API.

"Mirroring the implementation of the kill primitive in Hadoop, we
introduce i) new messages between the JobTracker ... and TaskTrackers
..., and ii) new identifiers for task states in the JobTracker."

The preemption API (:meth:`JobTracker.suspend_task`,
:meth:`JobTracker.resume_task`, :meth:`JobTracker.kill_task`) "can be
used both by users on the command line and by schedulers".  Directives
are piggybacked on the next heartbeat from the task's TaskTracker and
confirmed by the one after, exactly as Section III-B describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.errors import (
    TaskStateError,
    UnknownJobError,
    UnknownTaskError,
)
from repro.hadoop.config import HadoopConfig
from repro.hadoop.heartbeat import (
    AttemptStatus,
    HeartbeatBatch,
    HeartbeatReport,
    HeartbeatResponse,
    KillTaskAction,
    LaunchTaskAction,
    ResumeTaskAction,
    SuspendTaskAction,
    TrackerAction,
)
from repro.hadoop.job import JobInProgress, JobState
from repro.hadoop.speculation import SpeculativeExecutor
from repro.hadoop.states import AttemptState, TipState
from repro.hadoop.task import TaskInProgress, TipRole
from repro.metrics.wasted import (
    JOB_TEARDOWN,
    LOST_MAP_OUTPUT,
    OOM_KILL,
    PREEMPTION_KILL,
    SPECULATION_LOSER,
    TASK_FAILURE,
    TRACKER_LOST,
    WastedWorkLedger,
)
from repro.sim.engine import Simulation
from repro.workloads.jobspec import JobSpec, TaskKind, TaskSpec


@dataclass(frozen=True)
class AttemptDescriptor:
    """Everything a TaskTracker needs to launch an attempt."""

    attempt_id: str
    tip_id: str
    job_id: str
    spec: TaskSpec
    is_setup: bool = False
    is_cleanup: bool = False


class JobTracker:
    """Central coordinator: jobs, tasks, trackers, scheduling."""

    def __init__(self, sim: Simulation, config: HadoopConfig, scheduler):
        self.sim = sim
        self.config = config
        self.scheduler = scheduler
        self.jobs: Dict[str, JobInProgress] = {}
        self.trackers: Dict[str, "object"] = {}
        self._tips: Dict[str, TaskInProgress] = {}
        #: host -> {tip_id: tip} for tips whose active attempt runs
        #: there; maintained through the TIPs' tracker observers so
        #: heartbeat handling is O(tips on that host), not O(all tips)
        self._tips_by_tracker: Dict[str, Dict[str, TaskInProgress]] = {}
        #: submission-ordered index of not-yet-terminal jobs; pruned
        #: lazily by :meth:`running_jobs` so the per-heartbeat job scans
        #: shrink as the workload drains instead of growing forever
        self._live_jobs: Dict[str, JobInProgress] = {}
        self._descriptors: Dict[str, AttemptDescriptor] = {}
        self._job_counter = itertools.count(1)
        self._completion_callbacks: List[Callable[[JobInProgress], None]] = []
        #: hooks that may rewrite a TaskSpec at attempt-creation time
        #: (used by checkpoint-based primitives to fast-forward)
        self.spec_transformers: List[
            Callable[[TaskInProgress, TaskSpec], TaskSpec]
        ] = []
        self.heartbeats_received = 0
        #: virtual time of each tracker's last heartbeat (expiry input)
        self.last_heartbeat: Dict[str, float] = {}
        #: last memory/swap headroom snapshot each tracker reported --
        #: the JobTracker-side view schedulers and studies introspect
        self.tracker_headroom: Dict[str, "object"] = {}
        #: largest per-node suspended total (resident + swapped) any
        #: heartbeat ever reported -- Section III-A's operand, the
        #: quantity the memscale study plots against the swap size
        self.peak_suspended_bytes = 0
        #: attempts lost to the OOM killer (cluster-wide)
        self.oom_kills = 0
        #: trackers no longer given new work (too many task failures)
        self.blacklisted: Set[str] = set()
        #: task failures charged to each tracker (blacklist input)
        self.tracker_failure_counts: Dict[str, int] = {}
        #: discarded task-seconds by cause (kills, failures, losses)
        self.wasted = WastedWorkLedger()
        self.trackers_lost = 0
        self.speculator: Optional[SpeculativeExecutor] = None
        if config.speculative_execution:
            self.speculator = SpeculativeExecutor(self)
        #: bumped whenever job *membership* can change (submission,
        #: completion, failure, kill); a batched heartbeat context is
        #: only valid while both the engine batch id and this epoch
        #: match the values it was built under
        self._jobs_epoch = 0
        #: live batched-heartbeat context (config.batch_heartbeats);
        #: None when batching is off or no batch is in flight
        self._batch_ctx: Optional[HeartbeatBatch] = None
        self._expiry_event = None
        scheduler.bind(self)

    # -- registration -------------------------------------------------------------

    def register_tracker(self, tracker) -> None:
        """Called by TaskTracker constructors (and on daemon restart)."""
        self.trackers[tracker.host] = tracker
        self.last_heartbeat[tracker.host] = self.sim.now

    def on_job_complete(self, callback: Callable[[JobInProgress], None]) -> None:
        """Register a callback fired when any job reaches a terminal
        state through the JobTracker (SUCCEEDED, or FAILED via the
        retry-cap path).  Check ``job.state`` if only success matters."""
        self._completion_callbacks.append(callback)

    # -- job API ---------------------------------------------------------------------

    def submit_job(self, spec: JobSpec) -> JobInProgress:
        """Accept a job; its setup task becomes schedulable immediately."""
        job_id = f"{next(self._job_counter):04d}"
        job = JobInProgress(
            job_id,
            spec,
            submit_time=self.sim.now,
            run_setup_cleanup=self.config.run_job_setup_cleanup,
        )
        self.jobs[job_id] = job
        self._live_jobs[job_id] = job
        self._jobs_epoch += 1
        if self.config.batch_heartbeats:
            job.observer = self._on_job_note
        for tip in job.all_tips():
            self._tips[tip.tip_id] = tip
            tip.tracker_observer = self._on_tip_tracker_change
        self.trace("jt.submit", job=job_id, name=spec.name)
        self.scheduler.job_added(job)
        return job

    def job(self, job_id: str) -> JobInProgress:
        """Look up a job by id."""
        if job_id not in self.jobs:
            raise UnknownJobError(f"unknown job {job_id}")
        return self.jobs[job_id]

    def job_by_name(self, name: str) -> JobInProgress:
        """Look up the most recently submitted job with a spec name."""
        for job in reversed(list(self.jobs.values())):
            if job.spec.name == name:
                return job
        raise UnknownJobError(f"no job named {name!r}")

    def kill_job(self, job_id: str) -> None:
        """Kill a job and all of its live attempts."""
        job = self.job(job_id)
        job.kill(self.sim.now)
        # kill() does not route through _announce_completion, so the
        # membership epoch must move here.
        self._jobs_epoch += 1
        for tip in job.all_tips():
            if tip.state.active and tip.state is not TipState.MUST_KILL:
                try:
                    tip.request_kill(self.sim.now)
                except TaskStateError:  # pragma: no cover - defensive
                    pass
        self._teardown_speculative(job)
        self.trace("jt.kill-job", job=job_id)

    # -- the preemption API (Section III-B) ----------------------------------------------

    def suspend_task(self, tip_id: str) -> None:
        """Mark a running task MUST_SUSPEND; the suspend directive rides
        the next heartbeat to the task's TaskTracker."""
        tip = self.tip(tip_id)
        tip.request_suspend(self.sim.now)
        self.trace("jt.must-suspend", tip=tip_id)

    def resume_task(self, tip_id: str) -> None:
        """Mark a suspended task MUST_RESUME; the resume directive is
        sent as soon as the owning tracker has a free slot."""
        tip = self.tip(tip_id)
        tip.request_resume(self.sim.now)
        self.trace("jt.must-resume", tip=tip_id)

    def kill_task(self, tip_id: str) -> None:
        """Kill the task's active attempt; the TIP is rescheduled from
        scratch (the pre-existing Hadoop primitive)."""
        tip = self.tip(tip_id)
        tip.request_kill(self.sim.now)
        self.trace("jt.must-kill", tip=tip_id)

    def tip(self, tip_id: str) -> TaskInProgress:
        """Look up a task-in-progress by id."""
        if tip_id not in self._tips:
            raise UnknownTaskError(f"unknown task {tip_id}")
        return self._tips[tip_id]

    def attempt_descriptor(self, attempt_id: str) -> AttemptDescriptor:
        """Descriptor for a previously assigned attempt."""
        if attempt_id not in self._descriptors:
            raise UnknownTaskError(f"unknown attempt {attempt_id}")
        return self._descriptors[attempt_id]

    def record_attempt_counters(self, job_id: str, counters) -> None:
        """Merge a terminal attempt's counters into its job."""
        job = self.jobs.get(job_id)
        if job is not None:
            job.counters.merge(counters)

    # -- tracker failure ----------------------------------------------------------

    def start_expiry_monitor(self) -> None:
        """Begin periodic heartbeat-timeout checks.

        A tracker silent for ``config.tracker_expiry_interval`` seconds
        is declared lost and its work requeued -- Hadoop's
        ``mapred.tasktracker.expiry.interval`` behaviour.  Called by
        :meth:`repro.hadoop.cluster.HadoopCluster.start`.
        """
        if self._expiry_event is not None:
            return
        self._schedule_expiry_check()

    def _schedule_expiry_check(self) -> None:
        # Check at a fraction of the expiry interval so detection lag
        # stays small relative to the timeout itself.
        self._expiry_event = self.sim.schedule(
            max(self.config.tracker_expiry_interval / 3.0, 1.0),
            self._check_tracker_expiry,
            label="jt.expiry-check",
        )

    def _check_tracker_expiry(self) -> None:
        deadline = self.sim.now - self.config.tracker_expiry_interval
        expired = [
            host
            for host, seen in self.last_heartbeat.items()
            if seen < deadline and host in self.trackers
        ]
        for host in sorted(expired):
            self.trace("jt.tracker-expired", tracker=host)
            self.tracker_lost(host)
        self._schedule_expiry_check()

    def tracker_lost(self, host: str) -> None:
        """A TaskTracker stopped heartbeating: requeue everything it ran.

        Suspended process images die with the node ("a suspended
        process can only be resumed on the same machine"), so their
        tasks restart from scratch -- the same fallback as a non-local
        resume.  Completed map output also lives on the node's local
        disk, so completed maps of unfinished jobs are re-executed.
        """
        tracker = self.trackers.pop(host, None)
        if tracker is None:
            raise UnknownJobError(f"no tracker registered on {host!r}")
        tracker.shutdown()
        self.last_heartbeat.pop(host, None)
        # Drop the host's failure record with it: stale blacklist
        # entries would otherwise tighten the half-cluster blacklist
        # cap against the remaining live trackers forever.
        self.blacklisted.discard(host)
        self.tracker_failure_counts.pop(host, None)
        self.trackers_lost += 1
        self._requeue_tracker_tasks(host, tracker)
        self.trace("jt.tracker-lost", tracker=host)

    def _requeue_tracker_tasks(self, host: str, tracker=None) -> None:
        """Requeue live and (where needed) completed work of a dead host.

        ``tracker`` (when still available) lets the discarded progress
        of backup attempts that died with the node be read off their
        attempt records for the wasted-work ledger.
        """
        for tip in self._tips_on_tracker(host):
            if tip.state is TipState.SUCCEEDED:
                if self._map_output_needed(tip):
                    self.wasted.add(
                        LOST_MAP_OUTPUT,
                        tip.work_seconds(),
                        tip.tip_id,
                    )
                    tip.mark_output_lost()
                    self.scheduler.job_updated(tip.job)
                continue
            if tip.state.terminal:
                continue
            progress_lost = tip.progress
            if tracker is not None and tip.active_attempt_id is not None:
                attempt = tracker.attempts.get(tip.active_attempt_id)
                if attempt is not None:
                    # The node's shuffle traffic died with its daemon.
                    self.wasted.add_network_bytes(
                        TRACKER_LOST,
                        attempt.fetched_network_bytes(),
                        tip.tip_id,
                    )
            tip.mark_lost_tracker()
            lost_seconds = (
                tip.work_seconds(progress_lost)
            )
            tip.wasted_seconds += lost_seconds
            self.wasted.add(TRACKER_LOST, lost_seconds, tip.tip_id)
        # Backup attempts that lived on the dead host die with it; the
        # primaries elsewhere are unaffected, but the backups' progress
        # is discarded work like any other.
        for tip in self._tips.values():
            if tip.speculative_tracker != host:
                continue
            if tracker is not None:
                attempt = tracker.attempts.get(tip.speculative_attempt_id)
                if attempt is not None:
                    lost = (
                        tip.work_seconds(attempt.progress())
                    )
                    tip.wasted_seconds += lost
                    self.wasted.add(TRACKER_LOST, lost, tip.tip_id)
            tip.clear_speculative()

    def _map_output_needed(self, tip: TaskInProgress) -> bool:
        """True when a completed map's lost output must be recomputed."""
        return (
            self.config.rerun_completed_maps_on_loss
            and tip.role is TipRole.MAP
            and not tip.job.state.terminal
        )

    def handle_tracker_restart(self, tracker) -> None:
        """A TaskTracker daemon came back on a known host.

        If the old incarnation was never declared lost (it crashed and
        restarted within the expiry interval), its in-flight work is
        requeued now: the fresh daemon has no task state.
        """
        host = tracker.host
        if host in self.trackers:
            self._requeue_tracker_tasks(host, tracker)
        # A fresh daemon starts with a clean record, as in real Hadoop:
        # the blacklist targets a sick incarnation, not the hostname.
        self.blacklisted.discard(host)
        self.tracker_failure_counts.pop(host, None)
        self.register_tracker(tracker)
        self.trace("jt.tracker-restarted", tracker=host)

    # -- blacklisting ----------------------------------------------------------------

    def _charge_tracker_failure(self, host: Optional[str]) -> None:
        """Count a task failure against ``host``; blacklist past the
        threshold (``mapred.max.tracker.failures``).

        As in real Hadoop, at most half the cluster may be blacklisted:
        without the cap, failures on every node would leave zero
        assignable trackers and deadlock jobs that should instead keep
        retrying (or fail through the attempt cap).
        """
        if host is None or self.config.tracker_blacklist_threshold <= 0:
            return
        count = self.tracker_failure_counts.get(host, 0) + 1
        self.tracker_failure_counts[host] = count
        if count >= self.config.tracker_blacklist_threshold:
            if (
                host not in self.blacklisted
                and (len(self.blacklisted) + 1) * 2 <= len(self.trackers)
            ):
                self.blacklisted.add(host)
                self.trace("jt.blacklisted", tracker=host, failures=count)

    # -- heartbeat handling -----------------------------------------------------------------

    def heartbeat(self, report: HeartbeatReport) -> HeartbeatResponse:
        """Process a TaskTracker report and reply with directives."""
        self.heartbeats_received += 1
        self.last_heartbeat[report.tracker] = self.sim.now
        if report.headroom is not None:
            self.tracker_headroom[report.tracker] = report.headroom
            suspended = (
                report.headroom.stopped_resident
                + report.headroom.stopped_swapped
            )
            if suspended > self.peak_suspended_bytes:
                self.peak_suspended_bytes = suspended
        self._process_report(report)
        # The batch context may only be fetched *after* the report is
        # processed: attempts in the report can complete or fail jobs,
        # and the historical path reads the job set after that point.
        ctx = self._batch_context()
        actions: List[TrackerAction] = []
        free_map = report.free_map_slots
        free_reduce = report.free_reduce_slots

        # 1. Pending preemption directives for this tracker.  Resumes
        #    go first so a freed slot returns to the suspended task
        #    before the scheduler can hand it to a new attempt.
        free_map, free_reduce = self._preemption_actions(
            report, actions, free_map, free_reduce
        )

        # Blacklisted trackers keep servicing what they already run
        # (including resumes above) but get no new work.
        if report.tracker in self.blacklisted:
            free_map = free_reduce = 0

        # 2. Job setup/cleanup launches (Hadoop runs them outside the
        #    pluggable scheduler).
        free_map = self._aux_launches(report, actions, free_map, ctx)

        # 3. Pluggable scheduler fills the remaining slots.  Guard
        #    against scheduler bugs: drop duplicates and tips that are
        #    no longer schedulable.
        seen = set()
        if ctx is not None and getattr(self.scheduler, "supports_batch", False):
            assigned = self.scheduler.assign_tasks(
                report.tracker, free_map, free_reduce, batch=ctx
            )
        else:
            assigned = self.scheduler.assign_tasks(
                report.tracker, free_map, free_reduce
            )
        for tip in assigned:
            if tip.tip_id in seen or not tip.schedulable:
                continue
            if tip.speculative_tracker == report.tracker:
                # A requeued primary must not share its backup's host:
                # co-locating the two attempts halves both rates and
                # forfeits the redundancy the backup exists to provide.
                continue
            seen.add(tip.tip_id)
            if tip.spec.kind is TaskKind.REDUCE:
                if free_reduce <= 0:
                    continue
                free_reduce -= 1
            else:
                if free_map <= 0:
                    continue
                free_map -= 1
            actions.append(self._make_launch(tip, report.tracker))

        # 4. Leftover slots may host backup attempts for stragglers.
        #    Slots the scheduler just reserved for resumes (step 3 may
        #    request_resume; the directive only rides the *next*
        #    heartbeat) are subtracted first, or the speculator would
        #    book them and starve the resume behind its backups.
        if self.speculator is not None:
            for tip in self._tips_on_tracker(report.tracker):
                if (
                    tip.state is TipState.MUST_RESUME
                    and tip.directive_sent_at is None
                ):
                    if tip.kind is TaskKind.REDUCE:
                        free_reduce -= 1
                    else:
                        free_map -= 1
            free_map = max(free_map, 0)
            free_reduce = max(free_reduce, 0)
            free_map, free_reduce = self.speculator.fill_slots(
                report.tracker, actions, free_map, free_reduce
            )

        response = HeartbeatResponse(sequence=report.sequence, actions=actions)
        if actions:
            self.trace(
                "jt.response", tracker=report.tracker, actions=response.describe()
            )
        return response

    # -- batched heartbeat context ------------------------------------------------------------

    def _batch_context(self) -> Optional[HeartbeatBatch]:
        """The live :class:`HeartbeatBatch` for this engine batch, or
        None when batching is off.

        Built fresh for the first heartbeat of a batch (or after any
        job-membership change) and reused -- with observer-driven
        repairs -- for every further same-instant heartbeat.
        """
        if not self.config.batch_heartbeats:
            return None
        ctx = self._batch_ctx
        if (
            ctx is None
            or ctx.batch_id != self.sim.batch_id
            or ctx.epoch != self._jobs_epoch
        ):
            ctx = HeartbeatBatch(
                self.sim.batch_id, self._jobs_epoch, self.running_jobs()
            )
            self._batch_ctx = ctx
        return ctx

    def _on_job_note(self, job: JobInProgress, kind: str) -> None:
        """Job observer hook: forward hot-state notes to the live
        batch context (stale contexts absorb them harmlessly -- they
        can never be revalidated, batch ids only grow)."""
        ctx = self._batch_ctx
        if ctx is not None:
            ctx.note(job, kind)

    # -- report processing --------------------------------------------------------------------

    def _process_report(self, report: HeartbeatReport) -> None:
        for status in report.attempts:
            tip = self._tips.get(status.tip_id)
            if tip is None:
                continue
            if status.attempt_id == tip.speculative_attempt_id:
                self._process_speculative_status(tip, status, report.tracker)
                continue
            if status.attempt_id != tip.active_attempt_id:
                # Stale report for a superseded attempt.
                continue
            if status.state is AttemptState.SUCCEEDED:
                self._on_attempt_succeeded(tip, status)
            elif status.state is AttemptState.FAILED:
                self._on_attempt_failed(tip, status, report.tracker)
            elif status.state is AttemptState.KILLED:
                self._on_attempt_killed(tip, status)
            elif status.state is AttemptState.SUSPENDED:
                if tip.state is TipState.MUST_SUSPEND:
                    tip.confirm_suspended(self.sim.now)
                    self.trace("jt.suspended", tip=tip.tip_id)
                tip.progress = status.progress
            elif status.state in (AttemptState.RUNNING, AttemptState.SUSPENDING):
                if tip.state is TipState.MUST_RESUME:
                    tip.confirm_resumed(self.sim.now)
                    self.trace("jt.resumed", tip=tip.tip_id)
                tip.progress = status.progress

    def _process_speculative_status(
        self, tip: TaskInProgress, status: AttemptStatus, tracker: str
    ) -> None:
        """Status for a backup attempt: first finisher wins."""
        if status.state is AttemptState.SUCCEEDED:
            if tip.state.terminal:
                return
            loser_id, loser_host = tip.active_attempt_id, tip.tracker
            tip.promote_speculative()
            self._on_attempt_succeeded(tip, status)
            self._kill_loser(tip, loser_id, loser_host)
        elif status.state.terminal:
            # The backup died; the primary carries on alone.  A genuine
            # failure still counts against the host (blacklisting,
            # per-TIP avoidance) and the ledger -- only the retry cap is
            # untouched, since the primary is alive and well.
            if status.state is AttemptState.FAILED:
                lost = tip.work_seconds(status.progress)
                tip.wasted_seconds += lost
                cause = OOM_KILL if status.oom_killed else TASK_FAILURE
                if status.oom_killed:
                    self.oom_kills += 1
                self.wasted.add(cause, lost, tip.tip_id)
                self.wasted.add_network_bytes(
                    cause, status.discarded_network_bytes, tip.tip_id
                )
                self._charge_tracker_failure(tracker)
                tip.failed_on.add(tracker)
            tip.clear_speculative()

    def _kill_loser(
        self,
        tip: TaskInProgress,
        attempt_id: Optional[str],
        host: Optional[str],
        cause: str = SPECULATION_LOSER,
        reason: str = "lost speculative race",
    ) -> None:
        """A redundant attempt must die: kill it, charge its work.

        This deliberately bypasses the MUST_KILL heartbeat-directive
        path: that state machine is per-TIP, and by the time a loser is
        reaped the TIP is already SUCCEEDED (or terminal), so there is
        no state to carry the directive.  The direct kill after one RPC
        hop models the same wire exchange; the ledger reads the loser's
        progress at directive time, undercounting by at most
        ``rpc_latency`` of extra running.
        """
        if attempt_id is None or host is None:
            return
        tracker = self.trackers.get(host)
        if tracker is None:
            return
        attempt = tracker.attempts.get(attempt_id)
        if attempt is not None and not attempt.state.terminal:
            lost = tip.work_seconds(attempt.progress())
            tip.wasted_seconds += lost
            self.wasted.add(cause, lost, tip.tip_id)
            # The loser's terminal status later hits the stale-report
            # path, so its shuffle traffic is charged here, at the same
            # instant as its seconds.
            self.wasted.add_network_bytes(
                cause, attempt.fetched_network_bytes(), tip.tip_id
            )
        self.trace("jt.kill-loser", tip=tip.tip_id, attempt=attempt_id)
        # The kill directive takes one RPC hop, like any other action.
        self.sim.schedule(
            self.config.rpc_latency,
            tracker._kill,
            attempt_id,
            reason,
            label=f"jt.kill-loser:{attempt_id}",
        )

    def _teardown_speculative(self, job: JobInProgress) -> None:
        """The job is terminal: reap any still-running backup attempts
        (they would otherwise hold slots until natural completion)."""
        for tip in job.tips:
            if not tip.has_speculative:
                continue
            backup_id, backup_host = (
                tip.speculative_attempt_id,
                tip.speculative_tracker,
            )
            tip.clear_speculative()
            self._kill_loser(
                tip, backup_id, backup_host,
                cause=JOB_TEARDOWN, reason="job terminated",
            )

    def _on_attempt_succeeded(self, tip: TaskInProgress, status: AttemptStatus) -> None:
        job = tip.job
        # "or whether it completed in the meanwhile": MUST_SUSPEND and
        # MUST_KILL races resolve in favour of completion.
        if tip.has_speculative:
            # The primary finished first: the backup is now redundant.
            loser_id, loser_host = tip.speculative_attempt_id, tip.speculative_tracker
            tip.clear_speculative()
            self._kill_loser(tip, loser_id, loser_host)
        tip.mark_succeeded(self.sim.now)
        self.trace("jt.tip-done", tip=tip.tip_id)
        if tip.role is TipRole.JOB_SETUP:
            job.on_setup_done(self.sim.now)
        self._maybe_complete_job(job)
        self.scheduler.job_updated(job)

    def _on_attempt_failed(
        self, tip: TaskInProgress, status: AttemptStatus, tracker: str
    ) -> None:
        """A task error (not a kill): retry up to the attempt cap."""
        job = tip.job
        lost_seconds = tip.work_seconds(status.progress)
        # OOM deaths get their own ledger cause: they are the loss mode
        # the suspend-admission gate exists to prevent, and folding
        # them into generic task failures would hide exactly the
        # kill-vs-suspend-vs-gated comparison the memscale study makes.
        cause = OOM_KILL if status.oom_killed else TASK_FAILURE
        if status.oom_killed:
            self.oom_kills += 1
        self.wasted.add(cause, lost_seconds, tip.tip_id)
        self.wasted.add_network_bytes(
            cause, status.discarded_network_bytes, tip.tip_id
        )
        self._charge_tracker_failure(tracker)
        tip.mark_failed_attempt(progress_lost=status.progress, tracker=tracker)
        cap = (
            self.config.reduce_max_attempts
            if tip.kind is TaskKind.REDUCE
            else self.config.map_max_attempts
        )
        retry = tip.failed_attempt_count < cap and not job.state.terminal
        self.trace(
            "jt.tip-failed",
            tip=tip.tip_id,
            failures=tip.failed_attempt_count,
            retry=retry,
        )
        if retry:
            tip.set_state(TipState.UNASSIGNED)
        elif not job.state.terminal:
            job.mark_failed(self.sim.now)
            self.trace("jt.job-failed", job=job.job_id, culprit=tip.tip_id)
            for other in job.all_tips():
                if other.state.active and other.state is not TipState.MUST_KILL:
                    try:
                        other.request_kill(self.sim.now)
                    except TaskStateError:  # pragma: no cover - defensive
                        pass
            self._teardown_speculative(job)
            self._announce_completion(job)
        self.scheduler.job_updated(job)

    def _on_attempt_killed(self, tip: TaskInProgress, status: AttemptStatus) -> None:
        job = tip.job
        reschedule = job.state is JobState.RUNNING or job.state is JobState.PREP
        tip.mark_killed_attempt(progress_lost=status.progress, reschedule=reschedule)
        # Kills of a live job's tasks are preemption; kills mopping up a
        # failed/killed job are teardown collateral, not a preemption
        # cost -- keeping the causes apart is what makes the fault
        # studies' kill-vs-suspend wasted-work comparison honest.
        wasted_seconds = tip.work_seconds(status.progress)
        self.wasted.add(
            PREEMPTION_KILL if reschedule else JOB_TEARDOWN,
            wasted_seconds,
            tip.tip_id,
        )
        # A killed reducer's shuffle traffic died with it; suspended
        # reducers never land here (their fetches pause and resume), so
        # this column is where kill-vs-suspend diverge on the network.
        self.wasted.add_network_bytes(
            PREEMPTION_KILL if reschedule else JOB_TEARDOWN,
            status.discarded_network_bytes,
            tip.tip_id,
        )
        self.trace(
            "jt.tip-killed",
            tip=tip.tip_id,
            lost=round(status.progress, 3),
            # exact ledger charge, so kill-episode spans reconcile with
            # the wasted-work totals
            wasted=wasted_seconds,
            reschedule=reschedule,
        )
        self.scheduler.job_updated(job)

    def _maybe_complete_job(self, job: JobInProgress) -> None:
        if job.cleanup_tip is None:
            # No cleanup phase: the job finishes with its last tip.
            if job.maybe_finish(self.sim.now):
                self._announce_completion(job)
        else:
            if job.maybe_finish(self.sim.now):
                self._announce_completion(job)

    def _announce_completion(self, job: JobInProgress) -> None:
        self._jobs_epoch += 1
        self.trace("jt.job-done", job=job.job_id, name=job.spec.name)
        self.scheduler.job_completed(job)
        for callback in self._completion_callbacks:
            callback(job)

    # -- directive generation ---------------------------------------------------------------------

    def _preemption_actions(
        self,
        report: HeartbeatReport,
        actions: List[TrackerAction],
        free_map: int,
        free_reduce: int,
    ):
        now = self.sim.now
        for tip in self._tips_on_tracker(report.tracker):
            if tip.active_attempt_id is None:
                continue
            if tip.state is TipState.MUST_RESUME:
                kind_free = free_reduce if tip.kind is TaskKind.REDUCE else free_map
                if kind_free <= 0:
                    continue  # retry when a slot opens
                if not self._should_send(tip, now):
                    continue
                actions.append(ResumeTaskAction(attempt_id=tip.active_attempt_id))
                if tip.kind is TaskKind.REDUCE:
                    free_reduce -= 1
                else:
                    free_map -= 1
                tip.directive_sent_at = now
            elif tip.state is TipState.MUST_SUSPEND:
                if self._should_send(tip, now):
                    actions.append(SuspendTaskAction(attempt_id=tip.active_attempt_id))
                    tip.directive_sent_at = now
            elif tip.state is TipState.MUST_KILL:
                if self._should_send(tip, now):
                    actions.append(
                        KillTaskAction(
                            attempt_id=tip.active_attempt_id, reason="preempted"
                        )
                    )
                    tip.directive_sent_at = now
        return free_map, free_reduce

    def _should_send(self, tip: TaskInProgress, now: float) -> bool:
        """First send happens immediately; unanswered directives are
        re-sent after the resend timeout (lost-heartbeat defence)."""
        if tip.directive_sent_at is None:
            return True
        return now - tip.directive_sent_at >= self.config.suspend_resend_timeout

    def _on_tip_tracker_change(
        self,
        tip: TaskInProgress,
        old_host: Optional[str],
        new_host: Optional[str],
    ) -> None:
        """Keep the per-tracker tip index exact across every rebind
        (launch, requeue, speculative promotion, tracker loss)."""
        if old_host is not None:
            bucket = self._tips_by_tracker.get(old_host)
            if bucket is not None:
                bucket.pop(tip.tip_id, None)
        if new_host is not None:
            self._tips_by_tracker.setdefault(new_host, {})[tip.tip_id] = tip

    def _tips_on_tracker(self, tracker: str) -> List[TaskInProgress]:
        bucket = self._tips_by_tracker.get(tracker)
        if not bucket:
            return []
        return list(bucket.values())

    def _aux_launches(
        self,
        report: HeartbeatReport,
        actions: List[TrackerAction],
        free_map: int,
        ctx: Optional[HeartbeatBatch] = None,
    ) -> int:
        """Launch job setup/cleanup tasks (highest priority)."""
        if free_map <= 0:
            # The loop below breaks before its first launch check; skip
            # the live-job scan (most heartbeats on a busy cluster).
            return free_map
        if ctx is not None:
            # Batched path: walk only the jobs with a pending aux tip,
            # maintained in submission order across the batch.  The
            # live re-check per job mirrors the historical loop (a job
            # launched earlier in this very walk answers None and is
            # skipped, exactly as the full scan would skip it).
            ctx.refresh_aux()
            for job in list(ctx.aux_jobs):
                if free_map <= 0:
                    break
                aux_tip = job.pending_aux_tip()
                if aux_tip is not None:
                    actions.append(self._make_launch(aux_tip, report.tracker))
                    free_map -= 1
            return free_map
        for job in self.running_jobs():
            if free_map <= 0:
                break
            aux_tip = job.pending_aux_tip()
            if aux_tip is not None:
                actions.append(self._make_launch(aux_tip, report.tracker))
                free_map -= 1
        return free_map

    def _register_descriptor(
        self, tip: TaskInProgress, attempt_id: str
    ) -> AttemptDescriptor:
        """Build (transformed spec) and register one attempt descriptor
        -- shared by primary and speculative launches so the two racing
        attempts always run identical specs."""
        spec = tip.spec
        for transform in self.spec_transformers:
            spec = transform(tip, spec)
        descriptor = AttemptDescriptor(
            attempt_id=attempt_id,
            tip_id=tip.tip_id,
            job_id=tip.job.job_id,
            spec=spec,
            is_setup=tip.role is TipRole.JOB_SETUP,
            is_cleanup=tip.role is TipRole.JOB_CLEANUP,
        )
        self._descriptors[attempt_id] = descriptor
        return descriptor

    def _make_launch(self, tip: TaskInProgress, tracker: str) -> LaunchTaskAction:
        attempt_id = tip.new_attempt_id(tracker)
        descriptor = self._register_descriptor(tip, attempt_id)
        tip.mark_launched(self.sim.now)
        return LaunchTaskAction(
            tip_id=tip.tip_id,
            attempt_id=attempt_id,
            is_setup=descriptor.is_setup,
            is_cleanup=descriptor.is_cleanup,
        )

    def _make_speculative_launch(
        self, tip: TaskInProgress, tracker: str
    ) -> LaunchTaskAction:
        """Launch a backup attempt without disturbing the primary."""
        attempt_id = tip.new_speculative_attempt_id(tracker, now=self.sim.now)
        self._register_descriptor(tip, attempt_id)
        self.trace("jt.speculate", tip=tip.tip_id, attempt=attempt_id, on=tracker)
        return LaunchTaskAction(tip_id=tip.tip_id, attempt_id=attempt_id)

    # -- introspection -------------------------------------------------------------------------------

    def running_jobs(self) -> List[JobInProgress]:
        """Jobs not yet terminal, submission order.

        Backed by the live-jobs index: entries that turned terminal
        since the last call are evicted here, so repeated calls cost
        O(live jobs) however many jobs the tracker has ever seen.
        """
        # ``finish_time`` is stamped by exactly the transitions that
        # make a job terminal, and the attribute test is far cheaper
        # than enum membership at this call frequency (twice per
        # heartbeat over every live job).
        finished = [
            job_id
            for job_id, job in self._live_jobs.items()
            if job.finish_time is not None
        ]
        for job_id in finished:
            del self._live_jobs[job_id]
        return list(self._live_jobs.values())

    def trace(self, label: str, **fields) -> None:
        """Record a JobTracker trace event."""
        self.sim.trace_log.record(self.sim.now, label, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"JobTracker(jobs={len(self.jobs)}, trackers={len(self.trackers)})"
        )
