"""Hadoop Streaming: tasks with external state (Section V-B).

"Hadoop jobs can interact with the external world ... 'Hadoop
Streaming', whereby arbitrary executables can be used as mappers or
reducers, interacting with the Hadoop framework through Unix pipes.
In these cases, there are interactions that happen outside the control
of Hadoop; in the most common case, external software would correctly
pause waiting for the next input from a suspended task; however, when
the interaction happens with a complex program, the fact that they
correctly handle suspended programs should be tested."

:class:`StreamingCoprocess` models that external executable: a second
OS process joined to a task attempt through a pipe.  While the task is
suspended the coprocess blocks on the pipe; a *well-behaved* peer
waits indefinitely, while a *timeout-sensitive* peer (think: a
licensed service with an idle watchdog, or a remote connection with a
keep-alive) aborts if the task stays suspended longer than its idle
timeout — killing the task attempt with it, exactly the failure mode
the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.osmodel.process import ExitReason, OSProcess
from repro.osmodel.signals import Signal
from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.attempt import TaskAttempt


@dataclass
class StreamingConfig:
    """Behaviour of the external executable."""

    #: resident footprint of the external program
    memory_bytes: int = 64 * MB
    #: None = waits forever on the pipe (the paper's "most common
    #: case"); a number = aborts after that many seconds of idleness
    idle_timeout: Optional[float] = None
    #: whether the coprocess is stopped along with the task (process
    #: groups get the SIGTSTP too when the TaskTracker signals the
    #: group rather than the single pid)
    stops_with_task: bool = False

    def __post_init__(self) -> None:
        if self.memory_bytes < 0:
            raise ConfigurationError("memory_bytes may not be negative")
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise ConfigurationError("idle_timeout must be positive")


class StreamingCoprocess:
    """The external half of a streaming task."""

    def __init__(self, attempt: "TaskAttempt", config: Optional[StreamingConfig] = None):
        if attempt.jvm is None:
            raise ConfigurationError(
                "attach the coprocess after the attempt is launched"
            )
        self.attempt = attempt
        self.config = config or StreamingConfig()
        kernel = attempt.kernel
        self.process: OSProcess = kernel.spawn(f"{attempt.attempt_id}.pipe")
        kernel.charge_allocation(
            self.process, self.config.memory_bytes, dirty=True
        )
        self.aborted = False
        self._watchdog = None
        task_proc = attempt.jvm.process
        task_proc.on_stop(self._on_task_stop)
        task_proc.on_resume(self._on_task_resume)
        task_proc.on_exit(self._on_task_exit)

    # -- task lifecycle hooks ------------------------------------------------

    def _on_task_stop(self, proc: OSProcess) -> None:
        kernel = self.attempt.kernel
        if self.config.stops_with_task and self.process.alive:
            kernel.signal(self.process.pid, Signal.SIGSTOP)
        if self.config.idle_timeout is not None and self.process.alive:
            self._watchdog = kernel.sim.schedule(
                self.config.idle_timeout,
                self._idle_timeout_fired,
                label=f"streaming.watchdog:{self.attempt.attempt_id}",
            )

    def _on_task_resume(self, proc: OSProcess) -> None:
        kernel = self.attempt.kernel
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self.config.stops_with_task and self.process.stopped:
            kernel.signal(self.process.pid, Signal.SIGCONT)

    def _on_task_exit(self, proc: OSProcess, reason: ExitReason) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self.process.alive:
            self.attempt.kernel.signal(self.process.pid, Signal.SIGKILL)

    def _idle_timeout_fired(self) -> None:
        """The external program gave up waiting: the pipe breaks and
        the task dies with it (a failed attempt, not a clean kill)."""
        self._watchdog = None
        if not self.process.alive:
            return
        self.aborted = True
        kernel = self.attempt.kernel
        kernel.trace(
            "streaming.broken-pipe",
            attempt=self.attempt.attempt_id,
            idle=self.config.idle_timeout,
        )
        kernel.signal(self.process.pid, Signal.SIGKILL)
        task_proc = self.attempt.process
        if task_proc is not None and task_proc.alive:
            # SIGKILL on a stopped process: the broken pipe surfaces as
            # task death the moment Hadoop checks on it.
            kernel.signal(task_proc.pid, Signal.SIGKILL)

    @property
    def alive(self) -> bool:
        """True while the external program still runs."""
        return self.process.alive

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StreamingCoprocess({self.attempt.attempt_id}, "
            f"alive={self.alive}, aborted={self.aborted})"
        )
