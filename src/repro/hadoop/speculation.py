"""Speculative execution: backup attempts for stragglers.

Hadoop's defence against slow nodes: when a task's progress rate falls
far behind its peers, the JobTracker launches a second ("speculative")
attempt of the same task on another node; whichever attempt finishes
first wins and the loser is killed.  This is the standard
progress-rate heuristic (Zaharia et al.'s LATE refines it; the stock
Hadoop 1 version compares against the job average, which is what this
module implements).

Interaction with the paper's suspend primitive is the subtle part: a
*suspended* attempt reports frozen progress, which the naive heuristic
would read as an extreme straggler and waste a slot (plus the
suspended work) on a redundant backup.  Tasks in any suspension-related
state are therefore excluded from both the straggler candidates and
the peer-average they are compared against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.hadoop.heartbeat import TrackerAction
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress, TipRole
from repro.workloads.jobspec import TaskKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.jobtracker import JobTracker


class SpeculativeExecutor:
    """JobTracker-side straggler detection and backup launching."""

    def __init__(self, jobtracker: "JobTracker"):
        self.jobtracker = jobtracker
        self.config = jobtracker.config
        self.backups_launched = 0

    # -- the heartbeat hook ---------------------------------------------------

    def fill_slots(
        self,
        tracker: str,
        actions: List[TrackerAction],
        free_map: int,
        free_reduce: int,
    ):
        """Spend leftover heartbeat slots on backups for stragglers.

        Called by :meth:`JobTracker.heartbeat` after the pluggable
        scheduler has taken its share; regular work always outranks
        speculation.
        """
        if free_map <= 0 and free_reduce <= 0:
            return free_map, free_reduce
        for tip in self._stragglers(exclude_host=tracker):
            if tip.kind is TaskKind.REDUCE:
                if free_reduce <= 0:
                    continue
                free_reduce -= 1
            else:
                if free_map <= 0:
                    continue
                free_map -= 1
            actions.append(self.jobtracker._make_speculative_launch(tip, tracker))
            self.backups_launched += 1
        return free_map, free_reduce

    # -- straggler detection ------------------------------------------------------

    def _stragglers(self, exclude_host: str) -> List[TaskInProgress]:
        """Stragglers eligible for a backup, slowest first.

        A candidate must be genuinely RUNNING (a suspended attempt's
        progress is frozen by design -- it is *preempted*, not slow),
        old enough to have a meaningful rate, without an existing
        backup, and its primary must run on a different host than the
        one offering the slot.
        """
        now = self.jobtracker.sim.now
        found = []
        for job in self.jobtracker.running_jobs():
            if not self._job_eligible(job):
                continue
            for kind in (TaskKind.MAP, TaskKind.REDUCE):
                # Peer means are per category, as in stock Hadoop: maps
                # and reduces have incomparable progress rates, and a
                # pooled mean would flag the whole slower phase.  The
                # mean includes completed tasks (their whole-life rate)
                # so stragglers are still flagged once every healthy
                # peer has finished.
                peers = [t for t in job.tips if t.kind is kind]
                rates = {}
                for tip in peers:
                    rate = self._progress_rate(tip, now)
                    if rate is not None:
                        rates[tip.tip_id] = rate
                if len(rates) < 2:
                    continue  # no peer group to compare against
                mean_rate = sum(rates.values()) / len(rates)
                if mean_rate <= 0:
                    continue
                threshold = self.config.speculative_slowness * mean_rate
                for tip in peers:
                    if tip.state is not TipState.RUNNING:
                        continue  # only live primaries get backups
                    rate = rates.get(tip.tip_id)
                    if rate is None or rate >= threshold:
                        continue
                    if tip.has_speculative or tip.tracker == exclude_host:
                        continue
                    if exclude_host in tip.failed_on:
                        continue  # never back up onto a failed host
                    found.append((rate, tip.tip_id, tip))
        found.sort(key=lambda item: (item[0], item[1]))
        return [tip for _, _, tip in found]

    def _job_eligible(self, job) -> bool:
        """Defer to the scheduler's assignment policy.

        A job the scheduler is deliberately not serving (the dummy
        scheduler's freeze/allowlist, used by the experiments to fence
        preempted work out of freed slots) must not sneak backups into
        those slots either.
        """
        return self.jobtracker.scheduler.serves_job(job)

    def _progress_rate(self, tip: TaskInProgress, now: float) -> Optional[float]:
        """Progress per second since launch; None when not comparable.

        Completed tasks contribute their whole-life rate to the peer
        mean; running tasks contribute their live rate once they are
        ``speculative_lag`` old.  Suspension-related states contribute
        nothing: their progress is frozen by policy, not slowness.
        """
        if tip.role not in (TipRole.MAP, TipRole.REDUCE):
            return None
        if tip.last_launched_at is None:
            return None
        if tip.state is TipState.SUCCEEDED:
            if tip.finished_at is None:
                return None
            runtime = (
                tip.finished_at - tip.last_launched_at - tip.suspended_seconds
            )
            return 1.0 / runtime if runtime > 0 else None
        if tip.state is not TipState.RUNNING:
            return None
        # Time spent suspended is a policy decision, not slowness:
        # exclude it, or a resumed preemption victim reads as an
        # extreme straggler and gets a redundant backup that discards
        # exactly the work suspension preserved.
        runtime = now - tip.last_launched_at - tip.suspended_seconds
        if runtime < self.config.speculative_lag or runtime <= 0:
            # Too young for a meaningful rate; keeping it out of the
            # peer mean also stops fresh launches dragging the mean to
            # zero and triggering a speculation storm.
            return None
        return tip.progress / runtime

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SpeculativeExecutor(backups={self.backups_launched})"
