"""Cluster facade: wires the simulator, OS kernels, HDFS and Hadoop.

:class:`HadoopCluster` is the main entry point of the library's
simulation side::

    from repro import HadoopCluster, two_job_microbenchmark

    cluster = HadoopCluster(num_nodes=1, seed=7)
    tl, th = two_job_microbenchmark()
    cluster.create_input("/data/tl", 512 * MB)
    job_l = cluster.submit_job(tl)
    cluster.run()
    print(job_l.sojourn_time)

The experiment harness builds on the helpers here: exact progress
watching, attempt lookup by job name, and memory introspection.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, UnknownJobError
from repro.hadoop.attempt import AttemptRole, TaskAttempt
from repro.hadoop.config import HadoopConfig
from repro.hadoop.job import JobInProgress
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.jvm import GcPolicy
from repro.hadoop.states import AttemptState
from repro.hadoop.tasktracker import TaskTracker
from repro.hadoop.task import TaskInProgress, TipRole
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.topology import RackTopology
from repro.netmodel.config import NetConfig
from repro.netmodel.fabric import Fabric
from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.sim.engine import Simulation
from repro.workloads.jobspec import JobSpec, TaskKind, TaskSpec


class _ProgressWatchArmer:
    """Launch callback that arms a progress watch on the first task
    attempt of a named job (picklable replacement for a closure)."""

    __slots__ = ("cluster", "job_name", "fraction", "callback", "done")

    def __init__(self, cluster: "HadoopCluster", job_name: str,
                 fraction: float, callback: Callable[[], None]):
        self.cluster = cluster
        self.job_name = job_name
        self.fraction = fraction
        self.callback = callback
        self.done = False

    def __call__(self, new_attempt: TaskAttempt) -> None:
        if self.done or new_attempt.role is not AttemptRole.TASK:
            return
        try:
            job = self.cluster.job_by_name(self.job_name)
        except UnknownJobError:
            return
        if new_attempt.job_id != job.job_id:
            return
        self.done = True
        new_attempt.jvm.engine.when_progress(self.fraction, self.callback)


class HadoopCluster:
    """A simulated Hadoop 1 cluster."""

    def __init__(
        self,
        num_nodes: int = 1,
        node_config: Optional[NodeConfig] = None,
        hadoop_config: Optional[HadoopConfig] = None,
        scheduler=None,
        seed: int = 0,
        trace: bool = True,
        gc_policy: GcPolicy = GcPolicy.HOARD,
        replication: int = 1,
        racks: int = 1,
        net_config: Optional[NetConfig] = None,
        profile: bool = False,
    ):
        if num_nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        if racks < 1:
            raise ConfigurationError("a cluster needs at least one rack")
        self.sim = Simulation(seed=seed, trace=trace, profile=profile)
        self.hadoop_config = hadoop_config or HadoopConfig()
        base_node_config = node_config or NodeConfig()
        if scheduler is None:
            from repro.schedulers.fifo import FifoScheduler

            scheduler = FifoScheduler()
        self.scheduler = scheduler
        self.jobtracker = JobTracker(self.sim, self.hadoop_config, scheduler)
        self.topology = RackTopology()
        self.namenode = NameNode(self.topology, replication=replication)
        self.kernels: Dict[str, NodeKernel] = {}
        self.trackers: Dict[str, TaskTracker] = {}
        self._started = False

        for i in range(num_nodes):
            hostname = f"node{i:02d}"
            rack = f"/rack{i % racks}"
            kernel = NodeKernel(
                self.sim, base_node_config.replace(hostname=hostname)
            )
            self.kernels[hostname] = kernel
            datanode = DataNode(kernel)
            self.namenode.register_datanode(datanode, rack=rack)
            tracker = TaskTracker(
                self.sim, kernel, self.hadoop_config, self.jobtracker, gc_policy
            )
            self.trackers[hostname] = tracker

        #: the shared-bandwidth network fabric; None (the default)
        #: keeps the historical network-free model -- shuffles and
        #: remote reads stay local disk stand-ins
        self.fabric: Optional[Fabric] = None
        if net_config is not None:
            self.fabric = Fabric(self.sim, self.topology, net_config)
            for kernel in self.kernels.values():
                kernel.fabric = self.fabric
            self.jobtracker.spec_transformers.append(self._attach_shuffle_sources)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start all TaskTracker heartbeat loops (staggered) and the
        JobTracker's heartbeat-timeout monitor."""
        if self._started:
            return
        self._started = True
        phases = self.hadoop_config.heartbeat_phases
        for i, tracker in enumerate(self.trackers.values()):
            # Historically every tracker gets a distinct stagger (free
            # drift); with heartbeat_phases > 0 the staggers wrap onto P
            # shared phase offsets, so trackers of the same phase
            # heartbeat at the exact same instants forever and their
            # events coalesce into one engine batch.
            slot = i % phases if phases > 0 else i
            tracker.start(stagger=0.05 + 0.11 * slot)
        self.jobtracker.start_expiry_monitor()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Start (if needed) and run the simulation.

        Without ``until`` the simulation runs until the event heap
        drains, which happens only if heartbeat loops are stopped; in
        practice callers pass ``until`` or use
        :meth:`run_until_jobs_complete`.
        """
        self.start()
        self.sim.run(until=until, max_events=max_events)

    def run_until_jobs_complete(
        self,
        jobs: Optional[List[JobInProgress]] = None,
        timeout: float = 36_000.0,
    ) -> None:
        """Run until every given (or every submitted) job is terminal.

        Raises :class:`~repro.errors.ConfigurationError` on timeout --
        a deadlock guard for tests.
        """
        self.start()
        deadline = self.sim.now + timeout

        # The wait list shrinks as jobs finish, so the per-event check
        # is O(still-running) rather than O(all jobs ever submitted).
        # When no explicit list is given, the pool is refreshed after
        # draining so jobs submitted by scheduled events are picked up.
        pending: List[JobInProgress] = []

        def outstanding() -> bool:
            nonlocal pending
            pending = [job for job in pending if not job.state.terminal]
            if pending:
                return True
            if jobs is not None:
                pending = [job for job in jobs if not job.state.terminal]
            else:
                pending = self.jobtracker.running_jobs()
            return bool(pending)

        while outstanding():
            if self.sim.now >= deadline:
                raise ConfigurationError(
                    f"jobs still running after {timeout:.0f}s of simulated time"
                )
            if not self.sim.step():
                break
        # Let in-flight bookkeeping (cleanup slots, heartbeats) settle a
        # little so metrics queried right after completion are stable.

    # -- HDFS helpers ------------------------------------------------------------

    def create_input(
        self,
        path: str,
        size: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        writer_host: Optional[str] = None,
    ):
        """Create an input file (pre-populated, like the paper's
        randomly generated inputs)."""
        return self.namenode.create_file(
            path, size, block_size=block_size, writer_host=writer_host
        )

    # -- job helpers --------------------------------------------------------------

    def submit_job(self, spec: JobSpec, delay: Optional[float] = None) -> JobInProgress:
        """Submit now (or after ``delay``/the spec's submit_offset).

        When deferred, returns a placeholder-free handle: the JobSpec
        is submitted by a scheduled event and the JobInProgress can be
        fetched later via :meth:`job_by_name`.
        """
        offset = spec.submit_offset if delay is None else delay
        if offset <= 0:
            return self.jobtracker.submit_job(spec)
        self.sim.schedule(
            offset,
            self.jobtracker.submit_job,
            spec,
            label=f"cluster.submit:{spec.name}",
        )
        return None

    def job_by_name(self, name: str) -> JobInProgress:
        """Find a submitted job by its spec name."""
        return self.jobtracker.job_by_name(name)

    # -- network fabric helpers -------------------------------------------------------

    def _attach_shuffle_sources(
        self, tip: TaskInProgress, spec: TaskSpec
    ) -> TaskSpec:
        """Spec transformer: resolve a reduce attempt's shuffle into
        per-source-host flows at attempt-creation time.

        Each map tip's share of the shuffle is proportional to its
        input and sourced from the host its attempt is (or was) bound
        to.  Maps not yet placed are attributed round-robin across the
        topology -- a deterministic stand-in for "wherever that map
        will run", which keeps the traffic spread realistic without
        modelling the full shuffle barrier.
        """
        if (
            spec.kind is not TaskKind.REDUCE
            or spec.shuffle_bytes <= 0
            or spec.shuffle_sources
        ):
            return spec
        maps = [t for t in tip.job.tips if t.role is TipRole.MAP]
        hosts = self.topology.hosts()
        if not maps or not hosts:
            return spec
        total_input = sum(m.spec.input_bytes for m in maps)
        by_host: Dict[str, int] = {}
        allocated = 0
        for m in maps:
            if total_input > 0:
                share = spec.shuffle_bytes * m.spec.input_bytes // total_input
            else:
                share = spec.shuffle_bytes // len(maps)
            host = m.tracker or hosts[m.index % len(hosts)]
            by_host[host] = by_host.get(host, 0) + share
            allocated += share
            last_host = host
        remainder = spec.shuffle_bytes - allocated
        if remainder > 0:
            by_host[last_host] = by_host.get(last_host, 0) + remainder
        from dataclasses import replace

        return replace(spec, shuffle_sources=tuple(by_host.items()))

    # -- fault recovery helpers ------------------------------------------------------

    def crash_tracker(self, host: str) -> None:
        """Silently kill one node's TaskTracker (and its processes).

        Nothing is reported to the JobTracker: recovery relies on the
        heartbeat-timeout monitor, exactly like a real node crash.
        """
        tracker = self.trackers.get(host)
        if tracker is None:
            raise ConfigurationError(f"unknown host {host!r}")
        tracker.shutdown()
        self.trace("cluster.crash", host=host)

    def restart_tracker(self, host: str, stagger: float = 0.05) -> None:
        """Bring a crashed node's TaskTracker daemon back up."""
        tracker = self.trackers.get(host)
        if tracker is None:
            raise ConfigurationError(f"unknown host {host!r}")
        tracker.restart(stagger=stagger)
        self.trace("cluster.restart", host=host)

    def wasted_work_seconds(self) -> float:
        """Total discarded task-seconds (kills, failures, node losses,
        speculation losers) from the JobTracker's wasted-work ledger."""
        return self.jobtracker.wasted.total()

    def wasted_network_bytes(self) -> int:
        """Total discarded shuffle traffic (killed/failed attempts'
        fetched bytes) from the wasted-work ledger's network column."""
        return self.jobtracker.wasted.network_bytes_total()

    # -- attempt lookup ------------------------------------------------------------

    def on_attempt_launched(self, callback: Callable[[TaskAttempt], None]) -> None:
        """Register a callback on every tracker for attempt launches."""
        for tracker in self.trackers.values():
            tracker.launch_callbacks.append(callback)

    def find_live_attempt(self, job_name: str) -> Optional[TaskAttempt]:
        """The first non-terminal work attempt of a job, if any."""
        try:
            job = self.job_by_name(job_name)
        except UnknownJobError:
            return None
        for tracker in self.trackers.values():
            for attempt in tracker.attempts.values():
                if (
                    attempt.job_id == job.job_id
                    and attempt.role is AttemptRole.TASK
                    and not attempt.state.terminal
                ):
                    return attempt
        return None

    def attempts_of(self, job_name: str, include_aux: bool = False) -> List[TaskAttempt]:
        """All attempts (across trackers) belonging to a job."""
        job = self.job_by_name(job_name)
        found = []
        for tracker in self.trackers.values():
            for attempt in tracker.attempts.values():
                if attempt.job_id != job.job_id:
                    continue
                if not include_aux and attempt.role is not AttemptRole.TASK:
                    continue
                found.append(attempt)
        return sorted(found, key=lambda a: a.attempt_id)

    def suspended_attempts(self) -> List[TaskAttempt]:
        """Every suspended attempt in the cluster."""
        return [
            attempt
            for tracker in self.trackers.values()
            for attempt in tracker.attempts.values()
            if attempt.state is AttemptState.SUSPENDED
        ]

    # -- progress watching -------------------------------------------------------------

    def when_job_progress(
        self, job_name: str, fraction: float, callback: Callable[[], None]
    ) -> None:
        """Invoke ``callback`` at the exact instant the job's first work
        attempt reaches ``fraction`` progress.

        If the attempt is not launched yet, the watch is armed at
        launch time.  This is the mechanism behind the paper's "tl
        progress at launch of th" x-axis.
        """
        attempt = self.find_live_attempt(job_name)
        if attempt is not None:
            attempt.jvm.engine.when_progress(fraction, callback)
            return
        self.on_attempt_launched(
            _ProgressWatchArmer(self, job_name, fraction, callback)
        )

    # -- memory introspection ----------------------------------------------------------

    def kernel_of(self, host: str) -> NodeKernel:
        """The node kernel of one host."""
        if host not in self.kernels:
            raise ConfigurationError(f"unknown host {host!r}")
        return self.kernels[host]

    def total_swapped_out_bytes(self) -> int:
        """Lifetime page-out volume across all nodes."""
        return sum(k.vmm.swap.total_out for k in self.kernels.values())

    def trace(self, label: str, **fields) -> None:
        """Record a cluster-level trace event."""
        self.sim.trace_log.record(self.sim.now, label, **fields)

    def check_invariants(self) -> None:
        """Cross-layer consistency checks used by the test suite."""
        for kernel in self.kernels.values():
            kernel.check_invariants()
        for tracker in self.trackers.values():
            if tracker.free_map_slots < 0 or tracker.free_reduce_slots < 0:
                raise ConfigurationError(
                    f"{tracker.host}: negative free slots"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"HadoopCluster(nodes={len(self.kernels)}, "
            f"jobs={len(self.jobtracker.jobs)})"
        )
