"""Jobs-in-progress: JobTracker-side job lifecycle.

Hadoop 1 jobs pass through PREP (waiting for the job *setup task* to
run) before their maps become schedulable, and run a job *cleanup
task* after the last map finishes.  Both bookkeeping tasks occupy a
slot, which is part of the per-job overhead visible in the paper's
makespan numbers.
"""

from __future__ import annotations

import enum
from array import array
from typing import List, Optional

from repro.errors import UnknownTaskError
from repro.hadoop.counters import Counters
from repro.hadoop.states import TIP_STATE_CODE, TipState
from repro.hadoop.task import TaskInProgress, TipRole
from repro.workloads.jobspec import JobSpec, TaskSpec

#: dense code of the one state the scheduler scans for
_UNASSIGNED_CODE = TIP_STATE_CODE[TipState.UNASSIGNED]


class JobHotArrays:
    """Array-of-struct hot state for one job's tips.

    The per-heartbeat scheduler loops (remaining-size summation,
    schedulable-tip scans) read these flat arrays instead of chasing
    one Python object per tip.  Work tips occupy indices ``0..n-1`` in
    :attr:`~JobInProgress.tips` order; the setup and cleanup tips (when
    present) sit at the tail.  The tips themselves write through
    (:meth:`repro.hadoop.task.TaskInProgress.adopt_hot`), so array and
    object views never diverge.
    """

    __slots__ = ("num_work", "progress", "full_seconds", "state_codes",
                 "trackers")

    def __init__(self, num_work: int, total: int):
        self.num_work = num_work
        self.progress = array("d", bytes(8 * total))
        self.full_seconds = array("d", bytes(8 * total))
        self.state_codes = array("B", bytes(total))
        self.trackers: List[Optional[str]] = [None] * total


class JobState(enum.Enum):
    """Job lifecycle states (Hadoop 1 vocabulary)."""

    PREP = "PREP"
    RUNNING = "RUNNING"
    SUCCEEDED = "SUCCEEDED"
    KILLED = "KILLED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change."""
        return self in (JobState.SUCCEEDED, JobState.KILLED, JobState.FAILED)


def _aux_spec(name: str) -> TaskSpec:
    """Spec for a setup/cleanup attempt: a JVM that does no real work."""
    return TaskSpec(input_bytes=0, output_bytes=0, name=name)


class JobInProgress:
    """One submitted job and its tasks."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        submit_time: float,
        run_setup_cleanup: bool = True,
    ):
        self.job_id = job_id
        self.spec = spec
        self.submit_time = submit_time
        self.priority = spec.priority
        self.state = JobState.PREP
        self.run_setup_cleanup = run_setup_cleanup
        self.tips: List[TaskInProgress] = [
            TaskInProgress(
                self,
                i,
                task_spec,
                TipRole.MAP if task_spec.kind.value == "map" else TipRole.REDUCE,
            )
            for i, task_spec in enumerate(spec.tasks)
        ]
        self.setup_tip: Optional[TaskInProgress] = None
        self.cleanup_tip: Optional[TaskInProgress] = None
        if run_setup_cleanup:
            self.setup_tip = TaskInProgress(self, 0, _aux_spec("setup"), TipRole.JOB_SETUP)
            self.cleanup_tip = TaskInProgress(
                self, 0, _aux_spec("cleanup"), TipRole.JOB_CLEANUP
            )
        else:
            self.state = JobState.RUNNING
        hot_tips = self.tips + [
            t for t in (self.setup_tip, self.cleanup_tip) if t is not None
        ]
        #: shared flat arrays the scheduler hot loops read; tips write
        #: through, so the arrays mirror the object graph exactly
        self.hot = JobHotArrays(len(self.tips), len(hot_tips))
        for hot_index, tip in enumerate(hot_tips):
            tip.adopt_hot(self.hot, hot_index)
        #: callback(job, kind) fired on hot-state changes -- kind
        #: ``"size"`` when a tip's progress moved (the SRPT sort key is
        #: stale) and ``"aux"`` when the pending-setup/cleanup verdict
        #: may have moved; the JobTracker's batched heartbeat context
        #: uses it to repair its caches instead of rebuilding them
        self.observer = None
        self.launch_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: aggregated counters of all terminal attempts
        self.counters = Counters()
        #: completed work tips, maintained by the tips themselves so
        #: :attr:`work_complete` is O(1) per heartbeat instead of a
        #: scan of every tip
        self._completed_work_tips = 0
        #: cached [tip for tip in tips if tip.schedulable]; invalidated
        #: by the tips' state machine so the per-heartbeat scheduler
        #: scans cost O(1) for the (vast majority of) jobs whose tips
        #: did not change state since the last heartbeat
        self._schedulable_cache: Optional[List[TaskInProgress]] = None
        #: cached serial seconds of work left (the HFSP sort key);
        #: recomputed -- by the exact same summation -- only after a
        #: tip reported progress, so values are bit-identical to a
        #: fresh scan
        self._remaining_work = 0.0
        self._remaining_dirty = True
        #: cached :meth:`pending_aux_tip` verdict: the JobTracker asks
        #: every live job on every heartbeat, but the answer only moves
        #: on tip/job state transitions and work-tip completions
        self._aux_cache: Optional[TaskInProgress] = None
        self._aux_dirty = True

    # -- lookup --------------------------------------------------------------

    def all_tips(self) -> List[TaskInProgress]:
        """Work tips plus any setup/cleanup tips."""
        extras = [t for t in (self.setup_tip, self.cleanup_tip) if t is not None]
        return self.tips + extras

    def tip(self, tip_id: str) -> TaskInProgress:
        """Find a TIP by id."""
        for candidate in self.all_tips():
            if candidate.tip_id == tip_id:
                return candidate
        raise UnknownTaskError(f"{tip_id} not in job {self.job_id}")

    # -- scheduling views -----------------------------------------------------

    @property
    def setup_pending(self) -> bool:
        """True when the setup task still needs to be launched."""
        return (
            self.state is JobState.PREP
            and self.setup_tip is not None
            and self.setup_tip.schedulable
        )

    @property
    def cleanup_pending(self) -> bool:
        """True when all work is done and cleanup needs launching."""
        return (
            self.state is JobState.RUNNING
            and self.cleanup_tip is not None
            and self.cleanup_tip.schedulable
            and self.work_complete
        )

    def note_work_tip_completed(self, delta: int) -> None:
        """A work tip completed (+1) or had its output invalidated
        (-1); called from the tip state machine."""
        self._completed_work_tips += delta
        self._aux_dirty = True
        if self.observer is not None:
            self.observer(self, "aux")

    def note_tip_progress(self) -> None:
        """A tip's reported progress changed; the remaining-size
        aggregate must be re-derived before its next read."""
        self._remaining_dirty = True
        if self.observer is not None:
            self.observer(self, "size")

    def note_tip_state_changed(
        self,
        old: "TipState",
        new: "TipState",
        tip: Optional[TaskInProgress] = None,
    ) -> None:
        """Tip state-machine hook: drop caches the transition touches."""
        self._aux_dirty = True
        if self._schedulable_cache is not None and (
            old is TipState.UNASSIGNED or new is TipState.UNASSIGNED
        ):
            self._schedulable_cache = None
        # Only setup/cleanup tip transitions can move the pending-aux
        # verdict through this hook (work-tip completions and job
        # lifecycle changes notify separately), so the observer is
        # spared the noise of every work-tip launch and suspend.
        if self.observer is not None and tip is not None:
            if tip.is_aux:
                self.observer(self, "aux")
            elif old is TipState.UNASSIGNED or new is TipState.UNASSIGNED:
                # Work-tip transitions into or out of UNASSIGNED are
                # exactly the ones that can change whether this job has
                # schedulable tips (the scheduler's candidate filter).
                self.observer(self, "sched")

    def pending_aux_tip(self) -> Optional[TaskInProgress]:
        """The setup or cleanup tip awaiting launch right now, if any.

        Equivalent to checking :attr:`setup_pending` then
        :attr:`cleanup_pending`, cached because the JobTracker polls
        every live job per heartbeat and the verdict only moves on
        state transitions (every mover marks ``_aux_dirty``).
        """
        if self._aux_dirty:
            if self.setup_pending:
                self._aux_cache = self.setup_tip
            elif self.cleanup_pending:
                self._aux_cache = self.cleanup_tip
            else:
                self._aux_cache = None
            self._aux_dirty = False
        return self._aux_cache

    def remaining_work_seconds(self) -> float:
        """Serial seconds of work left across all tips (size-based
        schedulers read this on every heartbeat for every live job)."""
        if self._remaining_dirty:
            # Flat-array scan in tips order: identical floats in the
            # identical summation order as the historical per-object
            # loop, so cached values stay bit-identical to a fresh one.
            remaining = 0.0
            progress = self.hot.progress
            full = self.hot.full_seconds
            for i in range(self.hot.num_work):
                p = progress[i]
                if p < 1.0:
                    remaining += full[i] * (1.0 - p)
            self._remaining_work = remaining
            self._remaining_dirty = False
        return self._remaining_work

    @property
    def work_complete(self) -> bool:
        """True when every work tip succeeded."""
        return self._completed_work_tips >= len(self.tips)

    def schedulable_tips(self) -> List[TaskInProgress]:
        """Work tips the scheduler may launch right now.

        Returns the cached list; callers iterate but must not mutate.
        """
        if self.state is not JobState.RUNNING:
            return []
        tips = self._schedulable_cache
        if tips is None:
            codes = self.hot.state_codes
            work = self.tips
            tips = self._schedulable_cache = [
                work[i]
                for i in range(self.hot.num_work)
                if codes[i] == _UNASSIGNED_CODE
            ]
        return tips

    def running_tips(self) -> List[TaskInProgress]:
        """Work tips with an active (running or suspended) attempt."""
        return [t for t in self.tips if t.state.active]

    def progress(self) -> float:
        """Mean progress over work tips."""
        if not self.tips:
            return 1.0
        progress = self.hot.progress
        return sum(progress[i] for i in range(self.hot.num_work)) / len(self.tips)

    # -- lifecycle events -------------------------------------------------------

    def on_setup_done(self, now: float) -> None:
        """Setup task finished: maps may launch."""
        if self.state is JobState.PREP:
            self.state = JobState.RUNNING
            self.launch_time = now
            self._aux_dirty = True
            if self.observer is not None:
                self.observer(self, "aux")
                # PREP -> RUNNING turns schedulable_tips() from [] to
                # the unassigned work tips: the job becomes a scheduler
                # candidate.
                self.observer(self, "sched")

    def maybe_finish(self, now: float) -> bool:
        """Complete the job if all work (and cleanup) is done.

        Returns True when the job just transitioned to SUCCEEDED.
        """
        if self.state.terminal:
            return False
        if not self.work_complete:
            return False
        if self.cleanup_tip is not None and not self.cleanup_tip.complete:
            return False
        self.state = JobState.SUCCEEDED
        self.finish_time = now
        self._aux_dirty = True
        return True

    def kill(self, now: float) -> None:
        """Mark the whole job killed (tips are killed by the JobTracker)."""
        if not self.state.terminal:
            self.state = JobState.KILLED
            self.finish_time = now
            self._aux_dirty = True

    def mark_failed(self, now: float) -> None:
        """A task exhausted its retry cap: the whole job fails
        (Hadoop's ``mapred.map.max.attempts`` semantics)."""
        if not self.state.terminal:
            self.state = JobState.FAILED
            self.finish_time = now
            self._aux_dirty = True

    # -- metrics -------------------------------------------------------------------

    @property
    def sojourn_time(self) -> Optional[float]:
        """Submission-to-completion time -- the paper's metric for th."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def wasted_seconds(self) -> float:
        """Work discarded by kill-style preemption across all tips."""
        return sum(t.wasted_seconds for t in self.tips)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"JobInProgress({self.job_id}, {self.state.value}, tips={len(self.tips)})"
