"""Task state machines.

The paper's contribution adds three states to the JobTracker's
task-state machine, mirroring how the ``kill`` primitive is plumbed:

    "we introduce ... new identifiers for task states in the
    JobTracker.  As soon as the JobTracker receives the command to
    suspend a task ... that task is marked as being in a MUST_SUSPEND
    state.  At the following heartbeat from the involved TaskTracker,
    the JobTracker piggybacks the command to suspend the task.  The
    following heartbeat notifies the JobTracker whether the task has
    been suspended -- which triggers entering the SUSPENDED state --
    or whether it completed in the meanwhile.  Analogous steps are
    taken to resume tasks, exchanging appropriate messages and
    handling the MUST_RESUME state, returning the state to RUNNING."

:class:`TipState` is the JobTracker-side view of a task-in-progress;
:class:`AttemptState` is the TaskTracker-side view of one attempt.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

from repro.errors import TaskStateError


class TipState(enum.Enum):
    """JobTracker-side state of a task-in-progress."""

    UNASSIGNED = "UNASSIGNED"
    RUNNING = "RUNNING"
    MUST_SUSPEND = "MUST_SUSPEND"
    SUSPENDED = "SUSPENDED"
    MUST_RESUME = "MUST_RESUME"
    MUST_KILL = "MUST_KILL"
    SUCCEEDED = "SUCCEEDED"
    KILLED = "KILLED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        """True for states a task never leaves."""
        return self in (TipState.SUCCEEDED, TipState.KILLED, TipState.FAILED)

    @property
    def active(self) -> bool:
        """True while an attempt exists on some TaskTracker."""
        return self in (
            TipState.RUNNING,
            TipState.MUST_SUSPEND,
            TipState.SUSPENDED,
            TipState.MUST_RESUME,
            TipState.MUST_KILL,
        )


#: dense integer codes for the array-of-struct hot layouts: the
#: scheduler's per-heartbeat scans read TIP state out of a byte array
#: (`JobInProgress.hot`) instead of chasing the object graph.  Codes
#: follow enum declaration order, so they are stable across runs.
TIP_STATE_CODES = tuple(TipState)
TIP_STATE_CODE: Dict[TipState, int] = {
    state: code for code, state in enumerate(TIP_STATE_CODES)
}

#: Legal TipState transitions; the JobTracker enforces these, and the
#: property-based tests fire random command sequences to verify no
#: illegal edge is ever taken.
TIP_TRANSITIONS: Dict[TipState, FrozenSet[TipState]] = {
    TipState.UNASSIGNED: frozenset(
        {
            TipState.RUNNING,
            TipState.KILLED,
            TipState.FAILED,
            # A requeued task (its primary's tracker died) whose live
            # speculative backup completed before the relaunch.
            TipState.SUCCEEDED,
        }
    ),
    TipState.RUNNING: frozenset(
        {
            TipState.MUST_SUSPEND,
            TipState.MUST_KILL,
            TipState.SUCCEEDED,
            TipState.KILLED,
            TipState.FAILED,
            TipState.UNASSIGNED,  # attempt lost (TT death) -> reschedule
        }
    ),
    TipState.MUST_SUSPEND: frozenset(
        {
            TipState.SUSPENDED,
            TipState.SUCCEEDED,  # completed in the meanwhile
            TipState.MUST_KILL,
            TipState.KILLED,
            TipState.FAILED,
            TipState.UNASSIGNED,  # tracker lost mid-directive
        }
    ),
    TipState.SUSPENDED: frozenset(
        {
            TipState.MUST_RESUME,
            TipState.MUST_KILL,
            TipState.KILLED,
            TipState.UNASSIGNED,  # non-local restart = delayed kill
            TipState.FAILED,
            TipState.SUCCEEDED,  # a speculative backup finished first
        }
    ),
    TipState.MUST_RESUME: frozenset(
        {
            TipState.RUNNING,
            TipState.MUST_KILL,
            TipState.KILLED,
            TipState.FAILED,
            TipState.UNASSIGNED,  # tracker lost mid-directive
            TipState.SUCCEEDED,  # a speculative backup finished first
        }
    ),
    TipState.MUST_KILL: frozenset(
        {
            TipState.KILLED,
            TipState.UNASSIGNED,
            TipState.SUCCEEDED,
            TipState.FAILED,  # task error raced the kill directive
        }
    ),
    # A completed map whose output lived on a lost TaskTracker must be
    # re-executed (its output is served from tracker-local disk).
    TipState.SUCCEEDED: frozenset({TipState.UNASSIGNED}),
    TipState.KILLED: frozenset({TipState.UNASSIGNED}),  # rescheduled from scratch
    TipState.FAILED: frozenset({TipState.UNASSIGNED}),
}


def check_tip_transition(old: TipState, new: TipState) -> None:
    """Raise :class:`~repro.errors.TaskStateError` on an illegal edge."""
    if new is old:
        return
    if new not in TIP_TRANSITIONS[old]:
        raise TaskStateError(f"illegal TIP transition {old.value} -> {new.value}")


class AttemptState(enum.Enum):
    """TaskTracker-side state of one task attempt."""

    STARTING = "STARTING"
    RUNNING = "RUNNING"
    SUSPENDING = "SUSPENDING"  # SIGTSTP sent, handler still draining
    SUSPENDED = "SUSPENDED"
    SUCCEEDED = "SUCCEEDED"
    KILLED = "KILLED"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        """True once the attempt can never run again."""
        return self in (
            AttemptState.SUCCEEDED,
            AttemptState.KILLED,
            AttemptState.FAILED,
        )

    @property
    def holds_slot(self) -> bool:
        """True while the attempt occupies a TaskTracker slot.

        This is the crux of the suspend primitive: a SUSPENDED attempt
        keeps its process (and memory image) but *releases its slot*
        so the high-priority task can run.
        """
        return self in (
            AttemptState.STARTING,
            AttemptState.RUNNING,
            AttemptState.SUSPENDING,
        )


#: dense integer codes for the TaskTracker-side attempt state table
#: (per-state population counts consulted once per heartbeat)
ATTEMPT_STATE_CODES = tuple(AttemptState)
ATTEMPT_STATE_CODE: Dict[AttemptState, int] = {
    state: code for code, state in enumerate(ATTEMPT_STATE_CODES)
}
