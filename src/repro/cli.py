"""Command-line interface.

::

    repro list                          # experiments available
    repro run faults_study --runs 3     # one experiment by name
    repro reproduce --figure 2 --runs 20 --out results/
    repro reproduce --all --quick
    repro schedule --primitive suspend --progress 50
    repro trace fig2 --out run.json     # Perfetto/Chrome trace export
    repro profile scale --quick         # cProfile hotspot report
    repro profile scale --engine        # engine self-profile (labels)
    repro checkpoint fig2 --at 40 --out ck.bin   # snapshot mid-flight
    repro resume ck.bin                 # restore + finish the frozen run
    repro run scale --workers 4 --serve 8800     # + live HTTP observatory
    repro watch results/sweep           # ANSI dashboard over a ledger
    repro real-demo --input-mb 24       # real-process prototype

``run`` executes a single registered experiment (name or alias);
``reproduce`` regenerates the paper's figures (tables + ASCII plots +
CSV files); ``schedule`` prints one Figure 1 style Gantt chart;
``real-demo`` runs the POSIX-signal prototype with real worker
processes.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments.registry import (
    describe_experiment,
    get_experiment,
    list_experiments,
    resolve_name,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'OS-Assisted Task Preemption for Hadoop' "
        "(ICDCS 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment by name")
    run.add_argument("experiment", help="experiment id or alias "
                     "(see `repro list`)")
    run.add_argument("--runs", type=int, default=None,
                     help="averaged runs per data point")
    run.add_argument("--seed", type=int, default=None,
                     help="base seed (experiments that accept one)")
    run.add_argument("--quick", action="store_true",
                     help="scaled-down axes and 2 runs per point")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes sharding the experiment grid "
                     "(results are identical for any value; 0 = all cores)")
    run.add_argument("--out", default=None,
                     help="directory for CSV output (optional)")
    run.add_argument("--no-plots", action="store_true",
                     help="tables only, no ASCII plots")
    run.add_argument("--quiet", "-q", action="store_true",
                     help="suppress per-cell progress lines (stderr)")
    run.add_argument("--checkpoint-dir", default=None,
                     help="persist each finished grid cell here; a killed "
                     "sweep restarted with the same directory re-runs "
                     "only the missing cells")
    run.add_argument("--max-retries", type=int, default=None,
                     help="per-cell retry budget for crashed/hung/corrupt "
                     "worker attempts before the cell is quarantined "
                     "(default 2; results are identical with or without "
                     "retries)")
    run.add_argument("--cell-timeout", type=float, default=None,
                     help="wall-clock seconds one cell attempt may run "
                     "before its worker is killed and the cell retried")
    run.add_argument("--snapshot-every", type=float, default=None,
                     help="auto-snapshot long resumable cells every N "
                     "simulated seconds into --checkpoint-dir, so a "
                     "crashed shard resumes mid-cell (default 900)")
    run.add_argument("--chaos", type=int, default=None, metavar="SEED",
                     help="inject a seeded chaos plan (worker kills, "
                     "hangs, corrupt payloads) into the sweep; results "
                     "must be -- and are -- identical to a clean run")
    run.add_argument("--serve", nargs="?", type=int, const=0, default=None,
                     metavar="PORT",
                     help="serve the live sweep observatory over HTTP "
                     "while the run executes: GET / (dashboard), /state "
                     "(JSON snapshot), /events (SSE ledger tail); "
                     "default PORT 0 picks a free one")

    rep = sub.add_parser("reproduce", help="regenerate figures")
    rep.add_argument("--figure", "-f", action="append", default=[],
                     help="figure/experiment id (fig1..fig4, natjam, "
                     "eviction, hfsp); repeatable")
    rep.add_argument("--all", action="store_true", help="run every experiment")
    rep.add_argument("--runs", type=int, default=None,
                     help="averaged runs per data point (default: paper's 20)")
    rep.add_argument("--quick", action="store_true",
                     help="scaled-down axes and 2 runs per point")
    rep.add_argument("--workers", type=int, default=1,
                     help="worker processes sharding each experiment grid "
                     "(results are identical for any value; 0 = all cores)")
    rep.add_argument("--out", default=None,
                     help="directory for CSV output (optional)")
    rep.add_argument("--no-plots", action="store_true",
                     help="tables only, no ASCII plots")
    rep.add_argument("--quiet", "-q", action="store_true",
                     help="suppress per-cell progress lines (stderr)")

    sch = sub.add_parser("schedule", help="print one execution schedule")
    sch.add_argument("--primitive", "-p", default="suspend",
                     choices=["wait", "kill", "suspend", "natjam"])
    sch.add_argument("--progress", type=float, default=50.0,
                     help="tl progress at launch of th (percent)")
    sch.add_argument("--heavy", action="store_true",
                     help="memory-hungry tasks (2 GB footprints)")

    trace = sub.add_parser(
        "trace",
        help="export a Chrome trace-event / Perfetto JSON span trace "
        "of one experiment cell",
    )
    trace.add_argument("experiment", help="experiment to trace "
                       "(fig2, fig3, scale, shuffle, memscale)")
    trace.add_argument("--quick", action="store_true",
                       help="smaller replay cell (10 trackers)")
    trace.add_argument("--seed", type=int, default=None,
                       help="override the cell's derived seed")
    trace.add_argument("--out", default="run.json",
                       help="output JSON path (default run.json); load "
                       "it at https://ui.perfetto.dev")
    trace.add_argument("--heartbeats", action="store_true",
                       help="include per-heartbeat instant events "
                       "(verbose)")

    prof = sub.add_parser(
        "profile", help="run one experiment under cProfile and print hotspots"
    )
    prof.add_argument("experiment", help="experiment id or alias "
                      "(see `repro list`)")
    prof.add_argument("--runs", type=int, default=None,
                      help="averaged runs per data point")
    prof.add_argument("--quick", action="store_true",
                      help="scaled-down axes and 2 runs per point")
    prof.add_argument("--top", type=int, default=20,
                      help="rows of the profile report (default 20)")
    prof.add_argument("--sort", default="cumulative",
                      choices=["cumulative", "tottime", "calls"],
                      help="pstats sort order (default cumulative)")
    prof.add_argument("--out", default=None,
                      help="also dump raw pstats data to this file "
                      "(inspect later with `python -m pstats`)")
    prof.add_argument("--engine", action="store_true",
                      help="engine self-profile instead of cProfile: "
                      "per-label fired-event counts and callback wall "
                      "time for a representative cell")

    ckpt = sub.add_parser(
        "checkpoint",
        help="run a representative cell, snapshotting mid-flight",
    )
    ckpt.add_argument("cell", help="checkpointable cell "
                      "(fig2, scale, memscale)")
    ckpt.add_argument("--at", type=float, default=None,
                      help="virtual time of the snapshot "
                      "(default: the cell's mid-flight instant)")
    ckpt.add_argument("--seed", type=int, default=None,
                      help="override the cell's derived seed")
    ckpt.add_argument("--out", default="ck.bin",
                      help="checkpoint file path (default ck.bin)")

    res = sub.add_parser(
        "resume",
        help="restore a checkpoint file and finish its run "
        "(or report a --checkpoint-dir sweep's completion state)",
    )
    res.add_argument("path", help="checkpoint file written by "
                     "`repro checkpoint`, or a --checkpoint-dir "
                     "sweep directory")

    wat = sub.add_parser(
        "watch",
        help="live ANSI terminal dashboard for a sweep "
        "(progress, ETA, mid-sweep quantiles)",
    )
    wat.add_argument("target", help="a --checkpoint-dir sweep directory, "
                     "a ledger.jsonl file, or a `repro run --serve` "
                     "observatory URL")
    wat.add_argument("--interval", type=float, default=0.5,
                     help="redraw period in seconds (default 0.5)")
    wat.add_argument("--once", action="store_true",
                     help="render one frame and exit")
    wat.add_argument("--max-seconds", type=float, default=None,
                     help="give up after this many wall seconds "
                     "(exit code 1) instead of waiting for sweep-finish")

    demo = sub.add_parser("real-demo", help="real-process prototype demo")
    demo.add_argument("--input-mb", type=int, default=24,
                      help="synthetic input size per task (MB)")
    demo.add_argument("--progress", type=float, default=50.0,
                      help="tl progress at launch of th (percent)")
    demo.add_argument("--memory-mb", type=int, default=0,
                      help="extra memory each worker allocates (MB)")
    return parser


def _cmd_list() -> int:
    print("experiments:")
    names = list_experiments()
    width = max(len(name) for name in names)
    for name in names:
        print(f"  {name:<{width}}  {describe_experiment(name)}")
    return 0


def _quick_kwargs(name: str) -> dict:
    """Scaled-down parameters for --quick."""
    if name in ("fig2", "fig3"):
        return {"runs": 2, "progress_points": [0.25, 0.5, 0.75]}
    if name == "fig4":
        from repro.units import GB

        return {"runs": 2, "memory_points": [0, int(1.25 * GB), int(2.5 * GB)]}
    if name == "natjam":
        return {"runs": 2, "progress_points": [0.5]}
    if name in ("eviction", "hfsp", "gc"):
        return {"runs": 2}
    if name == "swappiness":
        return {"runs": 2, "swappiness_values": [0, 60]}
    if name == "adaptive":
        return {"runs": 2, "progress_points": [0.02, 0.5, 0.98]}
    if name == "faults":
        return {"runs": 1}
    if name == "scale":
        return {
            "runs": 1,
            "cluster_sizes": [25],
            "scenarios": ["baseline", "burst"],
            "num_jobs": 15,
        }
    if name == "shuffle":
        return {"runs": 1, "cluster_sizes": [10], "num_jobs": 12}
    if name == "memscale":
        return {"runs": 1, "cluster_sizes": [10], "num_jobs": 12}
    return {}


def _emit_report(report, out: Optional[str], plots: bool) -> None:
    """Print one report and optionally write its CSV series."""
    print(report.render(plots=plots))
    print()
    if out:
        os.makedirs(out, exist_ok=True)
        for series_name, csv_text in report.to_csv().items():
            path = os.path.join(out, f"{series_name}.csv")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(csv_text)
            print(f"wrote {path}")


def _resolve_workers(requested: int) -> int:
    """CLI worker count: 0 means one worker per core."""
    if requested < 0:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"--workers must be >= 0 (got {requested}); 0 means all cores"
        )
    if requested == 0:
        from repro.experiments.runner import default_workers

        return default_workers()
    return requested


def _apply_workers(name: str, runner, kwargs: dict, requested: int) -> None:
    """Pass --workers to experiments whose runner accepts the knob."""
    import inspect

    workers = _resolve_workers(requested)
    if workers <= 1:
        return
    accepted = set(inspect.signature(runner.resolve()).parameters)
    if "workers" in accepted:
        kwargs["workers"] = workers
    else:
        print(
            f"warning: {name} runs serially; ignoring --workers",
            file=sys.stderr,
        )


def _set_progress(args) -> None:
    """Per-cell progress lines: on by default for parallel runs (the
    ones long enough to want them), off under --quiet."""
    from repro.experiments.runner import set_progress

    set_progress(_resolve_workers(args.workers) > 1 and not args.quiet)


def _cmd_run(args) -> int:
    import inspect

    name = resolve_name(args.experiment)
    runner = get_experiment(name)
    _set_progress(args)
    if args.checkpoint_dir is not None:
        from repro.experiments.runner import set_cell_cache

        set_cell_cache(args.checkpoint_dir)
    if any(
        value is not None
        for value in (args.max_retries, args.cell_timeout,
                      args.snapshot_every, args.chaos)
    ):
        from repro.experiments.runner import set_supervision

        set_supervision(
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
            snapshot_every=args.snapshot_every,
            chaos_seed=args.chaos,
        )
    kwargs = _quick_kwargs(name) if args.quick else {}
    if args.runs is not None:
        kwargs["runs"] = args.runs
    _apply_workers(name, runner, kwargs, args.workers)
    if args.seed is not None:
        # Experiments name their seed knob base_seed or seed; pick the
        # one the real runner's signature declares.
        accepted = set(inspect.signature(runner.resolve()).parameters)
        for knob in ("base_seed", "seed"):
            if knob in accepted:
                kwargs[knob] = args.seed
                break
        else:
            print(
                f"warning: {name} takes no seed; ignoring --seed",
                file=sys.stderr,
            )
    server = None
    if args.serve is not None:
        import tempfile

        from repro.experiments.runner import set_ledger
        from repro.obs.ledger import ledger_path
        from repro.obs.server import ObsServer

        if args.checkpoint_dir is not None:
            os.makedirs(args.checkpoint_dir, exist_ok=True)
            path = ledger_path(args.checkpoint_dir)
        else:
            # No cache directory: park the ledger in a throwaway spot
            # purely so the HTTP endpoints have a file to tail.
            path = ledger_path(tempfile.mkdtemp(prefix="repro-obs-"))
            set_ledger(path)
        server = ObsServer(path, port=args.serve).start()
        print(
            f"observatory at {server.url} -- GET / (dashboard), "
            "/state (JSON), /events (SSE); or `repro watch "
            f"{server.url}`",
            file=sys.stderr,
        )
    try:
        report = runner(**kwargs)
    finally:
        if server is not None:
            server.stop()
    _emit_report(report, args.out, plots=not args.no_plots)
    return 0


def _cmd_watch(args) -> int:
    from repro.obs.watch import watch

    return watch(
        args.target,
        interval=args.interval,
        once=args.once,
        max_seconds=args.max_seconds,
    )


def _cmd_reproduce(args) -> int:
    names: List[str] = list(args.figure)
    if args.all:
        names = list_experiments()
    if not names:
        print("nothing to do: pass --figure or --all", file=sys.stderr)
        return 2
    _set_progress(args)
    exit_code = 0
    for raw_name in names:
        name = resolve_name(raw_name)
        runner = get_experiment(name)
        kwargs = _quick_kwargs(name) if args.quick else {}
        if args.runs is not None:
            kwargs["runs"] = args.runs
        if name == "fig1":
            kwargs.pop("runs", None)
        _apply_workers(name, runner, kwargs, args.workers)
        report = runner(**kwargs)
        _emit_report(report, args.out, plots=not args.no_plots)
    return exit_code


def _cmd_trace(args) -> int:
    """Trace one experiment cell and export Perfetto JSON.

    Runs a representative cell with a telemetry span collector
    subscribed (observation only -- the run is event-for-event the one
    the sweep would do), stitches the flat trace records into
    attempt/suspend/episode/transfer spans, and writes Chrome
    trace-event JSON for https://ui.perfetto.dev.
    """
    from repro.telemetry.capture import capture_experiment
    from repro.telemetry.export import write_chrome_trace

    capture = capture_experiment(
        resolve_name(args.experiment),
        quick=args.quick,
        seed=args.seed,
        heartbeats=args.heartbeats,
    )
    write_chrome_trace(args.out, capture.to_chrome())
    print(f"wrote {args.out}")
    for cell in capture.cells:
        episodes = cell.collector.by_category("episode")
        wasted = sum(s.args.get("wasted_seconds", 0.0) for s in episodes)
        print(
            f"  {cell.name}: {len(cell.collector.spans)} spans, "
            f"{len(episodes)} preemption episodes "
            f"({wasted:.1f}s wasted), "
            f"{cell.engine.get('events_fired', 0)} engine events"
        )
    print("open the file at https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def _cmd_profile(args) -> int:
    """Run one experiment under cProfile; print the hotspot table.

    The fast path to "where did this replay's time go" -- the same
    loop the PR-level optimisation work uses, now one command:
    ``repro profile scale --quick``.  With ``--engine`` the engine
    profiles *itself* instead: deterministic per-label fired-event
    counts with wall-time attribution, for a representative cell.
    """
    import cProfile
    import pstats

    if args.engine:
        from repro.telemetry.capture import capture_experiment
        from repro.telemetry.profiling import render_engine_stats

        capture = capture_experiment(
            resolve_name(args.experiment), quick=args.quick, profile=True
        )
        for cell in capture.cells:
            print(f"=== {cell.name} ===")
            print(render_engine_stats(cell.engine, top=args.top))
            print()
        return 0

    name = resolve_name(args.experiment)
    runner = get_experiment(name)
    kwargs = _quick_kwargs(name) if args.quick else {}
    if args.runs is not None:
        kwargs["runs"] = args.runs
    if name == "fig1":
        kwargs.pop("runs", None)
    profiler = cProfile.Profile()
    profiler.enable()
    runner(**kwargs)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.experiments.harness import TwoJobHarness
    from repro.metrics.timeline import extract_timeline, render_gantt

    harness = TwoJobHarness(
        primitive=args.primitive,
        progress_at_launch=args.progress / 100.0,
        heavy=args.heavy,
        runs=1,
        keep_traces=True,
    )
    result = harness.run_once(seed=500)
    segments = [
        s for s in extract_timeline(result.trace_cluster.sim.trace_log)
        if "_m_" in s.task
    ]
    print(render_gantt(segments))
    print(
        f"th sojourn {result.sojourn_th:.1f}s, makespan {result.makespan:.1f}s, "
        f"tl paged {result.tl_paged_bytes / (1024 ** 2):.0f} MB"
    )
    return 0


def _print_cell_metrics(metrics: dict) -> None:
    width = max(len(key) for key in metrics)
    for key, value in sorted(metrics.items()):
        if isinstance(value, float):
            print(f"  {key:<{width}}  {value:.6g}")
        else:
            print(f"  {key:<{width}}  {value}")


def _cmd_checkpoint(args) -> int:
    """Run one representative cell, freezing it mid-flight to a file.

    The run continues to completion after the snapshot, so the printed
    metrics are the *unbroken* reference -- ``repro resume`` on the
    written file must reproduce every one of them, ``trace_digest``
    included.
    """
    from repro.checkpoint.cells import checkpoint_cell
    from repro.checkpoint.core import read_header

    metrics = checkpoint_cell(
        args.cell, args.out, at=args.at, seed=args.seed
    )
    header = read_header(args.out)
    print(f"wrote {args.out} ({os.path.getsize(args.out)} bytes, "
          f"layers: {', '.join(header.get('layers', []))})")
    print("unbroken-run metrics (resume must reproduce these):")
    _print_cell_metrics(metrics)
    return 0


def _cmd_resume(args) -> int:
    if not os.path.exists(args.path):
        print(f"error: {args.path}: no such checkpoint file or sweep "
              "directory", file=sys.stderr)
        return 1
    if os.path.isdir(args.path):
        return _report_sweep_dir(args.path)
    from repro.checkpoint.cells import resume_cell

    metrics = resume_cell(args.path)
    print(f"resumed {args.path}:")
    _print_cell_metrics(metrics)
    return 0


def _report_sweep_dir(directory: str) -> int:
    """Completion report for a ``--checkpoint-dir`` sweep directory."""
    import json

    manifest_path = os.path.join(directory, "manifest.json")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError:
        print(
            f"error: {directory} has no manifest.json -- was it written "
            "by `repro run ... --checkpoint-dir`?",
            file=sys.stderr,
        )
        return 1
    # The manifest's `done` flags can be stale (it is written at sweep
    # start, and a kill may land before the final refresh); the cache
    # files themselves are the truth.
    cells = manifest.get("cells", [])
    for entry in cells:
        entry["done"] = os.path.exists(
            os.path.join(directory, f"{entry.get('key')}.pkl")
        )
    done = sum(1 for entry in cells if entry["done"])
    total = manifest.get("total", len(cells))
    quarantined = [entry for entry in cells if entry.get("quarantined")]
    print(f"{directory}: {done}/{total} cells checkpointed"
          + (f", {len(quarantined)} quarantined" if quarantined else ""))
    for entry in cells:
        mark = "x" if entry["done"] else (
            "q" if entry.get("quarantined") else " "
        )
        line = f"  [{mark}] {entry.get('label', entry.get('key'))}"
        if entry.get("quarantined") and entry.get("causes"):
            line += f"  <- {entry['causes'][-1]}"
        print(line)
    stats = manifest.get("supervisor")
    if stats:
        interesting = {k: v for k, v in sorted(stats.items()) if v}
        if interesting:
            print("supervisor: " + ", ".join(
                f"{k}={v}" for k, v in interesting.items()
            ))
    if done < total:
        print(
            "re-run the original `repro run ... --checkpoint-dir "
            f"{directory}` command to finish the remaining cells"
            + (" (quarantined cells retry from scratch)"
               if quarantined else "")
        )
    return 0


def _cmd_real_demo(args) -> int:
    from repro.posixrt.runner import MiniExperiment

    experiment = MiniExperiment(
        input_mb=args.input_mb,
        progress_at_launch=args.progress / 100.0,
        memory_mb=args.memory_mb,
    )
    rows = experiment.compare(("wait", "kill", "suspend"))
    print(f"{'primitive':>10} | {'th sojourn (s)':>14} | {'makespan (s)':>12}")
    for name, outcome in rows.items():
        print(f"{name:>10} | {outcome.sojourn_th:14.2f} | {outcome.makespan:12.2f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "reproduce":
            return _cmd_reproduce(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "schedule":
            return _cmd_schedule(args)
        if args.command == "checkpoint":
            return _cmd_checkpoint(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "real-demo":
            return _cmd_real_demo(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
