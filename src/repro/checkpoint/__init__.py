"""Checkpointable, forkable simulations.

``snapshot`` freezes a live :class:`~repro.sim.engine.Simulation` (or a
whole :class:`~repro.hadoop.cluster.HadoopCluster`) into a versioned,
self-describing blob; ``restore`` thaws it into an independent copy
that replays event-for-event identically to the original -- the same
replay-identity invariant the differential oracle tests pin.  ``fork``
turns one warm checkpoint into many what-if branches with re-derived
RNG streams, so "same state, four admission policies" costs one warm-up
instead of four runs from t=0.

The on-disk format is a magic tag + JSON header (readable without
unpickling anything) followed by a pickle body; the header carries a
schema fingerprint of the whole ``repro`` source tree, so a checkpoint
written by different code is rejected instead of silently diverging.
"""

from repro.checkpoint.core import (
    Checkpoint,
    fork,
    layer_inventory,
    load,
    read_header,
    restore,
    save,
    schema_fingerprint,
    snapshot,
    validate_header,
    write,
)

__all__ = [
    "Checkpoint",
    "fork",
    "layer_inventory",
    "load",
    "read_header",
    "restore",
    "save",
    "schema_fingerprint",
    "snapshot",
    "validate_header",
    "write",
]
