"""Snapshot/restore/fork of live simulations.

A checkpoint is the *whole object graph* -- engine heap (live entries
only, via the heap-entry representative protocol), RNG streams, the
TraceLog tail, resource ``S(t)`` functions and their armed crossing
events, VMM/swap occupancy, fabric flow/link occupancy, and every
Hadoop job/TIP/attempt/tracker -- serialized with :mod:`pickle` behind
a versioned header.  Model code keeps the graph picklable by never
storing lambdas, closures or local classes in persistent simulation
state (``functools.partial`` of bound methods and module-level callable
classes pickle fine; closures do not).

File layout::

    RPCK | header length (4 bytes, big endian) | header JSON | pickle

The header is plain JSON readable without executing any pickle byte --
``tools/validate_checkpoint.py`` and ``read_header`` rely on that.
Versioning rules: ``format`` is the container layout (bumped on layout
changes); ``schema`` fingerprints the entire ``repro`` source tree, so
a checkpoint is valid only for the exact code that wrote it -- replay
identity cannot survive arbitrary model edits, and a loud
:class:`~repro.errors.SnapshotVersionError` beats a silent divergence.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pickle
import struct
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
)

MAGIC = b"RPCK"
FORMAT_VERSION = 1


@functools.lru_cache(maxsize=1)
def schema_fingerprint() -> str:
    """SHA-256 (truncated) over every ``repro`` source file.

    Any code change -- even one that looks behaviour-preserving --
    yields a new fingerprint, because replay identity is only
    guaranteed against the exact tree that wrote the checkpoint.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        h.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()[:16]


def _sim_of(root: Any):
    """The Simulation inside ``root`` (which may *be* the simulation)."""
    return getattr(root, "sim", root)


def layer_inventory(root: Any) -> Dict[str, Any]:
    """Per-layer summary of what a checkpoint of ``root`` captures.

    Written into the header so validation tooling can sanity-check a
    file without unpickling it, and humans can see what a blob holds.
    """
    sim = _sim_of(root)
    inventory: Dict[str, Any] = {
        "engine": {
            "now": sim.now,
            "pending_events": sim.pending_events,
            "events_fired": sim.events_fired,
        },
        "rng": {
            "master_seed": sim.rng.master_seed,
            "streams": sorted(sim.rng._streams),
        },
        "trace": {
            "enabled": sim.trace_log.enabled,
            "records": len(sim.trace_log),
            "digest": sim.trace_log.digest(),
        },
    }
    if root is not sim:  # a HadoopCluster (or compatible facade)
        jobtracker = getattr(root, "jobtracker", None)
        if jobtracker is not None:
            inventory["hadoop"] = {
                "jobs": len(jobtracker.jobs),
                "trackers": len(getattr(root, "trackers", {})),
            }
        kernels = getattr(root, "kernels", {})
        if kernels:
            inventory["osmodel"] = {
                "kernels": len(kernels),
                "processes": sum(
                    len(k._processes) for k in kernels.values()
                ),
            }
        fabric = getattr(root, "fabric", None)
        if fabric is not None:
            inventory["netmodel"] = {
                "active_flows": len(fabric._flows),
                "flows_completed": fabric.flows_completed,
            }
    return inventory


@dataclass(frozen=True)
class Checkpoint:
    """A frozen simulation: self-describing header + pickle payload."""

    header: Dict[str, Any]
    payload: bytes

    @property
    def meta(self) -> Dict[str, Any]:
        """Caller-supplied context stored at snapshot time."""
        return self.header.get("meta") or {}

    @property
    def nbytes(self) -> int:
        """Serialized size (header + payload), as written to disk."""
        return len(MAGIC) + 4 + len(self._header_bytes()) + len(self.payload)

    def _header_bytes(self) -> bytes:
        return json.dumps(self.header, sort_keys=True).encode("utf-8")


def snapshot(root: Any, meta: Optional[Dict[str, Any]] = None) -> Checkpoint:
    """Freeze ``root`` (a Simulation or HadoopCluster) in memory.

    Raises :class:`SnapshotError` naming the offender when some object
    in the graph is not picklable (a closure or local class smuggled
    into simulation state).
    """
    try:
        payload = pickle.dumps(root, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(
            f"simulation state is not picklable: {exc!r}; persistent "
            "state must avoid lambdas, closures and local classes "
            "(use functools.partial or module-level callables)"
        ) from exc
    header = {
        "format": FORMAT_VERSION,
        "schema": schema_fingerprint(),
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "root_type": f"{type(root).__module__}.{type(root).__qualname__}",
        "layers": layer_inventory(root),
        "meta": dict(meta) if meta else {},
    }
    return Checkpoint(header=header, payload=payload)


def validate_header(header: Dict[str, Any]) -> None:
    """Reject headers this code cannot faithfully restore."""
    fmt = header.get("format")
    if fmt != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"checkpoint format {fmt!r} != supported {FORMAT_VERSION}"
        )
    schema = header.get("schema")
    current = schema_fingerprint()
    if schema != current:
        raise SnapshotVersionError(
            f"checkpoint schema {schema!r} does not match the current "
            f"source tree ({current}); re-create the checkpoint with "
            "this code -- replay identity across code changes is not "
            "guaranteed"
        )


def restore(checkpoint: Checkpoint) -> Any:
    """Thaw a checkpoint into an independent live object graph.

    Every call unpickles afresh, so restoring twice yields two fully
    disjoint simulations.
    """
    validate_header(checkpoint.header)
    try:
        return pickle.loads(checkpoint.payload)
    except Exception as exc:
        raise SnapshotError(f"checkpoint payload corrupt: {exc!r}") from exc


def fork(
    checkpoint: Checkpoint,
    n: int,
    vary: Optional[Callable[[Any, int], None]] = None,
) -> List[Any]:
    """Restore ``n`` what-if branches from one checkpoint.

    Each branch's RNG streams are re-derived with a branch-index salt
    (sha256 of master seed, branch and stream name), so branches share
    their history up to the fork point and explore *independent*
    random futures after it.  ``vary(branch_root, index)`` -- applied
    in-process, so it need not be picklable -- mutates each branch
    before it is returned ("same state, four admission policies").
    """
    if n < 1:
        raise SnapshotError("fork needs at least one branch")
    branches = []
    for index in range(n):
        root = restore(checkpoint)
        _rederive_streams(_sim_of(root).rng, index)
        if vary is not None:
            vary(root, index)
        branches.append(root)
    return branches


def _rederive_streams(registry, branch: int) -> None:
    """Re-seed every existing stream for one fork branch."""
    for name, stream in registry._streams.items():
        digest = hashlib.sha256(
            f"{registry.master_seed}:fork:{branch}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream.seed = seed
        stream.raw.seed(seed)


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------


def write(checkpoint: Checkpoint, path: str) -> None:
    """Write a checkpoint atomically (tmp file + rename)."""
    header_bytes = checkpoint._header_bytes()
    blob = b"".join(
        (MAGIC, struct.pack(">I", len(header_bytes)), header_bytes,
         checkpoint.payload)
    )
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


def save(
    root: Any, path: str, meta: Optional[Dict[str, Any]] = None
) -> Checkpoint:
    """Snapshot ``root`` and write it to ``path`` in one step."""
    checkpoint = snapshot(root, meta=meta)
    write(checkpoint, path)
    return checkpoint


def _read_parts(fh, path: str):
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise SnapshotFormatError(
            f"{path}: not a checkpoint file (magic {magic!r})"
        )
    prefix = fh.read(4)
    if len(prefix) != 4:
        raise SnapshotFormatError(f"{path}: truncated header length")
    (length,) = struct.unpack(">I", prefix)
    raw = fh.read(length)
    if len(raw) != length:
        raise SnapshotFormatError(f"{path}: truncated header")
    try:
        header = json.loads(raw.decode("utf-8"))
    except ValueError as exc:
        raise SnapshotFormatError(f"{path}: header is not JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise SnapshotFormatError(f"{path}: header is not an object")
    return header


def read_header(path: str) -> Dict[str, Any]:
    """Parse just the JSON header -- no pickle byte is ever executed."""
    with open(path, "rb") as fh:
        return _read_parts(fh, path)


def load(path: str) -> Checkpoint:
    """Read a checkpoint file back into a :class:`Checkpoint`."""
    with open(path, "rb") as fh:
        header = _read_parts(fh, path)
        payload = fh.read()
    if not payload:
        raise SnapshotFormatError(f"{path}: missing pickle payload")
    return Checkpoint(header=header, payload=payload)


# ----------------------------------------------------------------------
# The paced-replay hook
# ----------------------------------------------------------------------


class SnapshotEvent:
    """The callable behind :meth:`Simulation.snapshot_at`.

    A module-level class (not a closure) so a snapshot event that is
    still pending inside *another* checkpoint pickles cleanly.  The
    engine records the event's trace line before invoking it, so the
    checkpoint includes its own snapshot marker and restored runs stay
    digest-comparable with the run that wrote them.
    """

    __slots__ = ("root", "path", "meta")

    def __init__(self, root: Any, path: str,
                 meta: Optional[Dict[str, Any]] = None):
        self.root = root
        self.path = path
        self.meta = meta

    def __call__(self) -> None:
        save(self.root, self.path, meta=self.meta)
