"""Representative checkpointable cells of each experiment family.

The CLI (``repro checkpoint`` / ``repro resume``), the CI smoke job and
bench_guard all exercise the same three cells -- one per stateful
stack: the fig2 two-job microbenchmark (engine + osmodel + harness
callbacks), a scale replay (SWIM workload + HFSP + preemption) and a
memscale replay (VMM/swap admission + oversubscribed fabric).  Each
builds mid-flight, snapshots at a virtual time, finishes, and can be
finished again from the checkpoint; the two finishes must agree on the
TraceLog digest and every metric byte.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

from repro.checkpoint.core import Checkpoint, load, restore
from repro.errors import ConfigurationError, SnapshotError


#: per-kind defaults: the representative seed derivation and a snapshot
#: instant that lands mid-flight for the cell's size
CELL_DEFAULTS = {
    "fig2": {"at": 40.0},
    "scale": {"at": 120.0, "trackers": 5, "num_jobs": 5},
    "memscale": {"at": 40.0, "trackers": 5, "num_jobs": 5},
}


def default_seed(kind: str) -> int:
    """The representative cell's seed, matching the experiment's own
    derivation so checkpoint runs stay comparable with study cells."""
    from repro.experiments.runner import derive_seed

    if kind == "fig2":
        return 1000
    if kind == "scale":
        d = CELL_DEFAULTS["scale"]
        return derive_seed(
            9000, "scale", "baseline", d["trackers"], "suspend", 0
        )
    if kind == "memscale":
        from repro.experiments.memscale_study import RESERVE_BYTES, SWAP_BYTES

        d = CELL_DEFAULTS["memscale"]
        return derive_seed(
            12000, "memscale", d["trackers"], "suspend-gated",
            SWAP_BYTES, RESERVE_BYTES, 0,
        )
    raise ConfigurationError(
        f"unknown checkpoint cell {kind!r}; known: "
        f"{', '.join(sorted(CELL_DEFAULTS))}"
    )


def build_cell(kind: str, seed: Optional[int] = None) -> Tuple[Any, Dict]:
    """Build one representative cell, loaded but not yet driven.

    Returns ``(cluster, meta)`` where ``meta`` is the context a resume
    needs to finish the run and recompute its metrics.
    """
    seed = default_seed(kind) if seed is None else seed
    if kind == "fig2":
        from repro.experiments.harness import TwoJobHarness

        harness = TwoJobHarness("suspend", 0.5, runs=1, keep_traces=True)
        cluster = harness.build_cluster(seed)
        meta = {"kind": "fig2", "seed": seed}
        return cluster, meta
    if kind == "scale":
        from repro.experiments import scale_study

        d = CELL_DEFAULTS["scale"]
        cluster, _ = scale_study._build_run(
            "baseline", "suspend", d["trackers"], d["num_jobs"], seed,
            trace=True,
        )
        meta = {
            "kind": "scale", "scenario": "baseline",
            "primitive_name": "suspend", "trackers": d["trackers"],
            "num_jobs": d["num_jobs"], "seed": seed, "trace": True,
        }
        return cluster, meta
    if kind == "memscale":
        from repro.experiments import memscale_study

        d = CELL_DEFAULTS["memscale"]
        cluster, _ = memscale_study._build_run(
            "suspend-gated", d["trackers"], d["num_jobs"], seed, trace=True,
        )
        meta = {
            "kind": "memscale", "mode": "suspend-gated",
            "trackers": d["trackers"], "num_jobs": d["num_jobs"],
            "seed": seed, "trace": True,
        }
        return cluster, meta
    raise ConfigurationError(
        f"unknown checkpoint cell {kind!r}; known: "
        f"{', '.join(sorted(CELL_DEFAULTS))}"
    )


def finish_cell(cluster: Any, meta: Dict) -> Dict[str, Any]:
    """Drive a built (or restored) cell to completion; return metrics.

    The dict always carries ``trace_digest`` -- the replay-identity
    value the smoke job compares.
    """
    kind = meta.get("kind")
    if kind == "fig2":
        from repro.experiments.harness import measure_two_job

        cluster.run_until_jobs_complete(timeout=14_400.0)
        result = measure_two_job(cluster)
        return {
            "sojourn_th": result.sojourn_th,
            "makespan": result.makespan,
            "tl_paged_bytes": float(result.tl_paged_bytes),
            "th_paged_bytes": float(result.th_paged_bytes),
            "tl_wasted_seconds": result.tl_wasted_seconds,
            "suspend_count": float(result.suspend_count),
            "trace_digest": cluster.sim.trace_log.digest(),
        }
    if kind == "scale":
        from repro.experiments import scale_study

        return scale_study._finish_run(cluster, meta)
    if kind == "memscale":
        from repro.experiments import memscale_study

        return memscale_study._finish_run(cluster, meta)
    raise SnapshotError(
        f"checkpoint meta names no runnable cell (kind={kind!r}); "
        "only checkpoints written by `repro checkpoint` carry a "
        "continuation recipe"
    )


def checkpoint_cell(
    kind: str,
    path: str,
    at: Optional[float] = None,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one representative cell, snapshotting mid-flight to ``path``.

    Returns the *unbroken* run's metrics (including ``trace_digest``);
    the file at ``path`` can then be resumed and must reproduce them.
    """
    at = CELL_DEFAULTS.get(kind, {}).get("at", 60.0) if at is None else at
    cluster, meta = build_cell(kind, seed=seed)
    cluster.sim.snapshot_at(at, path, root=cluster, meta=meta)
    metrics = finish_cell(cluster, meta)
    if not os.path.exists(path):
        raise SnapshotError(
            f"snapshot instant t={at:g} is past the end of the run "
            f"(finished at t={cluster.sim.now:.1f}); pass an earlier "
            "--at"
        )
    return metrics


def resume_cell(path: str) -> Dict[str, Any]:
    """Restore a checkpoint file and finish the run it froze."""
    checkpoint: Checkpoint = load(path)
    cluster = restore(checkpoint)
    return finish_cell(cluster, dict(checkpoint.meta))
