"""Metrics, statistics and reporting.

The paper's two performance metrics (Section IV-B):

* **sojourn time of th** -- "the time that elapses between the moment
  th is submitted and when it completes";
* **makespan** -- "the time that passes between the moment in which
  the first task tl is submitted and when both tasks are complete".

This package computes them, aggregates repeated runs
(:mod:`repro.metrics.stats`), renders ASCII tables and plots
(:mod:`repro.metrics.report`), and extracts Figure 1 style execution
timelines from simulation traces (:mod:`repro.metrics.timeline`).
"""

from repro.metrics.report import ascii_plot, ascii_table, series_to_csv
from repro.metrics.series import Series
from repro.metrics.stats import RunStats, summarize
from repro.metrics.timeline import TimelineSegment, extract_timeline, render_gantt
from repro.metrics.wasted import WastedWorkLedger

__all__ = [
    "Series",
    "RunStats",
    "summarize",
    "ascii_table",
    "ascii_plot",
    "series_to_csv",
    "TimelineSegment",
    "extract_timeline",
    "render_gantt",
    "WastedWorkLedger",
]
