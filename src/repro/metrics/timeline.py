"""Execution timelines (Figure 1).

Figure 1 of the paper sketches the task execution schedules of the
three primitives.  :func:`extract_timeline` rebuilds those schedules
from a simulation's trace log (attempt launches, suspensions, resumes
and completions), and :func:`render_gantt` draws them as ASCII Gantt
charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.trace import TraceLog


@dataclass
class TimelineSegment:
    """One colored bar of a Gantt row."""

    task: str
    kind: str  # "run" | "suspended"
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start


def extract_timeline(trace: TraceLog, name_of=None) -> List[TimelineSegment]:
    """Rebuild per-attempt run/suspended segments from a trace log.

    ``name_of`` optionally maps an attempt id to a display name; by
    default the attempt id itself is used.
    """
    name_of = name_of or (lambda attempt_id: attempt_id)
    open_run: Dict[str, float] = {}
    open_stop: Dict[str, float] = {}
    segments: List[TimelineSegment] = []

    def task_key(fields: dict) -> Optional[str]:
        return fields.get("attempt") or fields.get("name")

    for record in trace:
        key = task_key(record.fields)
        if key is None:
            continue
        if record.label == "attempt.launch":
            open_run[key] = record.time
        elif record.label == "os.stopped":
            if key in open_run:
                segments.append(
                    TimelineSegment(name_of(key), "run", open_run.pop(key), record.time)
                )
            open_stop[key] = record.time
        elif record.label == "os.resumed":
            if key in open_stop:
                segments.append(
                    TimelineSegment(
                        name_of(key), "suspended", open_stop.pop(key), record.time
                    )
                )
            open_run[key] = record.time
        elif record.label == "attempt.finished":
            if key in open_run:
                segments.append(
                    TimelineSegment(name_of(key), "run", open_run.pop(key), record.time)
                )
            elif key in open_stop:
                segments.append(
                    TimelineSegment(
                        name_of(key), "suspended", open_stop.pop(key), record.time
                    )
                )
    return segments


def render_gantt(
    segments: List[TimelineSegment],
    width: int = 72,
    t_end: Optional[float] = None,
) -> str:
    """ASCII Gantt chart: '=' while running, '.' while suspended.

    Rows are grouped by task name in first-appearance order -- the
    same visual as the paper's Figure 1.
    """
    if not segments:
        return "(empty timeline)"
    t_stop = t_end if t_end is not None else max(s.end for s in segments)
    t_stop = max(t_stop, 1e-9)
    order: List[str] = []
    for segment in segments:
        if segment.task not in order:
            order.append(segment.task)
    name_width = max(len(name) for name in order)
    lines = []
    for name in order:
        row = [" "] * width
        for segment in segments:
            if segment.task != name:
                continue
            c0 = int(segment.start / t_stop * (width - 1))
            c1 = max(c0, int(segment.end / t_stop * (width - 1)))
            glyph = "=" if segment.kind == "run" else "."
            for col in range(c0, c1 + 1):
                row[col] = glyph
        lines.append(f"{name:>{name_width}} |{''.join(row)}|")
    scale = f"{'':>{name_width}}  0{'':>{width - 10}}{t_stop:8.1f}s"
    lines.append(scale)
    lines.append(f"{'':>{name_width}}  legend: '=' running, '.' suspended")
    return "\n".join(lines)
