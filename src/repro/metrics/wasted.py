"""Wasted-work accounting.

Preemption, failures and speculation all discard partially (or fully)
completed work; comparing how much each preemption primitive wastes
under faults is the headline metric of the fault studies (ATLAS and
the OSG preemption study both frame scheduler quality in terms of
recovered vs wasted work).  The :class:`WastedWorkLedger` aggregates
discarded task-seconds by cause so reports can show *why* work was
lost, not just how much.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: canonical cause labels used by the Hadoop layer
PREEMPTION_KILL = "preemption-kill"
TASK_FAILURE = "task-failure"
#: the OOM killer reaped the attempt's JVM (RAM + swap exhausted --
#: the loss mode suspend admission control exists to prevent)
OOM_KILL = "oom-kill"
TRACKER_LOST = "tracker-lost"
LOST_MAP_OUTPUT = "lost-map-output"
SPECULATION_LOSER = "speculation-loser"
JOB_TEARDOWN = "job-teardown"


class WastedWorkLedger:
    """Task-seconds (and network bytes) of discarded work, by cause.

    The network column exists because the preemption primitives differ
    on it the same way they differ on compute: a killed reducer throws
    away every shuffle byte it already moved across the (contended)
    fabric, while a suspended one keeps them -- the headline comparison
    of the ``shuffle`` experiment.
    """

    def __init__(self) -> None:
        self._by_cause: Dict[str, float] = {}
        self._entries: List[Tuple[str, str, float]] = []
        self._bytes_by_cause: Dict[str, int] = {}
        self._byte_entries: List[Tuple[str, str, int]] = []

    def add(self, cause: str, seconds: float, tip_id: str = "") -> None:
        """Charge ``seconds`` of discarded work to ``cause``."""
        if seconds <= 0:
            return
        self._by_cause[cause] = self._by_cause.get(cause, 0.0) + seconds
        self._entries.append((cause, tip_id, seconds))

    def add_network_bytes(self, cause: str, nbytes: int, tip_id: str = "") -> None:
        """Charge ``nbytes`` of discarded network traffic to ``cause``."""
        if nbytes <= 0:
            return
        self._bytes_by_cause[cause] = self._bytes_by_cause.get(cause, 0) + nbytes
        self._byte_entries.append((cause, tip_id, nbytes))

    def total(self) -> float:
        """All wasted task-seconds."""
        return sum(self._by_cause.values())

    def network_bytes_total(self) -> int:
        """All wasted network bytes."""
        return sum(self._bytes_by_cause.values())

    def by_cause(self) -> Dict[str, float]:
        """Wasted task-seconds per cause label."""
        return dict(self._by_cause)

    def network_bytes_by_cause(self) -> Dict[str, int]:
        """Wasted network bytes per cause label."""
        return dict(self._bytes_by_cause)

    def entries(self) -> List[Tuple[str, str, float]]:
        """Every (cause, tip_id, seconds) charge, in order."""
        return list(self._entries)

    def network_entries(self) -> List[Tuple[str, str, int]]:
        """Every (cause, tip_id, nbytes) network charge, in order."""
        return list(self._byte_entries)

    def merge(self, other: "WastedWorkLedger") -> None:
        """Fold another ledger's charges into this one."""
        for cause, tip_id, seconds in other.entries():
            self.add(cause, seconds, tip_id)
        for cause, tip_id, nbytes in other.network_entries():
            self.add_network_bytes(cause, nbytes, tip_id)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"WastedWorkLedger(total={self.total():.1f}s, "
            f"net={self.network_bytes_total()}B)"
        )
