"""ASCII tables, ASCII plots and CSV output.

The benchmark harness prints each figure as both a table (the exact
numbers) and a rough terminal plot (the shape), and writes CSV files
next to the benchmark output so the curves can be re-plotted
elsewhere.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.metrics.series import Series

#: glyphs assigned to curves in ASCII plots, in label order
_PLOT_GLYPHS = "ox+*#@%&"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.1f}",
) -> str:
    """Render a padded, pipe-separated table."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append(" | ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def series_table(series: Series, float_format: str = "{:.1f}") -> str:
    """Table view of a :class:`~repro.metrics.series.Series`."""
    headers = [series.x_label] + series.labels()
    return ascii_table(headers, series.rows(), float_format=float_format)


def series_to_csv(series: Series) -> str:
    """CSV text of a series (header + one row per x)."""
    lines = [",".join([series.x_label] + series.labels())]
    for row in series.rows():
        lines.append(",".join(f"{v:.6g}" for v in row))
    return "\n".join(lines) + "\n"


def ascii_plot(
    series: Series,
    width: int = 68,
    height: int = 18,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """A rough terminal scatter plot of every curve in a series.

    Good enough to eyeball the figure shapes (who is above whom, where
    curves cross); exact values live in the table/CSV.
    """
    if not series.x_values or not series.curves:
        return "(empty series)"
    all_y = [y for ys in series.curves.values() for y in ys]
    lo = min(all_y) if y_min is None else y_min
    hi = max(all_y) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = min(series.x_values), max(series.x_values)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for curve_index, (label, ys) in enumerate(series.curves.items()):
        glyph = _PLOT_GLYPHS[curve_index % len(_PLOT_GLYPHS)]
        for x, y in zip(series.x_values, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((hi - y) / (hi - lo) * (height - 1))
            row = min(height - 1, max(0, row))
            grid[row][col] = glyph

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.1f} |"
        elif i == height - 1:
            label = f"{lo:8.1f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(
        "          "
        + f"{x_lo:<10.3g}"
        + f"{series.x_label:^{max(0, width - 20)}}"
        + f"{x_hi:>10.3g}"
    )
    legend = "  ".join(
        f"{_PLOT_GLYPHS[i % len(_PLOT_GLYPHS)]}={label}"
        for i, label in enumerate(series.curves)
    )
    lines.append("          legend: " + legend)
    return "\n".join(lines)
