"""Labelled (x, y) series -- the data behind each figure.

A :class:`Series` holds one curve per label over a shared x-axis,
mirroring how the paper's figures plot wait/kill/susp against "tl
progress at launch of th (%)".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass
class Series:
    """One figure's worth of curves."""

    name: str
    x_label: str
    y_label: str
    x_values: List[float] = field(default_factory=list)
    curves: Dict[str, List[float]] = field(default_factory=dict)

    def add_curve(self, label: str, y_values: Sequence[float]) -> None:
        """Attach a curve; its length must match the x-axis."""
        ys = list(y_values)
        if self.x_values and len(ys) != len(self.x_values):
            raise ConfigurationError(
                f"curve {label!r} has {len(ys)} points, x-axis has "
                f"{len(self.x_values)}"
            )
        self.curves[label] = ys

    def point(self, label: str, x: float) -> float:
        """The y value of ``label`` at the x-axis point ``x``."""
        if label not in self.curves:
            raise ConfigurationError(f"no curve {label!r} in {self.name}")
        try:
            index = self.x_values.index(x)
        except ValueError:
            raise ConfigurationError(f"x={x} not on the axis of {self.name}")
        return self.curves[label][index]

    def labels(self) -> List[str]:
        """Curve labels in insertion order."""
        return list(self.curves)

    def rows(self) -> List[List[float]]:
        """Row-major table: one row per x value, columns follow labels."""
        table = []
        for i, x in enumerate(self.x_values):
            table.append([x] + [self.curves[label][i] for label in self.curves])
        return table

    def crossover(self, label_a: str, label_b: str) -> Optional[float]:
        """First x where curve a crosses above curve b (None if never).

        Used by tests to check crossover positions, one of the
        shape-level claims the reproduction must preserve.
        """
        ya, yb = self.curves[label_a], self.curves[label_b]
        previous = None
        for x, a, b in zip(self.x_values, ya, yb):
            sign = a - b
            if previous is not None and previous < 0 <= sign:
                return x
            previous = sign
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Series({self.name!r}, curves={list(self.curves)})"
