"""Aggregate statistics over repeated experiment runs.

"All our results are obtained by averaging 20 experiment runs ... in
all data points reported, minimum and maximum values measured are
within 5% of the average values."  :func:`summarize` produces the same
view: mean, min, max, and the max relative deviation that sentence
quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RunStats:
    """Summary of one metric across runs."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def max_relative_deviation(self) -> float:
        """max(|min-mean|, |max-mean|) / mean -- the paper's 5% check."""
        spread = max(abs(self.minimum - self.mean), abs(self.maximum - self.mean))
        if self.mean == 0:
            # A zero mean with nonzero spread is an *infinite* relative
            # deviation, not a perfect one -- returning 0.0 here would
            # pass the 5% check on samples like [-1, 1].
            return 0.0 if spread == 0 else math.inf
        return spread / abs(self.mean)

    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% confidence half-width."""
        if self.count < 2:
            return 0.0
        return 1.96 * self.stdev / math.sqrt(self.count)

    def __str__(self) -> str:
        return (
            f"{self.mean:.2f} (n={self.count}, min={self.minimum:.2f}, "
            f"max={self.maximum:.2f})"
        )


def summarize(values: Sequence[float]) -> RunStats:
    """Mean/stdev/min/max of a non-empty sample."""
    data = list(values)
    if not data:
        raise ConfigurationError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        variance = sum((x - mean) ** 2 for x in data) / (n - 1)
    else:
        variance = 0.0
    return RunStats(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def relative_change(value: float, baseline: float) -> float:
    """(value - baseline) / baseline, guarding zero baselines.

    A zero baseline yields ``0.0`` for a zero value and a signed
    infinity otherwise, so the sign of the change survives the guard.
    """
    if baseline == 0:
        if value == 0:
            return 0.0
        return math.inf if value > 0 else -math.inf
    return (value - baseline) / baseline


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    data: List[float] = sorted(values)
    if not data:
        raise ConfigurationError("cannot take a percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ConfigurationError("percentile q must be within [0, 100]")
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    low = int(math.floor(pos))
    high = int(math.ceil(pos))
    if low == high:
        return data[low]
    frac = pos - low
    return data[low] * (1 - frac) + data[high] * frac
