"""A simplified Capacity scheduler.

Queues own a fraction of the cluster's slots; jobs are routed to
queues by their submitting user (falling back to a default queue).  A
queue may borrow idle capacity from others (elasticity), and borrowed
slots can be reclaimed by preempting the borrower with a pluggable
primitive -- the second scheduler family the paper names as a
beneficiary of a good preemption primitive.

Simplifications versus Hadoop's CapacityScheduler: two-level queues
only, no user limits within a queue, and reclamation is checked
periodically rather than per-heartbeat.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, NotPreemptibleError
from repro.hadoop.job import JobInProgress
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.schedulers.base import TaskScheduler


class CapacityScheduler(TaskScheduler):
    """Fixed-share queues with elastic borrowing."""

    def __init__(
        self,
        queue_capacity: Optional[Dict[str, float]] = None,
        default_queue: str = "default",
        primitive_factory=None,
        reclaim_interval: float = 10.0,
    ):
        super().__init__()
        self.queue_capacity = queue_capacity or {default_queue: 1.0}
        total = sum(self.queue_capacity.values())
        if total <= 0 or total > 1.0 + 1e-9:
            raise ConfigurationError(
                f"queue capacities must sum to (0, 1], got {total}"
            )
        self.default_queue = default_queue
        self.primitive_factory = primitive_factory
        self.primitive = None
        self.cluster = None
        self.reclaim_interval = reclaim_interval
        self.reclamations = 0

    def attach_cluster(self, cluster) -> None:
        """Enable preemptive reclamation (optional)."""
        self.cluster = cluster
        if self.primitive_factory is not None:
            self.primitive = self.primitive_factory(cluster)
            self._schedule_reclaim()

    def _schedule_reclaim(self) -> None:
        self.jobtracker.sim.schedule(
            self.reclaim_interval, self._reclaim_check, label="capacity.reclaim"
        )

    # -- queue bookkeeping -----------------------------------------------------

    def queue_of(self, job: JobInProgress) -> str:
        """Route a job to its queue (user name, if it is a queue)."""
        if job.spec.user in self.queue_capacity:
            return job.spec.user
        return self.default_queue

    def _total_map_slots(self) -> int:
        return sum(t.map_slots for t in self.jobtracker.trackers.values())

    def queue_quota(self, queue: str) -> int:
        """Slots guaranteed to ``queue``."""
        fraction = self.queue_capacity.get(queue, 0.0)
        return max(1, int(round(fraction * self._total_map_slots())))

    def _queues(self) -> Dict[str, List[JobInProgress]]:
        queues: Dict[str, List[JobInProgress]] = defaultdict(list)
        for job in self._candidate_jobs():
            queues[self.queue_of(job)].append(job)
        return queues

    def _running_count(self, jobs: List[JobInProgress]) -> int:
        return sum(
            1
            for job in jobs
            for tip in job.tips
            if tip.state in (TipState.RUNNING, TipState.MUST_SUSPEND)
        )

    # -- assignment -----------------------------------------------------------------

    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        """Serve under-quota queues first, then let queues borrow."""
        assigned: List[TaskInProgress] = []
        queues = self._queues()

        def usage_key(item):
            queue, jobs = item
            quota = self.queue_quota(queue)
            return (self._running_count(jobs) / quota, queue)

        taken = set()
        for borrowing_round in (False, True):
            progress_made = True
            while progress_made:
                progress_made = False
                for queue, jobs in sorted(queues.items(), key=usage_key):
                    if free_map_slots <= 0 and free_reduce_slots <= 0:
                        return assigned
                    quota = self.queue_quota(queue)
                    running = self._running_count(jobs) + sum(
                        1 for t in assigned if self.queue_of(t.job) == queue
                    )
                    if not borrowing_round and running >= quota:
                        continue
                    for job in sorted(jobs, key=lambda j: (j.submit_time, j.job_id)):
                        tip = next(
                            (
                                t
                                for t in job.schedulable_tips()
                                if t.tip_id not in taken
                                and (
                                    free_map_slots > 0
                                    if t.kind.value == "map"
                                    else free_reduce_slots > 0
                                )
                            ),
                            None,
                        )
                        if tip is None:
                            continue
                        taken.add(tip.tip_id)
                        if tip.kind.value == "map":
                            free_map_slots -= 1
                        else:
                            free_reduce_slots -= 1
                        assigned.append(tip)
                        progress_made = True
                        break
        return assigned

    # -- reclamation --------------------------------------------------------------------

    def _reclaim_check(self) -> None:
        self._schedule_reclaim()
        if self.primitive is None:
            return
        queues = self._queues()
        for queue, jobs in queues.items():
            quota = self.queue_quota(queue)
            running = self._running_count(jobs)
            pending = sum(self.job_pending_demand(job) for job in jobs)
            if pending == 0 or running >= quota:
                continue
            self._reclaim_for(queue, quota - running, queues)

    def _reclaim_for(
        self, queue: str, deficit: int, queues: Dict[str, List[JobInProgress]]
    ) -> None:
        from repro.preemption.eviction import (
            FurthestFromCompletionPolicy,
            collect_candidates,
        )

        over = set()
        for other, jobs in queues.items():
            if other == queue:
                continue
            if self._running_count(jobs) > self.queue_quota(other):
                over.update(job.spec.name for job in jobs)
        protected = {job.spec.name for job in queues.get(queue, [])}
        candidates = [
            c
            for c in collect_candidates(self.cluster, protect_jobs=protected)
            if c.tip.job.spec.name in over
        ]
        policy = FurthestFromCompletionPolicy()
        for victim in policy.choose(candidates, deficit):
            try:
                self.primitive.preempt(victim.tip)
                self.reclamations += 1
            except NotPreemptibleError:
                continue
