"""The paper's dummy scheduler.

    "We factor out the role of task eviction policies implemented by
    the scheduler ... by building a new scheduling component for
    Hadoop -- a dummy scheduler -- which dictates task eviction
    according to static configuration files.  This allows to specify,
    using a series of simple triggers, which jobs/tasks are run in the
    cluster and which are preempted.  In addition to executing jobs
    and preempting tasks with our suspend/resume primitives, the dummy
    scheduler also allows using the kill primitive and to wait, for
    the purpose of a comparative analysis."

Assignment is priority-then-FIFO (so the high-priority job wins any
freed slot) restricted to an optional allowlist; eviction decisions
come from :class:`~repro.schedulers.triggers.TriggerEngine` rules that
the experiment harness installs.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.hadoop.job import JobInProgress
from repro.hadoop.task import TaskInProgress
from repro.schedulers.fifo import FifoScheduler


class DummyScheduler(FifoScheduler):
    """Trigger-driven comparative-analysis scheduler."""

    def __init__(self, allowlist: Optional[Set[str]] = None):
        super().__init__()
        #: job spec names allowed to launch tasks (None = all)
        self.allowlist = allowlist
        #: job spec names currently frozen (their tips are not assigned)
        self.frozen: Set[str] = set()

    def allow(self, job_name: str) -> None:
        """Add a job to the allowlist (if one is configured)."""
        if self.allowlist is not None:
            self.allowlist.add(job_name)

    def freeze(self, job_name: str) -> None:
        """Stop assigning new tasks of ``job_name`` (tasks already
        running are unaffected -- use the preemption API for those)."""
        self.frozen.add(job_name)

    def unfreeze(self, job_name: str) -> None:
        """Allow assignment of ``job_name`` again."""
        self.frozen.discard(job_name)

    def _eligible(self, job: JobInProgress) -> bool:
        name = job.spec.name
        if name in self.frozen:
            return False
        if self.allowlist is not None and name not in self.allowlist:
            return False
        return True

    def serves_job(self, job: JobInProgress) -> bool:
        """Frozen / non-allowlisted jobs get no slots -- not even for
        speculative backups."""
        return self._eligible(job)

    def ordered_jobs(self) -> List[JobInProgress]:
        return [job for job in super().ordered_jobs() if self._eligible(job)]

    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        return super().assign_tasks(tracker, free_map_slots, free_reduce_slots)
