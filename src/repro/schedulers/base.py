"""Scheduler plug-in interface.

Mirrors Hadoop 1's ``TaskScheduler``: the JobTracker calls
:meth:`TaskScheduler.assign_tasks` while answering each heartbeat, and
notifies the scheduler of job lifecycle events.  Schedulers that
preempt (FAIR, HFSP, deadline) do so through the JobTracker's
preemption API with a configurable
:class:`~repro.preemption.base.PreemptionPrimitive`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional

from repro.hadoop.job import JobInProgress
from repro.hadoop.task import TaskInProgress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.jobtracker import JobTracker


class TaskScheduler(abc.ABC):
    """Base class for pluggable job/task schedulers."""

    def __init__(self) -> None:
        self.jobtracker: "JobTracker" = None  # bound by the JobTracker
        #: delay-scheduling knob: seconds a tip with a data preference
        #: may decline off-rack slots before accepting any slot.  0
        #: disables the behaviour (historical default).  Trades queue
        #: wait against off-rack flows on the network fabric.
        self.locality_wait_seconds = 0.0
        #: set by schedulers that attach a cluster; locality decisions
        #: need the rack map (and block locations for map inputs)
        self.topology = None
        self.namenode = None
        #: swap-aware suspend admission gate
        #: (:class:`repro.preemption.admission.SuspendAdmissionGate`);
        #: None (the default) preserves ungated suspension
        self.admission = None

    def bind(self, jobtracker: "JobTracker") -> None:
        """Attach to a JobTracker (called once at construction time)."""
        self.jobtracker = jobtracker

    # -- lifecycle notifications (default: no-op) ----------------------------

    def job_added(self, job: JobInProgress) -> None:
        """A job was submitted."""

    def job_updated(self, job: JobInProgress) -> None:
        """A task of the job changed state."""

    def job_completed(self, job: JobInProgress) -> None:
        """The job reached a terminal state."""

    def serves_job(self, job: JobInProgress) -> bool:
        """True when this scheduler currently assigns the job's tasks.

        Schedulers that fence jobs out of slots (the dummy scheduler's
        freeze/allowlist) override this; speculative execution consults
        it so backups never sneak a fenced job into a freed slot.
        """
        return True

    # -- the scheduling decision ----------------------------------------------

    @abc.abstractmethod
    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        """Pick tasks to launch on ``tracker``.

        Returns at most ``free_map_slots`` map tips plus
        ``free_reduce_slots`` reduce tips.  The JobTracker enforces the
        limits, so returning too many is safe but wasteful.
        """

    # -- helpers shared by implementations ----------------------------------------

    def preempt_with_admission(self, primitive, tip: TaskInProgress) -> str:
        """Preempt ``tip``, honouring the suspend-admission gate when
        one is configured; returns the action actually taken
        ("suspend", "kill", "wait" or the primitive's own name).

        With no gate this is exactly ``primitive.preempt(tip)`` -- the
        historical, ungated behaviour.  With a gate, suspend requests
        are admitted only while the victim node's RAM + swap headroom
        covers the Section III-A constraint; denials walk the gate's
        fallback ladder.
        """
        from repro.preemption.admission import admit_and_preempt

        return admit_and_preempt(self.admission, primitive, tip)

    def _candidate_jobs(self) -> List[JobInProgress]:
        """Running jobs in submission order."""
        return self.jobtracker.running_jobs()

    @staticmethod
    def job_pending_demand(job: JobInProgress) -> int:
        """Tasks the job wants to run but cannot yet.

        Jobs still in PREP count their whole task list: the setup task
        is queued behind the busy slots, so the demand is real even
        though no work tip is schedulable yet.  Preemption logic must
        use this (not ``schedulable_tips``) or PREP jobs starve
        silently.
        """
        from repro.hadoop.job import JobState

        if job.state is JobState.PREP:
            return len(job.tips)
        return len(job.schedulable_tips())

    def _schedulable_order(self, job: JobInProgress) -> List[TaskInProgress]:
        """The order in which a job's schedulable tips are offered to
        :meth:`_take_schedulable`.  Policy mixins override this (e.g.
        recovery-first resubmission) without copying the slot loop."""
        return job.schedulable_tips()

    def _take_schedulable(
        self,
        job: JobInProgress,
        want_map: int,
        want_reduce: int,
        tracker: Optional[str] = None,
    ) -> List[TaskInProgress]:
        """Up to the requested number of schedulable tips of each kind.

        When the locality knob is on and the offering ``tracker`` is
        known, tips whose data lives off-rack decline the slot until
        they have waited ``locality_wait_seconds`` (classic delay
        scheduling, applied to shuffle sources and HDFS replicas).
        """
        chosen: List[TaskInProgress] = []
        delay = self.locality_wait_seconds
        check_locality = delay > 0 and tracker is not None and self.topology is not None
        # Per-offer memo: every reduce tip of the job shares one
        # map-output host list, and a map's replica set is constant, so
        # resolve each at most once per call instead of per tip.
        memo: dict = {}
        for tip in self._schedulable_order(job):
            if tip.kind.value == "map":
                if want_map <= 0:
                    continue
            else:
                if want_reduce <= 0:
                    continue
            if check_locality and self._decline_for_locality(
                tip, tracker, delay, memo
            ):
                continue
            if tip.kind.value == "map":
                want_map -= 1
            else:
                want_reduce -= 1
            chosen.append(tip)
        return chosen

    # -- delay scheduling (locality knob) --------------------------------------

    def _decline_for_locality(
        self,
        tip: TaskInProgress,
        tracker: str,
        delay: float,
        memo: dict = None,
    ) -> bool:
        """True when ``tip`` should skip this off-rack offer and keep
        waiting for a closer slot."""
        from repro.hdfs.topology import Locality

        if memo is None:
            preferred = self._preferred_hosts(tip)
        else:
            key = (
                ("reduce", tip.job.job_id)
                if tip.spec.kind.value == "reduce"
                else ("map", tip.spec.input_path)
            )
            if key not in memo:
                memo[key] = self._preferred_hosts(tip)
            preferred = memo[key]
        if not preferred:
            return False
        if self.topology.locality(tracker, preferred) <= Locality.RACK_LOCAL:
            tip.locality_skipped_at = None
            return False
        now = self.jobtracker.sim.now
        if tip.locality_skipped_at is None:
            tip.locality_skipped_at = now
            return True
        return now - tip.locality_skipped_at < delay

    def _preferred_hosts(self, tip: TaskInProgress) -> List[str]:
        """Hosts near this tip's data: map-input replicas for maps,
        the job's map-output hosts for reduces.  Empty = no preference
        (the tip accepts any slot immediately)."""
        spec = tip.spec
        if spec.kind.value == "reduce":
            if spec.shuffle_bytes <= 0:
                return []
            from repro.hadoop.task import TipRole

            return [
                m.tracker
                for m in tip.job.tips
                if m.role is TipRole.MAP and m.tracker is not None
            ]
        if spec.input_path and self.namenode is not None:
            hosts: List[str] = []
            for location in self.namenode.block_locations(spec.input_path):
                for host in location.hosts:
                    if host not in hosts:
                        hosts.append(host)
            return hosts
        return []
