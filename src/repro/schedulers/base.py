"""Scheduler plug-in interface.

Mirrors Hadoop 1's ``TaskScheduler``: the JobTracker calls
:meth:`TaskScheduler.assign_tasks` while answering each heartbeat, and
notifies the scheduler of job lifecycle events.  Schedulers that
preempt (FAIR, HFSP, deadline) do so through the JobTracker's
preemption API with a configurable
:class:`~repro.preemption.base.PreemptionPrimitive`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List

from repro.hadoop.job import JobInProgress
from repro.hadoop.task import TaskInProgress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.jobtracker import JobTracker


class TaskScheduler(abc.ABC):
    """Base class for pluggable job/task schedulers."""

    def __init__(self) -> None:
        self.jobtracker: "JobTracker" = None  # bound by the JobTracker

    def bind(self, jobtracker: "JobTracker") -> None:
        """Attach to a JobTracker (called once at construction time)."""
        self.jobtracker = jobtracker

    # -- lifecycle notifications (default: no-op) ----------------------------

    def job_added(self, job: JobInProgress) -> None:
        """A job was submitted."""

    def job_updated(self, job: JobInProgress) -> None:
        """A task of the job changed state."""

    def job_completed(self, job: JobInProgress) -> None:
        """The job reached a terminal state."""

    def serves_job(self, job: JobInProgress) -> bool:
        """True when this scheduler currently assigns the job's tasks.

        Schedulers that fence jobs out of slots (the dummy scheduler's
        freeze/allowlist) override this; speculative execution consults
        it so backups never sneak a fenced job into a freed slot.
        """
        return True

    # -- the scheduling decision ----------------------------------------------

    @abc.abstractmethod
    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        """Pick tasks to launch on ``tracker``.

        Returns at most ``free_map_slots`` map tips plus
        ``free_reduce_slots`` reduce tips.  The JobTracker enforces the
        limits, so returning too many is safe but wasteful.
        """

    # -- helpers shared by implementations ----------------------------------------

    def _candidate_jobs(self) -> List[JobInProgress]:
        """Running jobs in submission order."""
        return self.jobtracker.running_jobs()

    @staticmethod
    def job_pending_demand(job: JobInProgress) -> int:
        """Tasks the job wants to run but cannot yet.

        Jobs still in PREP count their whole task list: the setup task
        is queued behind the busy slots, so the demand is real even
        though no work tip is schedulable yet.  Preemption logic must
        use this (not ``schedulable_tips``) or PREP jobs starve
        silently.
        """
        from repro.hadoop.job import JobState

        if job.state is JobState.PREP:
            return len(job.tips)
        return len(job.schedulable_tips())

    def _schedulable_order(self, job: JobInProgress) -> List[TaskInProgress]:
        """The order in which a job's schedulable tips are offered to
        :meth:`_take_schedulable`.  Policy mixins override this (e.g.
        recovery-first resubmission) without copying the slot loop."""
        return job.schedulable_tips()

    def _take_schedulable(
        self, job: JobInProgress, want_map: int, want_reduce: int
    ) -> List[TaskInProgress]:
        """Up to the requested number of schedulable tips of each kind."""
        chosen: List[TaskInProgress] = []
        for tip in self._schedulable_order(job):
            if tip.kind.value == "map":
                if want_map <= 0:
                    continue
                want_map -= 1
            else:
                if want_reduce <= 0:
                    continue
                want_reduce -= 1
            chosen.append(tip)
        return chosen
