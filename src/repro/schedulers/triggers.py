"""Trigger rules for the dummy scheduler.

The paper's dummy scheduler is configured with "a series of simple
triggers, which jobs/tasks are run in the cluster and which are
preempted".  A :class:`ProgressTrigger` fires when a watched job's
task reaches a progress threshold; its actions submit jobs and/or
preempt tasks with a chosen primitive.  A
:class:`~repro.schedulers.triggers.TriggerEngine` arms the triggers
against live attempts with *exact* progress crossings (via the work
engine's milestone support), mirroring how the paper parametrises the
arrival of ``th`` on "tl progress at launch of th (%)".
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.cluster import HadoopCluster
    from repro.workloads.jobspec import JobSpec


class TriggerAction(enum.Enum):
    """What to do when a trigger fires."""

    SUBMIT_JOB = "submit_job"
    SUSPEND_TASKS = "suspend_tasks"
    KILL_TASKS = "kill_tasks"
    RESUME_TASKS = "resume_tasks"
    CALL = "call"


@dataclass
class TriggerRule:
    """One action taken when the trigger fires."""

    action: TriggerAction
    target_job: Optional[str] = None
    job_spec: Optional["JobSpec"] = None
    callback: Optional[Callable[[], None]] = None

    def validate(self) -> None:
        """Raise on inconsistent rules."""
        if self.action is TriggerAction.SUBMIT_JOB and self.job_spec is None:
            raise ConfigurationError("SUBMIT_JOB rule needs a job_spec")
        if (
            self.action
            in (
                TriggerAction.SUSPEND_TASKS,
                TriggerAction.KILL_TASKS,
                TriggerAction.RESUME_TASKS,
            )
            and self.target_job is None
        ):
            raise ConfigurationError(f"{self.action.value} rule needs a target_job")
        if self.action is TriggerAction.CALL and self.callback is None:
            raise ConfigurationError("CALL rule needs a callback")


@dataclass
class ProgressTrigger:
    """Fire ``rules`` when ``watch_job``'s first task crosses
    ``at_progress`` (a fraction in [0, 1])."""

    watch_job: str
    at_progress: float
    rules: List[TriggerRule] = field(default_factory=list)
    fired: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_progress <= 1.0:
            raise ConfigurationError("at_progress must be within [0, 1]")
        for rule in self.rules:
            rule.validate()


class CompletionTrigger:
    """Fire ``rules`` when ``watch_job`` completes."""

    def __init__(self, watch_job: str, rules: List[TriggerRule]):
        self.watch_job = watch_job
        self.rules = list(rules)
        self.fired = False
        for rule in self.rules:
            rule.validate()


class TriggerEngine:
    """Arms triggers against a cluster and executes their rules."""

    def __init__(self, cluster: "HadoopCluster"):
        self.cluster = cluster
        self.progress_triggers: List[ProgressTrigger] = []
        self.completion_triggers: List[CompletionTrigger] = []
        self._armed: Dict[int, bool] = {}
        cluster.on_attempt_launched(self._attempt_launched)
        cluster.jobtracker.on_job_complete(self._job_completed)

    # -- configuration ---------------------------------------------------------

    def add_progress_trigger(self, trigger: ProgressTrigger) -> None:
        """Register a progress trigger (before or after job submission)."""
        self.progress_triggers.append(trigger)
        # Arm immediately if the watched job already has a live attempt.
        attempt = self.cluster.find_live_attempt(trigger.watch_job)
        if attempt is not None:
            self._arm(trigger, attempt)

    def add_completion_trigger(self, trigger: CompletionTrigger) -> None:
        """Register a completion trigger."""
        self.completion_triggers.append(trigger)

    # -- wiring -------------------------------------------------------------------

    def _attempt_launched(self, attempt) -> None:
        for trigger in self.progress_triggers:
            if trigger.fired or id(trigger) in self._armed:
                continue
            job = self.cluster.jobtracker.jobs.get(attempt.job_id)
            if job is not None and job.spec.name == trigger.watch_job:
                if attempt.role.value != "task":
                    continue  # ignore setup/cleanup attempts
                self._arm(trigger, attempt)

    def _arm(self, trigger: ProgressTrigger, attempt) -> None:
        self._armed[id(trigger)] = True
        attempt.jvm.engine.when_progress(
            trigger.at_progress, functools.partial(self._fire_progress, trigger)
        )

    def _fire_progress(self, trigger: ProgressTrigger) -> None:
        if trigger.fired:
            return
        trigger.fired = True
        self.cluster.trace(
            "trigger.fired", watch=trigger.watch_job, at=trigger.at_progress
        )
        for rule in trigger.rules:
            self._execute(rule)

    def _job_completed(self, job) -> None:
        for trigger in self.completion_triggers:
            if trigger.fired or job.spec.name != trigger.watch_job:
                continue
            trigger.fired = True
            self.cluster.trace("trigger.completed", watch=trigger.watch_job)
            for rule in trigger.rules:
                self._execute(rule)

    # -- rule execution ---------------------------------------------------------------

    def _execute(self, rule: TriggerRule) -> None:
        jt = self.cluster.jobtracker
        if rule.action is TriggerAction.SUBMIT_JOB:
            jt.submit_job(rule.job_spec)
        elif rule.action is TriggerAction.SUSPEND_TASKS:
            for tip in jt.job_by_name(rule.target_job).running_tips():
                if tip.state.value == "RUNNING":
                    jt.suspend_task(tip.tip_id)
        elif rule.action is TriggerAction.KILL_TASKS:
            for tip in jt.job_by_name(rule.target_job).running_tips():
                if not tip.state.terminal:
                    jt.kill_task(tip.tip_id)
        elif rule.action is TriggerAction.RESUME_TASKS:
            for tip in jt.job_by_name(rule.target_job).running_tips():
                if tip.state.value == "SUSPENDED":
                    jt.resume_task(tip.tip_id)
        elif rule.action is TriggerAction.CALL:
            rule.callback()
