"""A simplified FAIR scheduler with preemption hooks.

"Job schedulers, like the Hadoop FAIR and Capacity schedulers, can use
preemption to warrant fairness: if a job starves due to long-running
tasks of another job, these latter may be preempted."

Jobs are grouped into pools by their submitting user; each pool with
demand receives an equal share of the cluster's map slots.  A pool
that stays below its share for longer than ``preemption_timeout``
while it has pending tasks triggers preemption of tasks from
over-share pools, using a pluggable
:class:`~repro.preemption.base.PreemptionPrimitive` and
:class:`~repro.preemption.eviction.EvictionPolicy` -- so the paper's
suspend/resume primitive slots straight into fair-share enforcement.

Simplifications versus Hadoop's FairScheduler: no per-pool weights or
minimum shares, no hierarchical pools, and suspended victims are
restored on the periodic check rather than via a dedicated event per
slot release.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.errors import NotPreemptibleError
from repro.hadoop.job import JobInProgress
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.schedulers.base import TaskScheduler


class FairScheduler(TaskScheduler):
    """Equal-share pools with preemption."""

    def __init__(
        self,
        primitive_factory=None,
        eviction_policy=None,
        preemption_timeout: float = 20.0,
        check_interval: float = 5.0,
    ):
        super().__init__()
        #: callable(cluster) -> PreemptionPrimitive; bound lazily so the
        #: scheduler can be constructed before the cluster exists
        self.primitive_factory = primitive_factory
        self.eviction_policy = eviction_policy
        self.preemption_timeout = preemption_timeout
        self.check_interval = check_interval
        self.primitive = None
        self.cluster = None
        #: pool -> earliest time it has been continuously starved
        self._starved_since: Dict[str, Optional[float]] = {}
        self._suspended_by_us: List[TaskInProgress] = []
        self.preemptions = 0

    # -- wiring -------------------------------------------------------------

    def attach_cluster(self, cluster) -> None:
        """Late-bind the cluster (called by experiment harnesses) to
        enable preemption; without it the scheduler still shares
        fairly but never preempts."""
        self.cluster = cluster
        if self.primitive_factory is not None:
            self.primitive = self.primitive_factory(cluster)
        if self.eviction_policy is None:
            from repro.preemption.eviction import ClosestToCompletionPolicy

            self.eviction_policy = ClosestToCompletionPolicy()
        self._schedule_check()

    def _schedule_check(self) -> None:
        self.jobtracker.sim.schedule(
            self.check_interval, self._periodic_check, label="fair.check"
        )

    # -- pools ------------------------------------------------------------------

    def _pools(self) -> Dict[str, List[JobInProgress]]:
        pools: Dict[str, List[JobInProgress]] = defaultdict(list)
        for job in self._candidate_jobs():
            pools[job.spec.user].append(job)
        return pools

    def _total_map_slots(self) -> int:
        return sum(t.map_slots for t in self.jobtracker.trackers.values())

    def _running_count(self, jobs: List[JobInProgress]) -> int:
        return sum(
            1
            for job in jobs
            for tip in job.tips
            if tip.state in (TipState.RUNNING, TipState.MUST_SUSPEND)
        )

    def _pending_count(self, jobs: List[JobInProgress]) -> int:
        return sum(self.job_pending_demand(job) for job in jobs)

    def fair_share(self) -> int:
        """Slots per pool-with-demand (at least 1)."""
        pools = [
            pool
            for pool, jobs in self._pools().items()
            if self._pending_count(jobs) + self._running_count(jobs) > 0
        ]
        if not pools:
            return self._total_map_slots()
        return max(1, self._total_map_slots() // len(pools))

    # -- assignment ----------------------------------------------------------------

    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        """Round-robin over pools ordered by deficit (running/share)."""
        assigned: List[TaskInProgress] = []
        share = self.fair_share()
        pools = self._pools()
        # Most-starved pool first.
        ordered = sorted(
            pools.items(),
            key=lambda kv: (self._running_count(kv[1]) / max(1, share), kv[0]),
        )
        taken = set()
        progress_made = True
        while (free_map_slots > 0 or free_reduce_slots > 0) and progress_made:
            progress_made = False
            for _pool, jobs in ordered:
                jobs_sorted = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
                for job in jobs_sorted:
                    tip = next(
                        (
                            t
                            for t in job.schedulable_tips()
                            if t.tip_id not in taken
                            and (
                                free_map_slots > 0
                                if t.kind.value == "map"
                                else free_reduce_slots > 0
                            )
                        ),
                        None,
                    )
                    if tip is None:
                        continue
                    taken.add(tip.tip_id)
                    if tip.kind.value == "map":
                        free_map_slots -= 1
                    else:
                        free_reduce_slots -= 1
                    assigned.append(tip)
                    progress_made = True
                    break
                if free_map_slots <= 0 and free_reduce_slots <= 0:
                    break
        return assigned

    # -- preemption loop ----------------------------------------------------------------

    def _periodic_check(self) -> None:
        self._schedule_check()
        if self.primitive is None:
            return
        self._maybe_restore()
        share = self.fair_share()
        now = self.jobtracker.sim.now
        pools = self._pools()
        for pool, jobs in pools.items():
            running = self._running_count(jobs)
            pending = self._pending_count(jobs)
            if pending == 0 or running >= share:
                self._starved_since[pool] = None
                continue
            since = self._starved_since.get(pool)
            if since is None:
                self._starved_since[pool] = now
                continue
            if now - since < self.preemption_timeout:
                continue
            deficit = min(share - running, pending)
            self._preempt_for(pool, deficit, share, pools)
            self._starved_since[pool] = now  # rate-limit

    def _preempt_for(
        self,
        starved_pool: str,
        deficit: int,
        share: int,
        pools: Dict[str, List[JobInProgress]],
    ) -> None:
        from repro.preemption.eviction import collect_candidates

        protected = {
            job.spec.name for job in pools.get(starved_pool, [])
        }
        # Only pools above their share may lose tasks.
        over_share_jobs = set()
        for pool, jobs in pools.items():
            if pool == starved_pool:
                continue
            if self._running_count(jobs) > share:
                over_share_jobs.update(job.spec.name for job in jobs)
        candidates = [
            c
            for c in collect_candidates(self.cluster, protect_jobs=protected)
            if self.cluster.jobtracker.jobs[c.tip.job.job_id].spec.name
            in over_share_jobs
        ]
        for victim in self.eviction_policy.choose(candidates, deficit):
            try:
                self.primitive.preempt(victim.tip)
                self.preemptions += 1
                if victim.tip.state is TipState.MUST_SUSPEND:
                    self._suspended_by_us.append(victim.tip)
            except NotPreemptibleError:
                continue

    def _maybe_restore(self) -> None:
        """Resume tasks we suspended once their pool is under-subscribed
        and their tracker has room."""
        share = self.fair_share()
        still_waiting: List[TaskInProgress] = []
        for tip in self._suspended_by_us:
            if tip.state is not TipState.SUSPENDED:
                continue
            pool_jobs = self._pools().get(tip.job.spec.user, [])
            if self._running_count(pool_jobs) >= share:
                still_waiting.append(tip)
                continue
            tracker = self.jobtracker.trackers.get(tip.tracker or "")
            if tracker is None:
                continue
            self.primitive.restore(tip)
        self._suspended_by_us = still_waiting
