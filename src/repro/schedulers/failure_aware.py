"""Failure-aware scheduling (ATLAS-style).

ATLAS ("An Adaptive Failure-aware Scheduler for Hadoop") observes that
a large fraction of production task failures recur on the same nodes,
and that schedulers which account for failure history waste less work.
The :class:`FailureAwareMixin` retrofits that behaviour onto any
:class:`~repro.schedulers.base.TaskScheduler`:

* **blacklist avoidance** -- trackers the JobTracker has blacklisted
  get no assignments at all (the JobTracker enforces this too; doing
  it here keeps the scheduler's own bookkeeping honest);
* **per-task tracker memory** -- a task is never re-assigned to a
  host where one of its attempts already failed (Hadoop's per-TIP
  blacklist);
* **recovery first** -- previously-failed tasks and re-executions of
  lost map output are resubmitted ahead of fresh work, shrinking the
  window in which a job is vulnerable to losing the same work twice.
"""

from __future__ import annotations

from typing import List

from repro.hadoop.job import JobInProgress
from repro.hadoop.task import TaskInProgress
from repro.schedulers.fifo import FifoScheduler


class FailureAwareMixin:
    """Mixin adding failure-history awareness to a scheduler.

    Compose it *before* the concrete scheduler class so its
    ``assign_tasks`` wrapper runs first::

        class FailureAwareFifoScheduler(FailureAwareMixin, FifoScheduler):
            pass
    """

    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        if self._tracker_blacklisted(tracker):
            return []
        chosen = super().assign_tasks(tracker, free_map_slots, free_reduce_slots)
        # Tips filtered here are not replaced; the slot is simply
        # re-offered at the next heartbeat, when another task (or
        # another tracker) can take it.
        return [t for t in chosen if self._host_allowed(t, tracker)]

    def _schedulable_order(self, job: JobInProgress) -> List[TaskInProgress]:
        """Selection override: resubmitted failed/lost work is offered
        *before* fresh tips, so recovery really wins the contested
        slots (sorting after selection would be a no-op)."""
        return sorted(job.schedulable_tips(), key=self._recovery_rank)

    # -- policy helpers -------------------------------------------------------

    def _tracker_blacklisted(self, tracker: str) -> bool:
        jobtracker = getattr(self, "jobtracker", None)
        return jobtracker is not None and tracker in jobtracker.blacklisted

    def _host_allowed(self, tip: TaskInProgress, tracker: str) -> bool:
        """Avoid hosts where this task already failed -- unless it has
        failed everywhere, in which case any host beats starving the
        job (Hadoop relaxes its per-TIP blacklist the same way)."""
        if tracker not in tip.failed_on:
            return True
        jobtracker = getattr(self, "jobtracker", None)
        if jobtracker is None:
            return False
        return set(jobtracker.trackers) <= tip.failed_on

    @staticmethod
    def _recovery_rank(tip: TaskInProgress):
        """Sort key: resubmitted failed/lost work first, stable otherwise."""
        is_recovery = tip.failed_attempt_count > 0 or tip.output_lost_count > 0
        return (0 if is_recovery else 1, tip.tip_id)


class FailureAwareFifoScheduler(FailureAwareMixin, FifoScheduler):
    """Priority-then-FIFO assignment with failure-history awareness."""
