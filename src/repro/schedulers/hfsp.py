"""HFSP: size-based scheduling (the authors' companion system).

"Size-based schedulers in general attribute priorities to jobs
according to a virtual or real size, and preemption can guarantee that
higher-priority jobs are allowed to run earlier. ... We have
preliminary results showing that our preemption primitive performs
well in the context of HFSP, our size-based scheduler for Hadoop."

This is a compact HFSP (Pastorelli et al., IEEE Big Data 2013): jobs
are ordered by *remaining size* (shortest first, SRPT-style); when a
strictly smaller job arrives and no slot is free, tasks of the largest
running job are preempted with the configured primitive and restored
when capacity returns.

Simplifications: job sizes come from the specs' serial-runtime
estimates instead of HFSP's online training phase, and the virtual
aging of the real HFSP is omitted (sizes here are exact, so aging adds
nothing).
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.errors import NotPreemptibleError
from repro.hadoop.heartbeat import HeartbeatBatch
from repro.hadoop.job import JobInProgress
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.schedulers.base import TaskScheduler


class HfspScheduler(TaskScheduler):
    """Shortest-remaining-size-first with preemption."""

    #: the JobTracker passes its :class:`HeartbeatBatch` context to
    #: :meth:`assign_tasks` so the SRPT sort is amortized over every
    #: same-instant heartbeat of the batch
    supports_batch = True

    def __init__(
        self,
        primitive_factory=None,
        preempt_on_arrival: bool = True,
        locality_wait_seconds: float = 0.0,
        admission_config=None,
        eviction_policy=None,
    ):
        super().__init__()
        self.primitive_factory = primitive_factory
        self.primitive = None
        self.cluster = None
        self.preempt_on_arrival = preempt_on_arrival
        self.preemptions = 0
        self.locality_wait_seconds = locality_wait_seconds
        #: :class:`repro.preemption.admission.AdmissionConfig` enabling
        #: the swap-aware suspend gate; None keeps ungated suspension
        self.admission_config = admission_config
        #: optional :class:`repro.preemption.eviction.EvictionPolicy`
        #: re-ranking victims; None keeps the historical
        #: largest-job-first order
        self.eviction_policy = eviction_policy
        self._suspended: List[TaskInProgress] = []

    def attach_cluster(self, cluster) -> None:
        """Enable preemption (optional; without it HFSP degrades to
        non-preemptive shortest-job-first), the locality knob (which
        needs the rack map), and the suspend-admission gate."""
        self.cluster = cluster
        self.topology = cluster.topology
        self.namenode = cluster.namenode
        if self.primitive_factory is not None:
            self.primitive = self.primitive_factory(cluster)
        if self.admission_config is not None:
            from repro.preemption.admission import SuspendAdmissionGate

            self.admission = SuspendAdmissionGate(cluster, self.admission_config)

    # -- size bookkeeping -------------------------------------------------------

    @staticmethod
    def remaining_size(job: JobInProgress) -> float:
        """Serial seconds of work left in the job.

        Served from the job's progress-invalidated cache: the
        per-heartbeat SRPT sort reads this for every live job, and most
        jobs saw no progress report since the last heartbeat.
        """
        return job.remaining_work_seconds()

    def ordered_jobs(self) -> List[JobInProgress]:
        """Smallest remaining size first."""
        return sorted(
            self._candidate_jobs(),
            key=lambda job: (self.remaining_size(job), job.submit_time, job.job_id),
        )

    # -- assignment ------------------------------------------------------------------

    def assign_tasks(
        self,
        tracker: str,
        free_map_slots: int,
        free_reduce_slots: int,
        batch: Optional[HeartbeatBatch] = None,
    ) -> List[TaskInProgress]:
        suspended_here = self._suspended_on(tracker)
        if free_map_slots <= 0 and free_reduce_slots <= 0:
            # Saturated tracker: the job loop below would break on its
            # first iteration (restores need a free slot too), so skip
            # the SRPT sort entirely -- on a loaded cluster this is the
            # common case for every heartbeat.
            return []
        if batch is not None:
            # Batched path: one SRPT sort per batch, repaired from the
            # jobs' size/sched notes, so each walk visits only the jobs
            # with schedulable tips (merged with this tracker's
            # suspended jobs) instead of re-filtering and re-sorting
            # the whole live-job set per heartbeat.
            candidates = self._batch_candidates(batch, suspended_here)
        else:
            # Only jobs that can absorb this tracker's slots matter: a
            # job with neither schedulable tips nor suspended tips here
            # is a no-op in the loop, so leaving it out of the SRPT sort
            # changes nothing -- and on steady-state replays the
            # overwhelming majority of live jobs are fully launched and
            # drop out here.
            candidates = [
                job
                for job in self._candidate_jobs()
                if job.job_id in suspended_here or job.schedulable_tips()
            ]
            candidates.sort(
                key=lambda job: (self.remaining_size(job), job.submit_time, job.job_id)
            )
        assigned: List[TaskInProgress] = []
        for job in candidates:
            if free_map_slots <= 0 and free_reduce_slots <= 0:
                break
            # A job first gets its own suspended tips back (resume is
            # cheaper than a fresh launch), then new attempts.  Doing
            # this inside the SRPT loop keeps the size order honest: a
            # bigger job's suspended tip never steals the slot a
            # smaller job's work is queued for.  Riding the host's own
            # heartbeat (suspended images are host-bound) also
            # guarantees survivors resume even when no further
            # job-completion event ever fires.
            for tip in suspended_here.get(job.job_id, ()):
                is_map = tip.kind.value == "map"
                free = free_map_slots if is_map else free_reduce_slots
                if free <= 0 or tip.state is not TipState.SUSPENDED:
                    continue
                try:
                    self.primitive.restore(tip)
                except NotPreemptibleError:  # pragma: no cover - defensive
                    continue
                self._suspended.remove(tip)
                if is_map:
                    free_map_slots -= 1
                else:
                    free_reduce_slots -= 1
            chosen = self._take_schedulable(
                job, free_map_slots, free_reduce_slots, tracker=tracker
            )
            for tip in chosen:
                if tip.kind.value == "map":
                    free_map_slots -= 1
                else:
                    free_reduce_slots -= 1
            assigned.extend(chosen)
        return assigned

    def _batch_candidates(
        self, batch: HeartbeatBatch, suspended_here: dict
    ) -> List[JobInProgress]:
        """The batch's candidate walk order, built once then repaired.

        The first walk of a batch keys every live job by
        ``(remaining_size, submit_time, job_id)`` -- a strict total
        order (job ids are unique) -- and stores the sorted key/job
        lists of just the jobs with schedulable tips.  Later walks
        reposition jobs whose size notes fired and add/remove jobs
        whose sched notes fired, two bisects each, so N same-instant
        heartbeats pay one sort plus O(changes log J) instead of N
        filter-scans and N sorts.  The result matches the historical
        filter-then-sort exactly: same job set (candidacy verdicts are
        repaired from the same transitions the historical filter
        reads), same strict key order.
        """
        if batch.key_of is None:
            key_of = {}
            pairs = []
            for job in batch.jobs:
                key = (self.remaining_size(job), job.submit_time, job.job_id)
                key_of[job.job_id] = key
                if job.schedulable_tips():
                    pairs.append((key, job))
            pairs.sort(key=lambda pair: pair[0])
            batch.key_of = key_of
            batch.cand_keys = [key for key, _ in pairs]
            batch.cand_jobs = [job for _, job in pairs]
            batch.cand_ids = {job.job_id for _, job in pairs}
            # Keys and verdicts were just computed live; pending dirt
            # is already reflected.
            batch.size_dirty.clear()
            batch.sched_dirty.clear()
        else:
            keys, jobs = batch.cand_keys, batch.cand_jobs
            if batch.size_dirty:
                for job_id, job in batch.size_dirty.items():
                    old_key = batch.key_of.get(job_id)
                    if old_key is None:
                        continue  # defensive: job unknown to this batch
                    new_key = (
                        self.remaining_size(job), job.submit_time, job.job_id
                    )
                    if new_key == old_key:
                        continue
                    batch.key_of[job_id] = new_key
                    if job_id in batch.cand_ids:
                        at = bisect.bisect_left(keys, old_key)
                        del keys[at]
                        del jobs[at]
                        at = bisect.bisect_left(keys, new_key)
                        keys.insert(at, new_key)
                        jobs.insert(at, job)
                batch.size_dirty.clear()
            if batch.sched_dirty:
                for job_id, job in batch.sched_dirty.items():
                    key = batch.key_of.get(job_id)
                    if key is None:
                        continue
                    want = bool(job.schedulable_tips())
                    have = job_id in batch.cand_ids
                    if want and not have:
                        at = bisect.bisect_left(keys, key)
                        keys.insert(at, key)
                        jobs.insert(at, job)
                        batch.cand_ids.add(job_id)
                    elif not want and have:
                        at = bisect.bisect_left(keys, key)
                        del keys[at]
                        del jobs[at]
                        batch.cand_ids.discard(job_id)
                batch.sched_dirty.clear()
        if not suspended_here:
            return batch.cand_jobs
        # This tracker's suspended jobs walk too, even with nothing
        # schedulable (their tips restore first); merge the few of them
        # not already candidates into the key order.
        extras = []
        for job_id, tips in suspended_here.items():
            if job_id in batch.cand_ids:
                continue
            key = batch.key_of.get(job_id)
            if key is None:
                continue  # not a running job: the historical filter
                # (running_jobs-based) excludes it too
            extras.append((key, tips[0].job))
        if not extras:
            return batch.cand_jobs
        extras.sort(key=lambda pair: pair[0])
        merged: List[JobInProgress] = []
        keys = batch.cand_keys
        jobs = batch.cand_jobs
        i = j = 0
        while i < len(jobs) and j < len(extras):
            if keys[i] < extras[j][0]:
                merged.append(jobs[i])
                i += 1
            else:
                merged.append(extras[j][1])
                j += 1
        merged.extend(jobs[i:])
        merged.extend(pair[1] for pair in extras[j:])
        return merged

    def _suspended_on(self, tracker: str) -> dict:
        """Still-suspended tips bound to ``tracker``, grouped by job.

        Stale entries (tips that resumed, finished or died elsewhere)
        are pruned here so the watch list cannot grow without bound;
        tips whose stop directive is still in flight (MUST_SUSPEND)
        stay tracked but are not offered slots yet.
        """
        if self.primitive is None or not self._suspended:
            return {}
        live = [
            t
            for t in self._suspended
            if t.state in (TipState.SUSPENDED, TipState.MUST_SUSPEND)
        ]
        self._suspended = live
        by_job: dict = {}
        for tip in live:
            if tip.state is TipState.SUSPENDED and tip.tracker == tracker:
                by_job.setdefault(tip.job.job_id, []).append(tip)
        for tips in by_job.values():
            tips.sort(key=lambda t: t.tip_id)
        return by_job

    # -- preemption on arrival -----------------------------------------------------------

    def job_added(self, job: JobInProgress) -> None:
        """A new job may deserve slots ahead of the running ones."""
        if not self.preempt_on_arrival or self.primitive is None:
            return
        # Defer one event so the job's tips are registered.
        self.jobtracker.sim.call_soon(self._consider_preemption, job)

    def job_completed(self, job: JobInProgress) -> None:
        """Restore tasks we suspended, smallest-job-first."""
        if self.primitive is None:
            return
        still: List[TaskInProgress] = []
        restored = {"map": 0, "reduce": 0}
        for tip in sorted(
            self._suspended,
            key=lambda t: (self.remaining_size(t.job), t.tip_id),
        ):
            if tip.state is TipState.MUST_SUSPEND:
                # The stop directive is still in flight; keep tracking
                # the tip or it would stay suspended forever once the
                # directive lands.
                still.append(tip)
                continue
            if tip.state is not TipState.SUSPENDED:
                continue
            tracker = self.jobtracker.trackers.get(tip.tracker or "")
            kind = tip.kind.value
            free = 0
            if tracker is not None:
                free = (
                    tracker.free_reduce_slots
                    if kind == "reduce"
                    else tracker.free_map_slots
                )
            # "1 +": the completing job's own slot frees momentarily,
            # so one restore beyond the currently-free count is safe.
            if tracker is not None and restored[kind] < 1 + free:
                self.primitive.restore(tip)
                restored[kind] += 1
            else:
                still.append(tip)
        self._suspended = still

    def _consider_preemption(self, new_job: JobInProgress) -> None:
        if new_job.state.terminal:
            return
        free_anywhere = any(
            t.free_map_slots > 0 for t in self.jobtracker.trackers.values()
        )
        if free_anywhere:
            return  # the new job will be served at the next heartbeat
        new_size = self.remaining_size(new_job)
        # Victims: running tasks of strictly larger jobs.
        from repro.preemption.eviction import collect_candidates

        candidates = [
            c
            for c in collect_candidates(
                self.cluster, protect_jobs={new_job.spec.name}
            )
            if self.remaining_size(c.tip.job) > new_size
        ]
        # Largest job's tasks go first (they delay everyone the most);
        # an explicit eviction policy (e.g. the resident x progress
        # suspend-cost model) re-ranks within that default.
        candidates.sort(
            key=lambda c: (-self.remaining_size(c.tip.job), c.tip_id)
        )
        if self.eviction_policy is not None:
            candidates = self.eviction_policy.rank(candidates)
        demand = sum(1 for t in new_job.tips if t.schedulable)
        for victim in candidates[: max(0, demand)]:
            try:
                action = self.preempt_with_admission(self.primitive, victim.tip)
            except NotPreemptibleError:
                continue
            if self.admission is not None and action == "wait":
                # Admission denied into waiting: the victim keeps its
                # slot and the arrival queues behind it (counted in
                # the gate's own stats).
                continue
            self.preemptions += 1
            if victim.tip.state is TipState.MUST_SUSPEND:
                self._suspended.append(victim.tip)
