"""Job/task schedulers.

The paper factors preemption *primitives* (this library's
:mod:`repro.preemption`) out of eviction *policies* (the scheduler's
job).  This package provides:

* :class:`~repro.schedulers.dummy.DummyScheduler` -- the paper's
  trigger-driven scheduler, "a new scheduling component for Hadoop ...
  which dictates task eviction according to static configuration
  files";
* :class:`~repro.schedulers.fifo.FifoScheduler` -- Hadoop's default
  priority-then-FIFO queue (JobQueueTaskScheduler);
* :class:`~repro.schedulers.fair.FairScheduler` -- a simplified FAIR
  scheduler with preemption hooks;
* :class:`~repro.schedulers.capacity.CapacityScheduler` -- fixed-share
  queues;
* :class:`~repro.schedulers.hfsp.HfspScheduler` -- the authors' HFSP
  size-based scheduler (the conclusion reports preliminary results of
  the suspend primitive inside HFSP);
* :class:`~repro.schedulers.deadline.DeadlineScheduler` -- EDF with
  preemption when a deadline is at risk;
* :class:`~repro.schedulers.failure_aware.FailureAwareFifoScheduler`
  -- ATLAS-style failure-history awareness (blacklist avoidance,
  per-task tracker memory, recovery-first resubmission).
"""

from repro.schedulers.base import TaskScheduler
from repro.schedulers.capacity import CapacityScheduler
from repro.schedulers.deadline import DeadlineScheduler
from repro.schedulers.dummy import DummyScheduler
from repro.schedulers.failure_aware import (
    FailureAwareFifoScheduler,
    FailureAwareMixin,
)
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.hfsp import HfspScheduler
from repro.schedulers.triggers import ProgressTrigger, TriggerAction, TriggerEngine

__all__ = [
    "TaskScheduler",
    "FifoScheduler",
    "DummyScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "HfspScheduler",
    "DeadlineScheduler",
    "FailureAwareMixin",
    "FailureAwareFifoScheduler",
    "ProgressTrigger",
    "TriggerAction",
    "TriggerEngine",
]
