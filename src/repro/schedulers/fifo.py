"""Priority-then-FIFO scheduling (Hadoop's JobQueueTaskScheduler).

Jobs are ordered by descending priority, then by submission time.
This is the assignment policy underlying the paper's experiments: the
high-priority job ``th`` outranks ``tl`` for any freed slot, while the
*preemption* decision itself (suspend vs kill vs wait) is taken by the
dummy scheduler's triggers or by the experiment harness.
"""

from __future__ import annotations

from typing import List

from repro.hadoop.job import JobInProgress
from repro.hadoop.task import TaskInProgress
from repro.schedulers.base import TaskScheduler


class FifoScheduler(TaskScheduler):
    """Hadoop 1's default queue: priority desc, submit time asc."""

    def ordered_jobs(self) -> List[JobInProgress]:
        """Candidate jobs in scheduling order."""
        return sorted(
            self._candidate_jobs(),
            key=lambda job: (-job.priority, job.submit_time, job.job_id),
        )

    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        assigned: List[TaskInProgress] = []
        for job in self.ordered_jobs():
            if free_map_slots <= 0 and free_reduce_slots <= 0:
                break
            chosen = self._take_schedulable(
                job, free_map_slots, free_reduce_slots, tracker=tracker
            )
            for tip in chosen:
                if tip.kind.value == "map":
                    free_map_slots -= 1
                else:
                    free_reduce_slots -= 1
            assigned.extend(chosen)
        return assigned
