"""Deadline-based scheduling (EDF with preemption).

"In deadline scheduling, preemption can be used to make sure that jobs
that are close to the deadline are run as soon as possible."

Jobs carrying a ``deadline_seconds`` are ordered earliest-deadline-
first; jobs without a deadline run in the background.  When a
deadline-carrying job's *slack* (time to deadline minus remaining
work) goes negative and it has pending tasks but no slots, the
scheduler preempts background or later-deadline tasks with the
configured primitive.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NotPreemptibleError
from repro.hadoop.job import JobInProgress
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.schedulers.base import TaskScheduler


class DeadlineScheduler(TaskScheduler):
    """Earliest-deadline-first with slack-triggered preemption."""

    def __init__(
        self,
        primitive_factory=None,
        check_interval: float = 5.0,
        slack_margin: float = 10.0,
    ):
        super().__init__()
        self.primitive_factory = primitive_factory
        self.primitive = None
        self.cluster = None
        self.check_interval = check_interval
        #: extra seconds of safety subtracted from the slack
        self.slack_margin = slack_margin
        self.preemptions = 0
        self._suspended: List[TaskInProgress] = []

    def attach_cluster(self, cluster) -> None:
        """Enable preemption and the periodic slack check."""
        self.cluster = cluster
        if self.primitive_factory is not None:
            self.primitive = self.primitive_factory(cluster)
            self._schedule_check()

    def _schedule_check(self) -> None:
        self.jobtracker.sim.schedule(
            self.check_interval, self._slack_check, label="deadline.check"
        )

    # -- deadline bookkeeping ------------------------------------------------------

    def absolute_deadline(self, job: JobInProgress) -> Optional[float]:
        """Deadline as absolute simulated time, or None."""
        if job.spec.deadline_seconds is None:
            return None
        return job.submit_time + job.spec.deadline_seconds

    def remaining_work(self, job: JobInProgress) -> float:
        """Serial seconds of work left."""
        return sum(
            (tip.spec.input_bytes / tip.spec.parse_rate)
            * (1.0 - min(1.0, tip.progress))
            for tip in job.tips
        )

    def slack(self, job: JobInProgress, now: float) -> Optional[float]:
        """Seconds to spare before the deadline is at risk."""
        deadline = self.absolute_deadline(job)
        if deadline is None:
            return None
        return (deadline - now) - self.remaining_work(job) - self.slack_margin

    def ordered_jobs(self) -> List[JobInProgress]:
        """EDF; deadline-less jobs last, FIFO among themselves."""
        jobs = self._candidate_jobs()
        with_deadline = [j for j in jobs if j.spec.deadline_seconds is not None]
        without = [j for j in jobs if j.spec.deadline_seconds is None]
        with_deadline.sort(key=lambda j: (self.absolute_deadline(j), j.job_id))
        without.sort(key=lambda j: (j.submit_time, j.job_id))
        return with_deadline + without

    # -- assignment -----------------------------------------------------------------

    def assign_tasks(
        self, tracker: str, free_map_slots: int, free_reduce_slots: int
    ) -> List[TaskInProgress]:
        assigned: List[TaskInProgress] = []
        for job in self.ordered_jobs():
            if free_map_slots <= 0 and free_reduce_slots <= 0:
                break
            chosen = self._take_schedulable(
                job, free_map_slots, free_reduce_slots, tracker=tracker
            )
            for tip in chosen:
                if tip.kind.value == "map":
                    free_map_slots -= 1
                else:
                    free_reduce_slots -= 1
            assigned.extend(chosen)
        return assigned

    # -- slack-triggered preemption --------------------------------------------------------

    def _slack_check(self) -> None:
        self._schedule_check()
        if self.primitive is None:
            return
        now = self.jobtracker.sim.now
        self._maybe_restore()
        for job in self.ordered_jobs():
            job_slack = self.slack(job, now)
            if job_slack is None or job_slack >= 0:
                continue
            pending = self.job_pending_demand(job)
            if pending == 0:
                continue
            self._preempt_for(job, pending)

    def _preempt_for(self, urgent: JobInProgress, demand: int) -> None:
        from repro.preemption.eviction import collect_candidates

        now = self.jobtracker.sim.now
        urgent_deadline = self.absolute_deadline(urgent)

        def later_or_none(c) -> bool:
            other = self.absolute_deadline(c.tip.job)
            return other is None or (
                urgent_deadline is not None and other > urgent_deadline
            )

        candidates = [
            c
            for c in collect_candidates(
                self.cluster, protect_jobs={urgent.spec.name}
            )
            if later_or_none(c)
        ]
        # Deadline-less victims first, then latest deadlines.
        candidates.sort(
            key=lambda c: (
                self.absolute_deadline(c.tip.job) is not None,
                -(self.absolute_deadline(c.tip.job) or 0.0),
                c.tip_id,
            )
        )
        for victim in candidates[:demand]:
            try:
                self.primitive.preempt(victim.tip)
                self.preemptions += 1
                if victim.tip.state is TipState.MUST_SUSPEND:
                    self._suspended.append(victim.tip)
            except NotPreemptibleError:
                continue

    def _maybe_restore(self) -> None:
        still: List[TaskInProgress] = []
        for tip in self._suspended:
            if tip.state is not TipState.SUSPENDED:
                continue
            tracker = self.jobtracker.trackers.get(tip.tracker or "")
            if tracker is not None and tracker.free_map_slots > 0:
                self.primitive.restore(tip)
            else:
                still.append(tip)
        self._suspended = still
