"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the package
layout: simulation-kernel errors, OS-model errors, Hadoop protocol
errors, and preemption errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


# --------------------------------------------------------------------------
# Simulation kernel
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""


class EventCancelledError(SimulationError):
    """A cancelled event handle was used where a live one is required."""


class SimulationNotRunningError(SimulationError):
    """An operation required a running simulation but none was active."""


# --------------------------------------------------------------------------
# OS model
# --------------------------------------------------------------------------


class OSModelError(ReproError):
    """Base class for errors raised by the simulated operating system."""


class NoSuchProcessError(OSModelError):
    """A pid does not name a live process."""


class InvalidSignalError(OSModelError):
    """An unknown or undeliverable signal was requested."""


class OutOfMemoryError(OSModelError):
    """RAM and swap are both exhausted; the OOM killer would fire."""

    def __init__(self, message: str, victim_pid: int | None = None):
        super().__init__(message)
        self.victim_pid = victim_pid


class SwapExhaustedError(OutOfMemoryError):
    """The swap device cannot hold the pages that must be evicted."""


class ProcessStateError(OSModelError):
    """An operation is invalid for the process's current state."""


# --------------------------------------------------------------------------
# HDFS
# --------------------------------------------------------------------------


class HDFSError(ReproError):
    """Base class for errors raised by the HDFS model."""


class BlockNotFoundError(HDFSError):
    """A block id is unknown to the namenode."""


class FileNotFoundInHDFSError(HDFSError):
    """A path is unknown to the namenode."""


class FileAlreadyExistsError(HDFSError):
    """A path already exists and overwrite was not requested."""


class ReplicationError(HDFSError):
    """Block placement could not satisfy the replication factor."""


# --------------------------------------------------------------------------
# Hadoop engine
# --------------------------------------------------------------------------


class HadoopError(ReproError):
    """Base class for errors raised by the Hadoop engine model."""


class UnknownJobError(HadoopError):
    """A job id does not name a submitted job."""


class UnknownTaskError(HadoopError):
    """A task or attempt id is not known to the JobTracker."""


class TaskStateError(HadoopError):
    """A task-state transition was requested that the state machine forbids."""


class SlotExhaustedError(HadoopError):
    """A TaskTracker was asked to launch a task but has no free slot."""


class HeartbeatProtocolError(HadoopError):
    """A heartbeat message violated the JobTracker/TaskTracker protocol."""


# --------------------------------------------------------------------------
# Preemption
# --------------------------------------------------------------------------


class PreemptionError(ReproError):
    """Base class for errors raised by preemption primitives."""


class NotPreemptibleError(PreemptionError):
    """The target task cannot be preempted with the requested primitive."""


class ResumeLocalityError(PreemptionError):
    """A suspended task was asked to resume on a different machine."""


class CheckpointError(PreemptionError):
    """An application-level (Natjam-style) checkpoint failed."""


# --------------------------------------------------------------------------
# Simulation snapshot/restore (repro.checkpoint)
# --------------------------------------------------------------------------


class SnapshotError(ReproError):
    """A simulation snapshot could not be taken or restored."""


class SnapshotFormatError(SnapshotError):
    """The bytes are not a checkpoint file (bad magic / header)."""


class SnapshotVersionError(SnapshotError):
    """The checkpoint was written by an incompatible format or code
    schema; replay identity cannot be guaranteed."""


# --------------------------------------------------------------------------
# Supervised sweep runner (repro.experiments.supervisor)
# --------------------------------------------------------------------------


class SupervisorError(ReproError):
    """The supervised sweep runner could not make progress (all worker
    slots permanently dead, malformed worker protocol, bad config)."""


class QuarantineError(SupervisorError):
    """A sweep completed but one or more poison cells exhausted their
    retry budget and were quarantined.

    Raised *after* every other cell has run (and, with a cache
    directory, persisted), so nothing but the quarantined cells is
    lost; ``records`` carries one entry per quarantined cell.
    """

    def __init__(self, message: str, records=()):
        super().__init__(message)
        self.records = list(records)


# --------------------------------------------------------------------------
# Real POSIX runtime
# --------------------------------------------------------------------------


class PosixRuntimeError(ReproError):
    """Base class for errors raised by the real-process prototype."""


class WorkerSpawnError(PosixRuntimeError):
    """A worker process could not be spawned."""


class WorkerProtocolError(PosixRuntimeError):
    """A worker process emitted a malformed status record."""
