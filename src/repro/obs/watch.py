"""``repro watch``: an ANSI terminal dashboard over a sweep's state.

Watches either a sweep directory (reads ``ledger.jsonl`` directly,
backfilling by replaying the file, then following appends) or a
running observatory URL (polls ``GET /state``).  Both sources produce
the same ``/state`` snapshot dict, and :func:`render_dashboard` turns
it into one screenful -- so the terminal, the browser dashboard and
the SSE feed always tell the same story.

The redraw is curses-free: home the cursor, repaint, erase the
remainder (``ESC[H`` ... ``ESC[J]``).  ``--once`` renders a single
frame and exits (how the tests and the README transcript drive it).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.server import _Follower

#: cells shown in the table; the rest collapse into a summary line
MAX_ROWS = 24

_BAR_WIDTH = 40


def _bar(done: int, quarantined: int, total: int) -> str:
    if total <= 0:
        return "[" + " " * _BAR_WIDTH + "]"
    full = int(_BAR_WIDTH * done / total)
    bad = int(_BAR_WIDTH * quarantined / total)
    if quarantined and bad == 0:
        bad = 1
    full = min(full, _BAR_WIDTH - bad)
    return "[" + "#" * full + "!" * bad + "." * (_BAR_WIDTH - full - bad) + "]"


def _fmt_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


_STATE_MARKS = {
    "done": "x", "cached": "c", "running": ">",
    "quarantined": "q", "pending": " ",
}


def render_dashboard(state: Dict[str, Any], width: int = 100) -> str:
    """One screenful of sweep state from a ``/state`` snapshot dict."""
    total = state.get("total", 0)
    done = state.get("done", 0)
    progress = state.get("progress", {})
    quarantined = progress.get("quarantined", 0)
    running = progress.get("running", 0)
    lines = []
    title = state.get("experiment") or "sweep"
    status = "FINISHED" if state.get("finished") else (
        f"{running} running" if running else "waiting"
    )
    lines.append(f"repro watch -- {title}  [{status}]")
    lines.append(
        f"{_bar(done, quarantined, total)} {done}/{total} cells"
        + (f"  ({quarantined} quarantined)" if quarantined else "")
    )
    rate = state.get("rate_cost_per_s") or 0.0
    lines.append(
        f"rate {rate:.1f} cost/s   eta {_fmt_seconds(state.get('eta_seconds'))}"
        + (f"   snapshots {state['snapshots']}"
           if state.get("snapshots") else "")
    )
    supervisor = {
        k: v for k, v in sorted((state.get("supervisor") or {}).items()) if v
    }
    if supervisor:
        lines.append(
            "supervisor: " + ", ".join(f"{k}={v}" for k, v in supervisor.items())
        )
    sketch = state.get("sketch") or {}
    if sketch:
        lines.append("")
        lines.append("live merged sketches (mid-sweep quantiles):")
        for name, entry in sorted(sketch.items())[:8]:
            lines.append(
                f"  {name}: n={entry['count']} mean={entry['mean']:.1f} "
                f"p50={entry.get('p50', 0.0):.1f} "
                f"p95={entry.get('p95', 0.0):.1f}"
            )
        if len(sketch) > 8:
            lines.append(f"  ... and {len(sketch) - 8} more histograms")
    cells = state.get("cells") or []
    if cells:
        lines.append("")
        for cell in cells[:MAX_ROWS]:
            mark = _STATE_MARKS.get(cell.get("state"), "?")
            label = cell.get("label") or cell.get("key") or f"#{cell['index']}"
            line = f"  [{mark}] {label}"
            if cell.get("attempts", 0) > 1:
                line += f"  (attempt {cell['attempts']})"
            causes = cell.get("causes") or []
            if causes and cell.get("state") == "quarantined":
                line += f"  <- {causes[-1]}"
            lines.append(line[:width])
        if len(cells) > MAX_ROWS:
            lines.append(f"  ... and {len(cells) - MAX_ROWS} more cells")
    return "\n".join(lines)


def _fetch_url_state(url: str) -> Dict[str, Any]:
    target = url.rstrip("/")
    if not target.endswith("/state"):
        target += "/state"
    with urllib.request.urlopen(target, timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def watch(
    target: str,
    interval: float = 0.5,
    once: bool = False,
    out=None,
    max_seconds: Optional[float] = None,
) -> int:
    """Render the live dashboard until the sweep finishes.

    ``target`` is a sweep directory (containing ``ledger.jsonl``), a
    ledger file path, or an ``http(s)://`` observatory URL.  Returns 0
    when the sweep finished, 1 when ``max_seconds`` elapsed first.
    """
    import os

    out = out if out is not None else sys.stdout
    follower: Optional[_Follower] = None
    if target.startswith(("http://", "https://")):
        source = lambda: _fetch_url_state(target)  # noqa: E731
    else:
        path = target
        if os.path.isdir(path):
            from repro.obs.ledger import ledger_path

            path = ledger_path(path)
        if not os.path.exists(path):
            raise ConfigurationError(
                f"{target}: no ledger found (expected a sweep directory "
                "with a ledger.jsonl, a ledger file, or an http URL)"
            )
        follower = _Follower(path)
        source = lambda: follower.refresh().to_dict()  # noqa: E731
    started = time.monotonic()
    is_tty = hasattr(out, "isatty") and out.isatty()
    while True:
        state = source()
        frame = render_dashboard(state)
        if is_tty and not once:
            # Home, repaint, erase whatever the last frame left behind.
            out.write("\x1b[H" + frame + "\x1b[J\n")
        else:
            out.write(frame + "\n")
        out.flush()
        if once or state.get("finished"):
            return 0
        if max_seconds is not None and (
            time.monotonic() - started > max_seconds
        ):
            return 1
        time.sleep(interval)
