"""The runner's stderr progress lines, rendered from ledger events.

One renderer, one source of truth: the serial and supervised paths
both emit the same ledger events, and this subscriber turns them into
the familiar ``[3/12] done ...`` lines.  Because ``repro watch`` and
the SSE feed fold the *same* events, the three views cannot disagree
about what the sweep has done -- the satellite fix for the old ad-hoc
per-path ``print`` calls.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Optional, TextIO

from repro.obs.aggregate import SweepState


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return ""
    if seconds >= 3600:
        return f", eta ~{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f", eta ~{seconds / 60:.1f}m"
    return f", eta ~{seconds:.0f}s"


class ConsoleRenderer:
    """Subscribe me to a :class:`~repro.obs.ledger.Ledger` for progress
    lines on stderr.

    Maintains its own :class:`~repro.obs.aggregate.SweepState` fold so
    the counts, rate and ETA it prints are exactly the ones ``repro
    watch`` and ``GET /state`` would show at the same instant.
    """

    def __init__(self, out: TextIO = None):
        self.out = out if out is not None else sys.stderr
        self.state = SweepState()

    def _print(self, message: str) -> None:
        print(message, file=self.out, flush=True)

    def __call__(self, record: Dict[str, Any]) -> None:
        self.state.apply(record)
        handler = getattr(
            self, "_on_" + record.get("event", "").replace("-", "_"), None
        )
        if handler is not None:
            handler(record)

    # -- per-event lines ----------------------------------------------

    def _on_sweep_start(self, record: Dict[str, Any]) -> None:
        cached = int(record.get("cached", 0))
        total = self.state.total
        workers = self.state.workers
        line = f"[sweep] {total} cells over {workers} worker(s)"
        if record.get("ledger_path"):
            line += f"; ledger {record['ledger_path']}"
        self._print(line)
        if cached:
            self._print(
                f"[cache] {cached}/{total} cells already checkpointed; "
                f"running {total - cached}"
            )

    def _on_cell_start(self, record: Dict[str, Any]) -> None:
        attempt = int(record.get("attempt", 0))
        suffix = f" (attempt {attempt + 1})" if attempt else ""
        self._print(
            f"[{self.state.done + 1}/{self.state.total}] start "
            f"{record.get('label', record.get('key', '?'))}{suffix}"
        )

    def _on_cell_finish(self, record: Dict[str, Any]) -> None:
        done, total = self.state.done, self.state.total
        remaining = total - done - self.state.count("quarantined")
        line = (
            f"[{done}/{total}] done "
            f"{record.get('label', record.get('key', '?'))}"
        )
        duration = record.get("duration_s")
        if duration is not None:
            line += f" in {duration:.1f}s"
        line += f" ({remaining} remaining"
        line += _fmt_eta(self.state.eta_seconds(record.get("t")))
        line += ")"
        self._print(line)

    def _on_cell_retry(self, record: Dict[str, Any]) -> None:
        self._print(
            f"[supervisor] cell {record.get('index')} failed "
            f"({record.get('cause', 'unknown')}); retry "
            f"{record.get('attempt', '?')}/{record.get('max_retries', '?')} "
            "queued"
        )

    def _on_cell_quarantine(self, record: Dict[str, Any]) -> None:
        self._print(
            f"[supervisor] cell {record.get('index')} quarantined after "
            f"{record.get('attempts', '?')} attempt(s): "
            f"{record.get('cause', 'unknown')}"
        )

    def _on_worker_death(self, record: Dict[str, Any]) -> None:
        self._print(
            f"[supervisor] shard {record.get('slot')} "
            f"{record.get('cause', 'died')}; restarting "
            f"(death {record.get('deaths', '?')}/"
            f"{record.get('death_cap', '?')})"
        )

    def _on_worker_retire(self, record: Dict[str, Any]) -> None:
        self._print(
            f"[supervisor] shard {record.get('slot')} retired after "
            f"{record.get('deaths', '?')} consecutive deaths; pool "
            f"shrinks to {record.get('remaining', '?')} worker(s)"
        )

    def _on_sweep_finish(self, record: Dict[str, Any]) -> None:
        quarantined = self.state.count("quarantined")
        line = (
            f"[sweep] finished: {self.state.done}/{self.state.total} "
            "cells done"
        )
        if quarantined:
            line += f", {quarantined} quarantined"
        self._print(line)
