"""The run ledger: an append-only JSONL stream of sweep lifecycle events.

One ledger file narrates one sweep (``<cache>/ledger.jsonl`` by
convention -- :data:`LEDGER_FILENAME`).  Every line is one JSON object
with a fixed envelope::

    {"v": 1, "seq": 3, "pid": 1234, "t": 1723.4, "event": "cell-finish", ...}

* ``v``     -- :data:`SCHEMA_VERSION`; replayers reject lines from a
  future schema instead of misreading them;
* ``seq``   -- per-process append counter (monotone within one ``pid``);
* ``pid``   -- the writing process (the supervisor's workers append
  their own snapshot events);
* ``t``     -- wall-clock seconds (:func:`time.time`); observation
  metadata only, never fed back into any simulation;
* ``event`` -- the event type; remaining keys are event-specific
  (see ARCHITECTURE.md's event schema table).

**Atomic line appends.**  The file is opened ``O_APPEND`` and every
record is written with a single ``os.write`` of one complete
``line + "\\n"`` -- on POSIX that makes concurrent appends from the
parent and worker processes interleave only at line boundaries.  The
one failure mode left is a writer SIGKILLed mid-``write`` leaving a
truncated final line; readers therefore *skip* any undecodable line
with a warning instead of raising (:func:`iter_ledger`), and the tailer
(:func:`tail_ledger`) additionally holds back a final line that does
not yet end in a newline -- it may simply not be finished.

The ledger is trace- and RNG-silent by construction: it is written
from outside the simulation, between events, and nothing in the
simulator ever reads it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

#: ledger schema version; bump on any incompatible envelope change
SCHEMA_VERSION = 1

#: conventional ledger file name inside a sweep cache directory
LEDGER_FILENAME = "ledger.jsonl"


def ledger_path(directory: str) -> str:
    """The conventional ledger location for a sweep cache directory."""
    return os.path.join(directory, LEDGER_FILENAME)


class Ledger:
    """One sweep's event sink: in-process subscribers + optional file.

    ``emit`` builds the enveloped record, appends it to the file (one
    atomic ``os.write``), and hands it to every subscriber -- the
    console renderer, tests, anything.  A ``path`` of ``None`` makes
    the ledger purely in-process (subscribers still fire), which is
    how the renderer works for cacheless sweeps.

    Emission never raises into the sweep: a full disk or yanked
    directory degrades to a one-time warning, because observation must
    not take down the run it observes.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._seq = 0
        self._fd: Optional[int] = None
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        self._write_failed = False
        if path is not None:
            self._fd = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )

    def subscribe(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        """Add an in-process observer called with every emitted record."""
        self._subscribers.append(fn)

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event record and notify subscribers."""
        self._seq += 1
        record: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "pid": os.getpid(),
            "t": round(time.time(), 6),
            "event": event,
        }
        record.update(fields)
        if self._fd is not None:
            line = json.dumps(record, separators=(",", ":"),
                              default=repr) + "\n"
            try:
                os.write(self._fd, line.encode("utf-8"))
            except OSError as exc:
                if not self._write_failed:
                    self._write_failed = True
                    print(
                        f"warning: ledger append to {self.path} failed "
                        f"({exc}); further events will not be persisted",
                        file=sys.stderr,
                    )
        for fn in self._subscribers:
            fn(record)
        return record

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            finally:
                self._fd = None

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: the per-process ledger armed by the supervisor in each worker, so
#: deep hooks (the drive loop's mid-cell snapshot writer) can emit
#: without threading a ledger through every study signature -- the
#: same pattern as the runner's progress/cache module state
_process_ledger: Optional[Ledger] = None


def set_process_ledger(ledger: Optional[Ledger]) -> None:
    """Arm (or, with ``None``, disarm) this process's ledger sink."""
    global _process_ledger
    _process_ledger = ledger


def process_ledger() -> Optional[Ledger]:
    """The armed per-process ledger (None when disarmed)."""
    return _process_ledger


def _decode_line(raw: bytes, lineno: int, path: str,
                 warn: bool = True) -> Optional[Dict[str, Any]]:
    """One ledger line -> record, or None (skipped) with a warning.

    Tolerates exactly the damage a SIGKILLed writer can inflict --
    truncated or interleaved bytes that are not valid JSON, or a valid
    object from a future schema -- because a live dashboard must keep
    rendering whatever the crash left behind.
    """
    try:
        record = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        if warn:
            print(
                f"warning: skipping corrupt ledger line {lineno} of "
                f"{path} (truncated by a crash mid-append?)",
                file=sys.stderr,
            )
        return None
    if not isinstance(record, dict) or "event" not in record:
        if warn:
            print(
                f"warning: skipping malformed ledger line {lineno} of "
                f"{path} (no event field)",
                file=sys.stderr,
            )
        return None
    if record.get("v", 0) > SCHEMA_VERSION:
        if warn:
            print(
                f"warning: skipping ledger line {lineno} of {path}: "
                f"schema v{record.get('v')} is newer than this reader "
                f"(v{SCHEMA_VERSION})",
                file=sys.stderr,
            )
        return None
    return record


def iter_ledger(path: str, warn: bool = True) -> Iterator[Dict[str, Any]]:
    """Yield every decodable record of a ledger file, in file order.

    Undecodable lines -- including a final line truncated by a crash
    mid-append -- are skipped with a stderr warning, never raised.
    """
    with open(path, "rb") as fh:
        for lineno, raw in enumerate(fh, start=1):
            if raw.strip() == b"":
                continue
            if not raw.endswith(b"\n"):
                # Final line without its newline: a crashed (or still
                # running) writer; treat as not-yet-written.
                if warn:
                    print(
                        f"warning: ignoring incomplete final ledger "
                        f"line {lineno} of {path}",
                        file=sys.stderr,
                    )
                return
            record = _decode_line(raw.rstrip(b"\n"), lineno, path, warn)
            if record is not None:
                yield record


def tail_ledger(
    path: str,
    poll: float = 0.2,
    stop: Optional[Callable[[], bool]] = None,
    from_start: bool = True,
    warn: bool = True,
) -> Iterator[Dict[str, Any]]:
    """Follow a ledger file like ``tail -f``, yielding records forever.

    Starts at the beginning (``from_start``) or the current end, then
    polls for growth every ``poll`` seconds until ``stop()`` returns
    true (checked between yields) or a ``sweep-finish`` record has been
    yielded and the file stops growing.  A partial final line is held
    back until its newline arrives; corrupt complete lines are skipped
    with a warning, exactly like :func:`iter_ledger`.
    """
    offset = 0
    lineno = 0
    buffer = b""
    finished = False
    while True:
        try:
            size = os.path.getsize(path)
        except OSError:
            size = offset
        if not from_start and offset == 0:
            offset = size
            from_start = True  # only skip once
        grew = size > offset
        if grew:
            with open(path, "rb") as fh:
                fh.seek(offset)
                buffer += fh.read(size - offset)
            offset = size
            while b"\n" in buffer:
                raw, buffer = buffer.split(b"\n", 1)
                lineno += 1
                record = _decode_line(raw, lineno, path, warn)
                if record is None:
                    continue
                if record.get("event") == "sweep-finish":
                    finished = True
                yield record
        if finished and not grew:
            return
        if stop is not None and stop():
            return
        if not grew:
            time.sleep(poll)
