"""Streaming aggregation of a run ledger into live sweep state.

:class:`SweepState` is a pure fold over ledger events: feed it every
record (live from a :class:`~repro.obs.ledger.Ledger` subscription, or
replayed from the file) and it maintains, incrementally,

* **progress** -- per-cell status (pending / running / done / cached /
  quarantined), attempt counts and failure causes;
* **a merged metric registry** -- each ``cell-finish`` event's sketch
  payload is folded into one running
  :class:`~repro.telemetry.registry.MetricRegistry` the moment it
  lands (the registry's merge is exact and order-insensitive, so the
  mid-sweep merged state after N cells equals what a post-hoc merge of
  those N sketches would build), giving live sojourn quantiles without
  holding any full result in memory;
* **throughput and ETA** -- completion rate over a sliding window of
  recent finishes, weighted by each cell's *virtual cost* (its
  simulation's fired-event count when the result reports one), so one
  400-tracker cell counts for what it costs, not what one grid slot
  suggests;
* the latest **supervisor counters** snapshot and worker lifecycle
  tallies.

Because the fold is deterministic in the event sequence,
:func:`replay` -- fold the whole file -- reconstructs the exact state
the live subscription built, which is how ``repro watch`` backfills on
attach, how ``GET /state`` answers, and how the schema tests pin the
format.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.ledger import iter_ledger

#: finishes remembered for the sliding throughput window
RATE_WINDOW = 32

#: cell states the table reports, in lifecycle order
CELL_STATES = ("pending", "running", "done", "cached", "quarantined")


class SweepState:
    """Live state of one sweep, folded from its ledger events."""

    def __init__(self) -> None:
        self.schema_version: Optional[int] = None
        self.total = 0
        self.workers = 0
        self.grid_digest: Optional[str] = None
        self.experiment: Optional[str] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cells: Dict[int, Dict[str, Any]] = {}
        self.counters: Dict[str, int] = {}
        self.worker_events: Dict[str, int] = {}
        self.snapshots = 0
        self.event_counts: Dict[str, int] = {}
        self.events_applied = 0
        # (wall time, virtual cost) of recent finishes, oldest first
        self._finish_window: Deque[Tuple[float, float]] = deque(
            maxlen=RATE_WINDOW
        )
        self._done_cost = 0.0
        self._registry = None  # lazy: telemetry import only when needed

    # -- folding -------------------------------------------------------

    def apply(self, record: Dict[str, Any]) -> None:
        """Fold one ledger record into the state."""
        event = record.get("event", "")
        self.events_applied += 1
        self.event_counts[event] = self.event_counts.get(event, 0) + 1
        handler = getattr(self, "_on_" + event.replace("-", "_"), None)
        if handler is not None:
            handler(record)

    def _cell(self, index: int) -> Dict[str, Any]:
        cell = self.cells.get(index)
        if cell is None:
            cell = {
                "index": index,
                "key": None,
                "label": None,
                "state": "pending",
                "attempts": 0,
                "causes": [],
            }
            self.cells[index] = cell
        return cell

    def _on_sweep_start(self, record: Dict[str, Any]) -> None:
        self.schema_version = record.get("v")
        self.total = int(record.get("total", 0))
        self.workers = int(record.get("workers", 0))
        self.grid_digest = record.get("grid_digest")
        self.experiment = record.get("experiment")
        self.started_at = record.get("t")
        for entry in record.get("cells", []):
            cell = self._cell(int(entry["index"]))
            cell["key"] = entry.get("key")
            cell["label"] = entry.get("label")

    def _on_cell_cached(self, record: Dict[str, Any]) -> None:
        cell = self._cell(int(record["index"]))
        cell["state"] = "cached"

    def _on_cell_start(self, record: Dict[str, Any]) -> None:
        cell = self._cell(int(record["index"]))
        cell["state"] = "running"
        cell["attempts"] = int(record.get("attempt", 0)) + 1

    def _on_cell_finish(self, record: Dict[str, Any]) -> None:
        cell = self._cell(int(record["index"]))
        cell["state"] = "done"
        cost = float(record.get("cost", 1.0) or 1.0)
        cell["cost"] = cost
        self._done_cost += cost
        self._finish_window.append((record.get("t", 0.0), cost))
        sketch = record.get("sketch")
        if sketch:
            from repro.telemetry.registry import MetricRegistry

            shard = MetricRegistry.from_dict(sketch)
            if self._registry is None:
                self._registry = MetricRegistry()
            self._registry.merge(shard)

    def _on_cell_retry(self, record: Dict[str, Any]) -> None:
        cell = self._cell(int(record["index"]))
        cell["state"] = "pending"
        cell["causes"].append(record.get("cause", "unknown"))

    def _on_cell_quarantine(self, record: Dict[str, Any]) -> None:
        cell = self._cell(int(record["index"]))
        cell["state"] = "quarantined"
        cell["attempts"] = int(record.get("attempts", cell["attempts"]))
        cause = record.get("cause")
        if cause:
            cell["causes"].append(cause)

    def _on_worker_spawn(self, record: Dict[str, Any]) -> None:
        self.worker_events["spawns"] = self.worker_events.get("spawns", 0) + 1

    def _on_worker_death(self, record: Dict[str, Any]) -> None:
        self.worker_events["deaths"] = self.worker_events.get("deaths", 0) + 1

    def _on_worker_retire(self, record: Dict[str, Any]) -> None:
        self.worker_events["retires"] = (
            self.worker_events.get("retires", 0) + 1
        )

    def _on_snapshot(self, record: Dict[str, Any]) -> None:
        self.snapshots += 1

    def _on_counters(self, record: Dict[str, Any]) -> None:
        self.counters = dict(record.get("counters", {}))

    def _on_sweep_finish(self, record: Dict[str, Any]) -> None:
        self.finished_at = record.get("t")
        counters = record.get("counters")
        if counters:
            self.counters = dict(counters)

    # -- derived reads -------------------------------------------------

    @property
    def registry(self):
        """The running merged metric registry (None before the first
        sketch-bearing finish)."""
        return self._registry

    def count(self, state: str) -> int:
        return sum(1 for c in self.cells.values() if c["state"] == state)

    @property
    def done(self) -> int:
        """Cells whose result exists (freshly finished or cached)."""
        return self.count("done") + self.count("cached")

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    def rate(self, now: Optional[float] = None) -> float:
        """Virtual cost completed per wall second, over the window."""
        window = list(self._finish_window)
        if len(window) < 2:
            return 0.0
        if now is None:
            now = window[-1][0]
        start = window[0][0]
        elapsed = max(now - start, 1e-9)
        # The first sample anchors the window; its cost predates it.
        cost = sum(c for _t, c in window[1:])
        return cost / elapsed

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Projected wall seconds to completion (None = unknowable).

        Remaining cost is the mean observed per-cell cost times the
        cells still outstanding; the rate is the sliding-window
        throughput.  Both are cost-weighted, so a tail of heavy
        400-tracker cells projects honestly instead of by cell count.
        """
        if self.finished:
            return 0.0
        remaining = self.total - self.done - self.count("quarantined")
        if remaining <= 0:
            return 0.0
        completed = self.count("done")
        current = self.rate(now)
        if completed == 0 or current <= 0:
            return None
        mean_cost = self._done_cost / completed
        return remaining * mean_cost / current

    def sketch_summary(self, quantiles=(0.5, 0.95)) -> Dict[str, Dict]:
        """Live per-histogram headline stats from the merged registry."""
        if self._registry is None:
            return {}
        out: Dict[str, Dict] = {}
        for name, metric in self._registry:
            if getattr(metric, "kind", "") != "histogram":
                continue
            if metric.count == 0:
                continue
            entry = {"count": metric.count, "mean": metric.mean()}
            for q in quantiles:
                entry[f"p{int(q * 100)}"] = metric.quantile(q)
            out[name] = entry
        return out

    def to_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The ``GET /state`` JSON snapshot."""
        if now is None:
            now = time.time()
        eta = self.eta_seconds(now)
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "grid_digest": self.grid_digest,
            "total": self.total,
            "workers": self.workers,
            "progress": {
                state: self.count(state) for state in CELL_STATES
            },
            "done": self.done,
            "finished": self.finished,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "rate_cost_per_s": self.rate(now if not self.finished else None),
            "eta_seconds": eta,
            "cells": [self.cells[i] for i in sorted(self.cells)],
            "supervisor": dict(self.counters),
            "worker_events": dict(self.worker_events),
            "snapshots": self.snapshots,
            "event_counts": dict(self.event_counts),
            "sketch": self.sketch_summary(),
            "sketch_digest": (
                self._registry.digest() if self._registry else None
            ),
        }


def replay(path: str, warn: bool = True) -> SweepState:
    """Reconstruct a sweep's state from its ledger file.

    A pure fold of :func:`~repro.obs.ledger.iter_ledger` -- the state
    a live subscriber held after the same events, bit for bit
    (the sketch-digest test pins exactly that).  Corrupt or truncated
    lines are skipped by the reader, never fatal.
    """
    state = SweepState()
    for record in iter_ledger(path, warn=warn):
        state.apply(record)
    return state
