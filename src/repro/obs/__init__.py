"""Live sweep observatory: run ledger, streaming aggregation, serving.

The supervisor and serial runner narrate every sweep into an
append-only JSONL **run ledger** (:mod:`repro.obs.ledger`); a
**streaming aggregator** (:mod:`repro.obs.aggregate`) folds the ledger
into live sweep state -- progress, ETA over virtual-cost-weighted
cells, merged metric sketches with mid-sweep quantiles; and a
**serving layer** exposes that state as Server-Sent Events plus JSON
snapshots (:mod:`repro.obs.server`), an ANSI terminal dashboard
(:mod:`repro.obs.watch`), and the runner's own console progress lines
(:mod:`repro.obs.console`).  All three read the same events, so they
cannot disagree.

The ledger is observation only: it never touches the simulation, its
RNG, or the TraceLog, and the differential suite pins ledger-on ==
ledger-off result equality down to trace and sketch digests.
"""

from repro.obs.aggregate import SweepState, replay
from repro.obs.console import ConsoleRenderer
from repro.obs.ledger import (
    LEDGER_FILENAME,
    SCHEMA_VERSION,
    Ledger,
    iter_ledger,
    tail_ledger,
)
from repro.obs.server import ObsServer
from repro.obs.watch import render_dashboard, watch

__all__ = [
    "LEDGER_FILENAME",
    "SCHEMA_VERSION",
    "Ledger",
    "iter_ledger",
    "tail_ledger",
    "SweepState",
    "replay",
    "ConsoleRenderer",
    "ObsServer",
    "render_dashboard",
    "watch",
]
