"""Stdlib-only HTTP service for watching a sweep.

:class:`ObsServer` runs a :class:`http.server.ThreadingHTTPServer` on
a daemon thread next to the sweep (or anywhere the ledger file is
visible) and serves three endpoints:

``GET /state``
    JSON snapshot of the folded sweep state -- progress, per-cell
    status table, live merged-sketch summary (p50/p95 mid-sweep),
    supervisor counters, throughput and ETA.  Incremental: the server
    keeps one :class:`~repro.obs.aggregate.SweepState` and folds only
    the ledger lines appended since the last request.

``GET /events``
    Server-Sent Events tailing the ledger: every record becomes one
    ``data: <json>`` frame, starting from the beginning of the file
    (so a late-attaching client backfills the whole story) and
    following live appends until the sweep finishes.  Corrupt lines
    are skipped exactly as :func:`~repro.obs.ledger.iter_ledger`
    skips them -- a crashed writer never takes the feed down.

``GET /``
    A single-file HTML dashboard consuming both endpoints.

Everything here is observation: no endpoint mutates anything, and the
server reads the ledger file exactly as ``repro watch`` does.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.aggregate import SweepState
from repro.obs.ledger import _decode_line, tail_ledger

#: SSE keep-alive comment period (seconds) while the ledger is idle
SSE_POLL = 0.25


class _Follower:
    """Incremental ledger -> SweepState fold shared by /state calls."""

    def __init__(self, path: str):
        self.path = path
        self.state = SweepState()
        self._offset = 0
        self._lineno = 0
        self._buffer = b""
        self._lock = threading.Lock()

    def refresh(self) -> SweepState:
        """Fold any newly appended complete lines, then return state."""
        with self._lock:
            try:
                with open(self.path, "rb") as fh:
                    fh.seek(self._offset)
                    chunk = fh.read()
            except OSError:
                return self.state
            self._offset += len(chunk)
            self._buffer += chunk
            while b"\n" in self._buffer:
                raw, self._buffer = self._buffer.split(b"\n", 1)
                self._lineno += 1
                record = _decode_line(raw, self._lineno, self.path,
                                      warn=False)
                if record is not None:
                    self.state.apply(record)
            return self.state


class _ObsHandler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"
    #: injected by ObsServer via the handler subclass it builds
    follower: _Follower = None
    stopping: threading.Event = None

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the sweep's own output matters more than access logs

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, default=repr).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        try:
            if path == "/state":
                self._send_json(self.follower.refresh().to_dict())
            elif path == "/events":
                self._serve_events()
            elif path in ("/", "/index.html"):
                body = DASHBOARD_HTML.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "text/html; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json({"error": f"unknown path {path}"}, 404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _serve_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        stop = self.stopping
        for record in tail_ledger(
            self.follower.path,
            poll=SSE_POLL,
            stop=(stop.is_set if stop is not None else None),
            warn=False,
        ):
            frame = (
                f"event: {record.get('event', 'message')}\n"
                f"data: {json.dumps(record, default=repr)}\n\n"
            )
            self.wfile.write(frame.encode("utf-8"))
            self.wfile.flush()
        self.wfile.write(b": sweep finished\n\n")
        self.wfile.flush()


class ObsServer:
    """The sweep observatory service (daemon thread; stdlib only)."""

    def __init__(self, ledger_path: str, host: str = "127.0.0.1",
                 port: int = 0):
        self.ledger_path = ledger_path
        self._stopping = threading.Event()
        follower = _Follower(ledger_path)
        self.follower = follower
        handler = type(
            "BoundObsHandler",
            (_ObsHandler,),
            {"follower": follower, "stopping": self._stopping},
        )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ObsServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, kwargs={"poll_interval": 0.1},
            daemon=True, name="repro-obs-server",
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


#: the whole dashboard, one file, no dependencies: polls /state for
#: the table and rides /events for instant updates
DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro sweep observatory</title>
<style>
  body { font-family: ui-monospace, monospace; margin: 1.5rem;
         background: #111; color: #ddd; }
  h1 { font-size: 1.1rem; }
  .bar { height: 14px; background: #333; border-radius: 7px;
         overflow: hidden; margin: .4rem 0 1rem; }
  .bar > div { height: 100%; background: #4a9; float: left; }
  .bar > div.q { background: #c55; }
  table { border-collapse: collapse; font-size: .85rem; }
  td, th { padding: .15rem .6rem; text-align: left; }
  tr.done td { color: #7c7; } tr.cached td { color: #79c; }
  tr.running td { color: #fd7; } tr.quarantined td { color: #f77; }
  #meta, #sketch { margin: .5rem 0; white-space: pre; }
</style>
</head>
<body>
<h1>repro sweep observatory</h1>
<div id="meta">connecting&hellip;</div>
<div class="bar"><div id="done" style="width:0%"></div>
<div id="quar" class="q" style="width:0%"></div></div>
<div id="sketch"></div>
<table id="cells"><thead>
<tr><th>#</th><th>cell</th><th>state</th><th>attempts</th><th>last cause</th></tr>
</thead><tbody></tbody></table>
<script>
async function refresh() {
  const r = await fetch('/state'); const s = await r.json();
  const done = s.done, total = s.total || 1;
  const q = s.progress.quarantined || 0;
  document.getElementById('done').style.width =
      (100 * done / total) + '%';
  document.getElementById('quar').style.width = (100 * q / total) + '%';
  const eta = s.eta_seconds == null ? '?' :
      (s.eta_seconds < 90 ? s.eta_seconds.toFixed(0) + 's'
                          : (s.eta_seconds / 60).toFixed(1) + 'm');
  document.getElementById('meta').textContent =
      `${done}/${s.total} cells  (${q} quarantined)  ` +
      `rate ${s.rate_cost_per_s.toFixed(1)} cost/s  eta ${eta}  ` +
      (s.finished ? 'FINISHED' : 'running');
  const sk = Object.entries(s.sketch || {}).map(([k, v]) =>
      `${k}: n=${v.count} mean=${v.mean.toFixed(1)} ` +
      `p50=${(v.p50 ?? 0).toFixed(1)} p95=${(v.p95 ?? 0).toFixed(1)}`);
  document.getElementById('sketch').textContent = sk.join('\\n');
  const tbody = document.querySelector('#cells tbody');
  tbody.innerHTML = '';
  for (const c of s.cells) {
    const tr = document.createElement('tr');
    tr.className = c.state;
    const cause = c.causes.length ? c.causes[c.causes.length - 1] : '';
    tr.innerHTML = `<td>${c.index}</td><td>${c.label || c.key || ''}</td>` +
        `<td>${c.state}</td><td>${c.attempts}</td><td>${cause}</td>`;
    tbody.appendChild(tr);
  }
  if (s.finished && window.__es) { window.__es.close(); }
}
refresh();
window.__es = new EventSource('/events');
window.__es.onmessage = () => refresh();
for (const ev of ['sweep-start', 'cell-start', 'cell-finish',
                  'cell-retry', 'cell-quarantine', 'sweep-finish',
                  'counters', 'worker-death', 'worker-retire'])
  window.__es.addEventListener(ev, () => refresh());
setInterval(refresh, 5000);
</script>
</body>
</html>
"""
