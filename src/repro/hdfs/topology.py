"""Rack topology and locality levels.

Hadoop distinguishes node-local, rack-local and off-rack (remote)
access when scheduling mappers; the paper reuses the same vocabulary
for its *resume locality* problem (a suspended task can only resume on
the machine that holds its process image).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional


class Locality(enum.IntEnum):
    """Locality of a task relative to its data (or suspended image).

    Ordered so that lower is better; comparisons like
    ``locality <= Locality.RACK_LOCAL`` read naturally.
    """

    NODE_LOCAL = 0
    RACK_LOCAL = 1
    REMOTE = 2


class RackTopology:
    """Host-to-rack mapping with locality queries."""

    DEFAULT_RACK = "/default-rack"

    def __init__(self) -> None:
        self._rack_of: Dict[str, str] = {}

    def add_host(self, host: str, rack: Optional[str] = None) -> None:
        """Register ``host`` on ``rack`` (defaults to a single rack)."""
        self._rack_of[host] = rack or self.DEFAULT_RACK

    def rack_of(self, host: str) -> str:
        """The rack of ``host`` (unknown hosts get the default rack)."""
        return self._rack_of.get(host, self.DEFAULT_RACK)

    def hosts(self) -> List[str]:
        """All registered hosts in insertion order."""
        return list(self._rack_of)

    def hosts_on_rack(self, rack: str) -> List[str]:
        """All hosts on one rack."""
        return [h for h, r in self._rack_of.items() if r == rack]

    def locality(self, host: str, replica_hosts: List[str]) -> Locality:
        """Classify ``host`` against a replica set."""
        if host in replica_hosts:
            return Locality.NODE_LOCAL
        rack = self.rack_of(host)
        if any(self.rack_of(h) == rack for h in replica_hosts):
            return Locality.RACK_LOCAL
        return Locality.REMOTE

    def __len__(self) -> int:
        return len(self._rack_of)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        racks: Dict[str, int] = {}
        for rack in self._rack_of.values():
            racks[rack] = racks.get(rack, 0) + 1
        return f"RackTopology({racks})"
