"""A compact HDFS model.

The paper's jobs read single-block files from HDFS ("tl processes a
single-block file stored on HDFS, with size 512 MB").  This package
models exactly what the scheduler and the tasks need from HDFS:

* a :class:`~repro.hdfs.namenode.NameNode` mapping paths to block
  lists and blocks to datanode locations;
* :class:`~repro.hdfs.datanode.DataNode` objects bound to simulated
  nodes, so block reads go through the local kernel's disk and page
  cache;
* rack-aware replica placement (default replication 3) and the
  locality queries (node-local / rack-local / remote) that Hadoop's
  delay scheduling and the paper's *resume locality* discussion rely
  on.
"""

from repro.hdfs.block import Block, BlockLocation
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import FileEntry, NameNode
from repro.hdfs.topology import Locality, RackTopology

__all__ = [
    "Block",
    "BlockLocation",
    "DataNode",
    "FileEntry",
    "NameNode",
    "Locality",
    "RackTopology",
]
