"""DataNodes: block storage bound to a simulated node's kernel.

A DataNode holds block replicas and serves reads through the owning
node's disk and page cache, so the timing of HDFS I/O and the memory
effects of caching block data both flow through the OS model (which is
what makes the paper's swappiness discussion meaningful).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Optional, Set

from repro.errors import BlockNotFoundError
from repro.hdfs.block import Block
from repro.osmodel.kernel import NodeKernel


def _deliver(on_done: Callable[[], None], flow) -> None:
    """Flow-completion adapter: drop the flow argument (picklable
    stand-in for ``lambda flow: on_done()``)."""
    on_done()


class DataNode:
    """Block storage on one simulated machine."""

    def __init__(self, kernel: NodeKernel):
        self.kernel = kernel
        self.host = kernel.config.hostname
        self._blocks: Dict[int, Block] = {}
        self.bytes_served = 0
        self.remote_bytes_served = 0

    @property
    def stored_blocks(self) -> Set[int]:
        """Ids of the replicas stored here."""
        return set(self._blocks)

    def store(self, block: Block) -> None:
        """Accept a replica of ``block``."""
        self._blocks[block.block_id] = block

    def has_block(self, block_id: int) -> bool:
        """True when a replica of ``block_id`` is stored here."""
        return block_id in self._blocks

    def used_bytes(self) -> int:
        """Total bytes of replicas stored here."""
        return sum(b.size for b in self._blocks.values())

    def read_block(
        self,
        block_id: int,
        on_done: Callable[[], None],
        label: str = "",
        reader_host: Optional[str] = None,
    ) -> None:
        """Stream a full block to ``reader_host`` (default: local).

        The replica is always read off this node's disk (through its
        page cache); when the reader lives elsewhere and the cluster
        has a network fabric, the bytes then cross it as a flow --
        remote HDFS reads contend with shuffle traffic for the same
        NICs and uplinks.  Without a fabric the transfer hop is free,
        preserving the historical network-less timing.  Raises if the
        replica is not here.
        """
        block = self._blocks.get(block_id)
        if block is None:
            raise BlockNotFoundError(
                f"datanode {self.host} does not store block {block_id}"
            )
        self.bytes_served += block.size
        label = label or f"hdfs.read:blk_{block_id}"
        fabric = self.kernel.fabric
        if reader_host and reader_host != self.host and fabric is not None:
            self.remote_bytes_served += block.size
            ship = functools.partial(
                self._ship, block.size, reader_host, on_done, label
            )
            self.kernel.read_file(block.size, ship, label=label)
        else:
            self.kernel.read_file(block.size, on_done, label=label)

    def _ship(
        self,
        nbytes: int,
        reader_host: str,
        on_done: Callable[[], None],
        label: str,
    ) -> None:
        self.kernel.fabric.start_flow(
            self.host,
            reader_host,
            nbytes,
            functools.partial(_deliver, on_done),
            label=label,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"DataNode(host={self.host!r}, blocks={len(self._blocks)})"
