"""HDFS blocks and their placements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.units import MB, format_size

#: Hadoop 1 default block size; the paper's inputs are single 512 MB blocks.
DEFAULT_BLOCK_SIZE = 512 * MB


@dataclass(frozen=True)
class Block:
    """One immutable HDFS block."""

    block_id: int
    path: str
    index: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("block size may not be negative")

    def __str__(self) -> str:
        return f"blk_{self.block_id}[{self.path}#{self.index}, {format_size(self.size)}]"


@dataclass
class BlockLocation:
    """Where the replicas of one block live."""

    block: Block
    hosts: List[str] = field(default_factory=list)

    def is_local_to(self, host: str) -> bool:
        """True when ``host`` stores a replica."""
        return host in self.hosts

    def __str__(self) -> str:
        return f"{self.block} @ {','.join(self.hosts) or '<unplaced>'}"
