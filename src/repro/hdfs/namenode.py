"""The NameNode: the HDFS namespace and block map.

Implements the subset of namenode behaviour the experiments exercise:
file creation with replicated block placement, block-location lookup
for the JobTracker's locality-aware scheduling, and simple usage
reports.

Placement follows the classic HDFS policy: first replica on the
writer's node (when known), second on a different rack, third on the
second replica's rack; further replicas round-robin.  With the paper's
single-rack testbeds this degrades gracefully to "spread over distinct
hosts".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import (
    BlockNotFoundError,
    FileAlreadyExistsError,
    FileNotFoundInHDFSError,
    ReplicationError,
)
from repro.hdfs.block import DEFAULT_BLOCK_SIZE, Block, BlockLocation
from repro.hdfs.datanode import DataNode
from repro.hdfs.topology import RackTopology


@dataclass
class FileEntry:
    """One file in the namespace."""

    path: str
    size: int
    blocks: List[Block] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the file."""
        return len(self.blocks)


class NameNode:
    """Namespace, block map, and replica placement."""

    def __init__(self, topology: Optional[RackTopology] = None, replication: int = 3):
        if replication < 1:
            raise ReplicationError("replication factor must be at least 1")
        # NOTE: explicit None check -- an empty RackTopology is falsy
        # (len() == 0) but must still be shared with the caller.
        self.topology = topology if topology is not None else RackTopology()
        self.replication = replication
        self._files: Dict[str, FileEntry] = {}
        self._locations: Dict[int, BlockLocation] = {}
        self._datanodes: Dict[str, DataNode] = {}
        self._next_block_id = 1

    # -- cluster membership --------------------------------------------------

    def register_datanode(self, datanode: DataNode, rack: Optional[str] = None) -> None:
        """Add a datanode to the cluster."""
        self._datanodes[datanode.host] = datanode
        self.topology.add_host(datanode.host, rack)

    def datanode(self, host: str) -> DataNode:
        """Look up a registered datanode."""
        if host not in self._datanodes:
            raise FileNotFoundInHDFSError(f"no datanode on host {host!r}")
        return self._datanodes[host]

    @property
    def datanodes(self) -> List[DataNode]:
        """All registered datanodes."""
        return list(self._datanodes.values())

    # -- namespace --------------------------------------------------------------

    def create_file(
        self,
        path: str,
        size: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        writer_host: Optional[str] = None,
        overwrite: bool = False,
    ) -> FileEntry:
        """Create ``path`` of ``size`` bytes, placing replicated blocks.

        The file springs into existence fully written -- the
        experiments pre-populate inputs, as the paper's setup does with
        randomly generated files.
        """
        if path in self._files and not overwrite:
            raise FileAlreadyExistsError(f"{path!r} already exists")
        if size < 0:
            raise FileNotFoundInHDFSError("file size may not be negative")
        if block_size <= 0:
            raise ReplicationError("block size must be positive")
        if not self._datanodes:
            raise ReplicationError("cannot place blocks: no datanodes registered")
        if path in self._files:
            self.delete_file(path)

        entry = FileEntry(path=path, size=size)
        remaining = size
        index = 0
        while remaining > 0 or (size == 0 and index == 0):
            blk_size = min(block_size, remaining) if size > 0 else 0
            block = Block(self._next_block_id, path, index, blk_size)
            self._next_block_id += 1
            hosts = self._place_replicas(writer_host)
            location = BlockLocation(block=block, hosts=hosts)
            for host in hosts:
                self._datanodes[host].store(block)
            self._locations[block.block_id] = location
            entry.blocks.append(block)
            remaining -= blk_size
            index += 1
            if size == 0:
                break
        self._files[path] = entry
        return entry

    def delete_file(self, path: str) -> None:
        """Remove ``path`` and forget its block locations."""
        entry = self._files.pop(path, None)
        if entry is None:
            raise FileNotFoundInHDFSError(f"{path!r} does not exist")
        for block in entry.blocks:
            self._locations.pop(block.block_id, None)

    def file(self, path: str) -> FileEntry:
        """Look up a file entry."""
        entry = self._files.get(path)
        if entry is None:
            raise FileNotFoundInHDFSError(f"{path!r} does not exist")
        return entry

    def exists(self, path: str) -> bool:
        """True when ``path`` names a file."""
        return path in self._files

    def list_files(self) -> List[str]:
        """All paths in the namespace."""
        return sorted(self._files)

    # -- block map ---------------------------------------------------------------

    def locate_block(self, block_id: int) -> BlockLocation:
        """Replica locations of one block."""
        location = self._locations.get(block_id)
        if location is None:
            raise BlockNotFoundError(f"unknown block {block_id}")
        return location

    def block_locations(self, path: str) -> List[BlockLocation]:
        """Replica locations for every block of ``path``."""
        return [self.locate_block(b.block_id) for b in self.file(path).blocks]

    def open_block(
        self, block_id: int, reader_host: str, on_done, label: str = ""
    ) -> DataNode:
        """Read one block from its best replica for ``reader_host``.

        Replica choice follows the HDFS client: node-local beats
        rack-local beats off-rack (ties broken by placement order).
        Off-rack reads become fabric flows when the serving datanode's
        kernel has one attached (see
        :meth:`~repro.hdfs.datanode.DataNode.read_block`); the chosen
        datanode is returned for introspection.
        """
        location = self.locate_block(block_id)
        chosen = min(
            location.hosts,
            key=lambda host: self.topology.locality(host, [reader_host]),
        )
        datanode = self.datanode(chosen)
        datanode.read_block(
            block_id, on_done, label=label, reader_host=reader_host
        )
        return datanode

    # -- placement -----------------------------------------------------------------

    def _place_replicas(self, writer_host: Optional[str]) -> List[str]:
        """Pick replica hosts: writer first, then new racks, then
        least-loaded hosts."""
        count = min(self.replication, len(self._datanodes))
        chosen: List[str] = []
        if writer_host in self._datanodes:
            chosen.append(writer_host)
        while len(chosen) < count:
            used_racks = {self.topology.rack_of(c) for c in chosen}
            candidates = [h for h in self._datanodes if h not in chosen]
            # Prefer hosts on racks without a replica yet; break ties by
            # least stored bytes so placement stays balanced.
            candidates.sort(
                key=lambda h: (
                    self.topology.rack_of(h) in used_racks,
                    self._datanodes[h].used_bytes(),
                )
            )
            chosen.append(candidates[0])
        if not chosen:
            raise ReplicationError("no datanode available for placement")
        return chosen

    def usage_report(self) -> Dict[str, int]:
        """Bytes stored per datanode host."""
        return {host: dn.used_bytes() for host, dn in self._datanodes.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"NameNode(files={len(self._files)}, blocks={len(self._locations)}, "
            f"datanodes={len(self._datanodes)})"
        )
