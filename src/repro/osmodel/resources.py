"""Processor-shared rate resources: the virtual-time fluid model.

A :class:`RateResource` models a device that serves several claims at
once by splitting its capacity equally (egalitarian processor
sharing): *n* active claims each progress at ``rate_per_claim()``
units per second.  CPUs and disks subclass only to define how capacity
scales with the number of claims.

Because sharing is egalitarian, every active claim receives service at
the *same* instantaneous rate, so the resource can keep one cumulative
per-claim service function ``S(t)`` (the "virtual time") instead of
per-claim countdowns.  A claim admitted with ``u`` units remaining
completes when ``S`` crosses ``S_at_admit + u`` -- its *virtual finish
key* -- and a milestone at ``m`` units remaining fires when ``S``
crosses ``finish_key - m``.  Both kinds of crossing live in one lazy
min-heap keyed by virtual time, and the resource arms exactly **one**
engine event: for the earliest crossing.  The payoff over the previous
eager model (settle + re-arm every claim's event on every state
change):

* completion *order* among active claims is invariant under rate
  changes, so rate changes never reorder the heap;
* activate/pause/cancel are O(log n) heap traffic for the touched
  claim only;
* a speed-factor change (slow-node fault injection) is O(1): advance
  ``S`` at the old rate, then re-aim the single armed event;
* remaining work is *derived* (``finish_key - S``) rather than
  repeatedly decremented, so long replays cannot accumulate per-settle
  floating-point drift.

This is exact for piecewise-constant rates, which is all a
discrete-event model needs.

Claims also support **milestones**: callbacks fired at the exact
instant the remaining work crosses a threshold.  The experiment
harness uses them to trigger the high-priority job at precisely the
moment the low-priority task reaches r% progress, matching the paper's
dummy-scheduler triggers.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Set

from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.events import EventHandle

_EPS = 1e-9


class _Milestone:
    """A threshold on a claim's remaining work."""

    __slots__ = ("threshold", "callback", "fired")

    def __init__(self, threshold: float, callback: Callable[[], None]):
        self.threshold = threshold
        self.callback = callback
        self.fired = False


class Claim:
    """One unit of in-progress work on a :class:`RateResource`.

    ``on_done`` fires when ``units`` of service have been delivered.
    The owner may pause the claim (removing it from service) and later
    resume it; remaining work is preserved exactly.
    """

    __slots__ = (
        "resource",
        "initial",
        "on_done",
        "label",
        "owner",
        "active",
        "done",
        "milestones",
        "_remaining",
        "_vfinish",
        "_epoch",
        "_live_entries",
    )

    def __init__(
        self,
        resource: "RateResource",
        units: float,
        on_done: Callable[[], None],
        label: str = "",
        owner: Any = None,
    ):
        self.resource = resource
        self.initial = float(units)
        self.on_done = on_done
        self.label = label
        self.owner = owner
        self.active = False
        self.done = False
        self.milestones: List[_Milestone] = []
        #: authoritative remaining units while inactive; while active
        #: the truth is ``_vfinish - S`` (see :attr:`remaining`)
        self._remaining = float(units)
        #: virtual-time key at which this claim completes (valid while
        #: active)
        self._vfinish = 0.0
        #: bumped on every deactivation; crossing-heap entries carrying
        #: an older epoch are dead and discarded lazily
        self._epoch = 0
        #: live crossing-heap entries referencing this claim
        self._live_entries = 0

    @property
    def rate(self) -> float:
        """Current service rate (units/second); 0 when paused."""
        if not self.active:
            return 0.0
        return self.resource.rate_per_claim()

    @property
    def remaining(self) -> float:
        """Units of service still owed, settled to now."""
        if self.active:
            return max(0.0, self._vfinish - self.resource._virtual_now())
        return self._remaining

    def fraction_done(self) -> float:
        """Fraction of the initial work already served, settled to now."""
        if self.initial <= 0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - self.remaining / self.initial))

    def add_milestone(self, remaining_at: float, callback: Callable[[], None]) -> None:
        """Fire ``callback`` when remaining work first drops to
        ``remaining_at`` units.  Fires immediately (as a zero-delay
        event) if the threshold is already crossed."""
        resource = self.resource
        resource.settle()
        milestone = _Milestone(remaining_at, callback)
        self.milestones.append(milestone)
        if self.remaining <= remaining_at + _EPS:
            milestone.fired = True
            resource.sim.call_soon(callback, label=f"milestone:{self.label}")
        elif self.active:
            resource._push(self._vfinish - remaining_at, self, milestone)
            resource._rearm()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Claim(label={self.label!r}, remaining={self.remaining:.1f}, "
            f"active={self.active})"
        )


class RateResource:
    """A capacity shared equally among active claims.

    Subclasses override :meth:`rate_per_claim` to model devices whose
    aggregate throughput depends on the claim count (e.g. a multi-core
    CPU serves up to ``cores`` claims at full speed).
    """

    #: crossing heaps smaller than this are never compacted
    COMPACTION_MIN_SIZE = 64

    def __init__(self, sim: Simulation, capacity: float, name: str = "resource"):
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.name = name
        self._claims: Set[Claim] = set()
        #: degradation multiplier (slow-node fault injection); 1.0 = healthy
        self.speed_factor = 1.0
        #: cumulative per-claim service S(t); frozen while no claim is
        #: active
        self._vtime = 0.0
        #: wall-clock instant S was last brought up to date
        self._vtime_at = 0.0
        #: lazy min-heap of (virtual key, seq, claim, milestone|None,
        #: epoch) crossings; entries whose epoch lags their claim's are
        #: dead
        self._crossings: list = []
        self._cross_seq = 0
        self._stale = 0
        #: the single armed engine event, aimed at the earliest crossing
        self._armed: Optional[EventHandle] = None

    # -- policy --------------------------------------------------------

    def rate_per_claim(self) -> float:
        """Units/second each active claim currently receives."""
        n = len(self._claims)
        if n == 0:
            return self.capacity * self.speed_factor
        return self.capacity * self.speed_factor / n

    def set_speed_factor(self, factor: float) -> None:
        """Degrade (or restore) the device to ``factor`` of nominal speed.

        In-flight service is settled at the old rate first, then the
        single armed crossing event is re-aimed -- O(1), where the
        eager model re-armed one event per active claim.  Models
        slow-node faults (failing disk, thermal throttling, a noisy
        neighbour).
        """
        if factor <= 0:
            raise SimulationError(f"{self.name}: speed factor must be positive")
        self._advance()
        self.speed_factor = float(factor)
        self._rearm()

    # -- claim lifecycle -------------------------------------------------

    def submit(
        self,
        units: float,
        on_done: Callable[[], None],
        label: str = "",
        owner: Any = None,
    ) -> Claim:
        """Create and immediately activate a claim for ``units`` of work."""
        claim = Claim(self, units, on_done, label=label, owner=owner)
        self.activate(claim)
        return claim

    def create(
        self,
        units: float,
        on_done: Callable[[], None],
        label: str = "",
        owner: Any = None,
    ) -> Claim:
        """Create a claim without activating it (caller activates later)."""
        return Claim(self, units, on_done, label=label, owner=owner)

    def activate(self, claim: Claim) -> None:
        """Begin (or resume) serving ``claim``."""
        if claim.active or claim.done:
            return
        self._advance()
        claim.active = True
        claim._vfinish = self._vtime + claim._remaining
        self._claims.add(claim)
        self._push(claim._vfinish, claim, None)
        for milestone in claim.milestones:
            if not milestone.fired:
                self._push(claim._vfinish - milestone.threshold, claim, milestone)
        self._rearm()

    def pause(self, claim: Claim) -> None:
        """Stop serving ``claim``, preserving its remaining work."""
        if not claim.active:
            return
        self._advance()
        claim._remaining = max(0.0, claim._vfinish - self._vtime)
        claim.active = False
        self._claims.discard(claim)
        self._invalidate(claim)
        self._rearm()

    def cancel(self, claim: Claim) -> None:
        """Abort ``claim`` entirely (completion callback never fires)."""
        self.pause(claim)
        claim.done = True

    # -- virtual clock ----------------------------------------------------

    def settle(self) -> None:
        """Bring the virtual clock up to now.

        Purely an accounting sync -- derived views (remaining work,
        fractions) are exact without it -- but model code that is about
        to read several of them at one instant may call this once
        instead of paying the projection per read.
        """
        self._advance()

    def _virtual_now(self) -> float:
        """S projected to the current instant (no state mutation)."""
        elapsed = self.sim.now - self._vtime_at
        if elapsed > 0 and self._claims:
            return self._vtime + self.rate_per_claim() * elapsed
        return self._vtime

    def _advance(self) -> None:
        """Accrue service since the last update into the virtual clock.

        Must run *before* any mutation of the claim set or the speed
        factor -- the elapsed interval was served under the old rate
        (the piecewise-constant contract).
        """
        now = self.sim.now
        elapsed = now - self._vtime_at
        if elapsed > 0:
            if self._claims:
                self._vtime += self.rate_per_claim() * elapsed
            self._vtime_at = now
        elif not self._claims:
            self._vtime_at = now

    # -- crossing heap ------------------------------------------------------

    def _push(self, vkey: float, claim: Claim, milestone: Optional[_Milestone]) -> None:
        self._cross_seq += 1
        heapq.heappush(
            self._crossings, (vkey, self._cross_seq, claim, milestone, claim._epoch)
        )
        claim._live_entries += 1

    def _invalidate(self, claim: Claim) -> None:
        """Mark every heap entry of ``claim`` dead (lazily discarded)."""
        claim._epoch += 1
        self._stale += claim._live_entries
        claim._live_entries = 0
        if (
            len(self._crossings) >= self.COMPACTION_MIN_SIZE
            and self._stale * 2 > len(self._crossings)
        ):
            self._crossings = [
                entry for entry in self._crossings if entry[4] == entry[2]._epoch
            ]
            heapq.heapify(self._crossings)
            self._stale = 0

    def _peek_live(self):
        crossings = self._crossings
        while crossings:
            entry = crossings[0]
            if entry[4] != entry[2]._epoch:
                heapq.heappop(crossings)
                self._stale -= 1
                continue
            return entry
        return None

    # -- the armed event ----------------------------------------------------

    def _rearm(self) -> None:
        """Aim the single engine event at the earliest live crossing."""
        head = self._peek_live()
        armed = self._armed
        if head is None:
            if armed is not None and armed.pending:
                armed.cancel()
            self._armed = None
            return
        rate = self.rate_per_claim()
        eta = (head[0] - self._vtime) / rate
        if eta < 0.0:
            eta = 0.0
        at = self.sim.now + eta
        if armed is not None and armed.pending:
            self._armed = self.sim.reschedule(armed, at)
        else:
            self._armed = self.sim.schedule_at(
                at, self._on_crossing, label=f"{self.name}.crossing"
            )

    def _due(self, vkey: float) -> bool:
        """Is the crossing at ``vkey`` due at the current instant?

        True when S has (numerically) reached the key, and also when
        the residual is so small that re-arming could not advance the
        wall clock -- re-arming then would spin on zero-delay events.
        """
        delta = vkey - self._vtime
        if delta <= _EPS + 1e-12 * abs(vkey):
            return True
        now = self.sim.now
        return now + delta / self.rate_per_claim() <= now

    def _on_crossing(self) -> None:
        """The armed event fired: service every crossing now due.

        Callbacks may re-enter the resource (a completed work item
        typically activates its successor's claim here), so the loop
        re-reads the clock and the heap head after every callback.
        """
        self._armed = None
        while True:
            self._advance()
            head = self._peek_live()
            if head is None or not self._due(head[0]):
                break
            heapq.heappop(self._crossings)
            _, _, claim, milestone, _ = head
            claim._live_entries -= 1
            if milestone is not None:
                milestone.fired = True
                milestone.callback()
            else:
                self._complete(claim)
        self._rearm()

    def _complete(self, claim: Claim) -> None:
        # Guard against float drift: the crossing fired, so the claim
        # is done regardless of the last few ulps of S.
        claim._remaining = 0.0
        claim._vfinish = self._vtime
        claim.active = False
        claim.done = True
        self._claims.discard(claim)
        self._invalidate(claim)
        # Unfired milestones are vacuously crossed at completion.
        for milestone in claim.milestones:
            if not milestone.fired:
                milestone.fired = True
                self.sim.call_soon(
                    milestone.callback, label=f"{self.name}.milestone:{claim.label}"
                )
        claim.on_done()

    @property
    def active_claims(self) -> int:
        """Number of claims currently being served."""
        return len(self._claims)

    @property
    def virtual_time(self) -> float:
        """Cumulative per-claim service delivered so far (introspection
        for tests and benchmarks)."""
        return self._virtual_now()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r}, claims={len(self._claims)})"


class CpuResource(RateResource):
    """A multi-core CPU.

    Rates are expressed in core-seconds per second.  Up to ``cores``
    claims run at one core each; beyond that the cores are shared
    equally, matching the Linux CFS behaviour for equal-priority
    CPU-bound processes.
    """

    def __init__(self, sim: Simulation, cores: int, name: str = "cpu"):
        super().__init__(sim, capacity=float(cores), name=name)
        self.cores = cores

    def rate_per_claim(self) -> float:
        n = len(self._claims)
        if n == 0:
            return self.speed_factor
        return min(1.0, self.cores / n) * self.speed_factor


class DiskResource(RateResource):
    """Streaming disk bandwidth, equally shared among active streams.

    Capacity is bytes/second of sequential transfer.  Seek costs for
    short bursts are handled separately by
    :meth:`repro.osmodel.disk.DiskDevice.burst_time`; long streams are
    dominated by transfer time.
    """

    def __init__(self, sim: Simulation, bandwidth: float, name: str = "disk"):
        super().__init__(sim, capacity=bandwidth, name=name)
