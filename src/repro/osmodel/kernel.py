"""Node kernel facade.

One :class:`NodeKernel` per simulated machine ties together the CPU,
the disk, the virtual memory manager and the process table, and offers
the small syscall-like surface the Hadoop layer uses:

* :meth:`spawn` / :meth:`signal` / :meth:`reap` -- process lifecycle
  and POSIX signalling;
* :meth:`charge_allocation` -- memory allocation with direct-reclaim
  cost accounting;
* :meth:`read_file` / :meth:`write_file` -- streaming disk I/O
  through the page cache.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import NoSuchProcessError
from repro.osmodel.config import NodeConfig
from repro.osmodel.disk import DiskDevice
from repro.osmodel.process import ExitReason, OSProcess, ProcessState
from repro.osmodel.resources import Claim, CpuResource
from repro.osmodel.signals import Signal
from repro.osmodel.vmm import MemoryHeadroom, VirtualMemoryManager
from repro.sim.engine import Simulation
from repro.units import page_align


@dataclass(slots=True)
class AllocationCharge:
    """Time cost of one memory allocation."""

    nbytes: int
    touch_time: float
    reclaim_time: float
    swapped_out: int

    @property
    def total_time(self) -> float:
        """Seconds the allocating process is busy/stalled."""
        return self.touch_time + self.reclaim_time


class SimClock:
    """A picklable ``now()`` callable bound to one simulation.

    Components that only need the current virtual time (e.g. the VMM)
    hold one of these instead of a ``lambda: sim.now`` closure, so the
    whole object graph survives checkpoint pickling.
    """

    __slots__ = ("sim",)

    def __init__(self, sim: Simulation):
        self.sim = sim

    def __call__(self) -> float:
        return self.sim.now


class NodeKernel:
    """The operating system of one simulated node."""

    def __init__(self, sim: Simulation, config: Optional[NodeConfig] = None):
        self.sim = sim
        self.config = config or NodeConfig()
        self.cpu = CpuResource(sim, self.config.cores, name=f"{self.config.hostname}.cpu")
        self.disk = DiskDevice(sim, self.config, name=f"{self.config.hostname}.disk")
        self.vmm = VirtualMemoryManager(
            self.config,
            self.disk,
            live_processes=self.live_processes,
            now=SimClock(sim),
        )
        self._processes: Dict[int, OSProcess] = {}
        self._next_pid = 1000
        self.signals_sent = 0
        #: processes reaped by the OOM killer (RAM + swap exhausted)
        self.oom_kills = 0
        #: the cluster's network fabric, attached by
        #: :class:`repro.hadoop.cluster.HadoopCluster` when one is
        #: configured; None keeps network-free behaviour (shuffle and
        #: remote reads fall back to local disk stand-ins)
        self.fabric = None

    # -- process table -----------------------------------------------------

    def live_processes(self) -> List[OSProcess]:
        """All processes that are not dead."""
        return [proc for proc in self._processes.values() if proc.alive]

    def process(self, pid: int) -> OSProcess:
        """Look up a live process by pid."""
        proc = self._processes.get(pid)
        if proc is None or not proc.alive:
            raise NoSuchProcessError(f"no such process: pid {pid}")
        return proc

    def spawn(self, name: str) -> OSProcess:
        """Create a new process in the RUNNING state."""
        pid = self._next_pid
        self._next_pid += 1
        proc = OSProcess(self, pid, name)
        self._processes[pid] = proc
        self.trace("os.spawn", pid=pid, name=name)
        return proc

    def signal(self, pid: int, sig: Signal) -> None:
        """Deliver a POSIX signal to a live process."""
        proc = self.process(pid)
        self.signals_sent += 1
        self.trace("os.signal", pid=pid, sig=sig.value, name=proc.name)
        proc.deliver(sig)

    def reap(self, proc: OSProcess) -> None:
        """Release a dead process's resources (called by the process)."""
        self.vmm.release_process(proc)
        self.trace(
            "os.exit",
            pid=proc.pid,
            name=proc.name,
            reason=proc.exit_reason.value if proc.exit_reason else "?",
        )

    def oom_kill(self, proc: OSProcess, why: str = "") -> None:
        """The OOM killer fires: reap ``proc`` with ``ExitReason.OOM``.

        The model charges the failed allocation to the *requesting*
        process (malloc-failure semantics): it is the deterministic
        choice, and in the memory-oversubscribed replays the requester
        is the memory-hungry task whose demand broke Section III-A's
        constraint.  Callers catch
        :class:`~repro.errors.OutOfMemoryError` from the allocation
        paths and route it here instead of letting it unwind the event
        loop.
        """
        self.oom_kills += 1
        self.trace("os.oom-kill", pid=proc.pid, name=proc.name, why=why)
        proc.die_oom()

    def note_process_stopped(self, proc: OSProcess) -> None:
        """Bookkeeping hook invoked when a process enters STOPPED."""
        self.trace("os.stopped", pid=proc.pid, name=proc.name)

    def note_process_resumed(self, proc: OSProcess) -> None:
        """Bookkeeping hook invoked when a process leaves STOPPED."""
        self.trace("os.resumed", pid=proc.pid, name=proc.name)

    # -- device speed ---------------------------------------------------------

    def set_speed_factor(self, factor: float) -> None:
        """Degrade (or restore) every device on the node to ``factor``
        of nominal speed.

        The single entry point for slow-node faults and thermal
        models: with the virtual-time resource core each device is one
        O(1) rate update (advance the virtual clock, re-aim one armed
        event) -- no per-claim rescheduling anywhere.
        """
        self.cpu.set_speed_factor(factor)
        self.disk.read_stream.set_speed_factor(factor)
        self.disk.write_stream.set_speed_factor(factor)
        self.trace("os.speed", factor=factor)

    # -- memory ---------------------------------------------------------------

    def charge_allocation(
        self, proc: OSProcess, nbytes: int, dirty: bool = True
    ) -> AllocationCharge:
        """Allocate ``nbytes`` for ``proc``; returns the time to charge.

        Allocation proceeds in chunks so the reclaimer sees the
        allocator's own resident set grow (large bursts increasingly
        self-swap, as in Figure 4).  Only the direct-reclaim share of
        the page-out I/O stalls the allocator; kswapd writes the rest
        back asynchronously.
        """
        nbytes = page_align(nbytes)
        chunk = page_align(self.config.alloc_chunk_bytes)
        remaining = nbytes
        reclaim_io = 0.0
        swapped_total = 0
        cache_freed = 0
        while remaining > 0:
            step = min(chunk, remaining)
            reclaim = self.vmm.make_room(proc, step)
            proc.image.allocate(step, dirty=dirty, now=self.sim.now)
            reclaim_io += reclaim.time_cost
            swapped_total += reclaim.swapped_out
            cache_freed += reclaim.freed_from_cache
            remaining -= step
        touch_time = nbytes / self.config.mem_touch_bw if dirty else 0.0
        stall = reclaim_io * self.config.direct_reclaim_fraction
        if swapped_total > 0:
            self.trace(
                "os.pageout",
                pid=proc.pid,
                swapped=swapped_total,
                cache_freed=cache_freed,
                cost=round(stall, 3),
            )
        return AllocationCharge(
            nbytes=nbytes,
            touch_time=touch_time,
            reclaim_time=stall,
            swapped_out=swapped_total,
        )

    def release_memory(self, proc: OSProcess, nbytes: int) -> int:
        """Free part of a process's image (GC returning heap to the OS)."""
        freed = proc.image.free(nbytes, self.sim.now)
        self.trace("os.free", pid=proc.pid, freed=freed)
        return freed

    # -- file I/O ------------------------------------------------------------

    def read_file(
        self, nbytes: int, on_done: Callable[[], None], label: str = "read", owner=None
    ) -> Claim:
        """Stream ``nbytes`` from disk; fills the page cache on completion."""
        finish = functools.partial(self._finish_read, nbytes, on_done)
        return self.disk.stream_read(nbytes, finish, label=label, owner=owner)

    def _finish_read(self, nbytes: int, on_done: Callable[[], None]) -> None:
        self.vmm.cache_file_read(nbytes)
        on_done()

    def write_file(
        self, nbytes: int, on_done: Callable[[], None], label: str = "write", owner=None
    ) -> Claim:
        """Stream ``nbytes`` to disk."""
        return self.disk.stream_write(nbytes, on_done, label=label, owner=owner)

    # -- introspection ----------------------------------------------------------

    def memory_headroom(self) -> MemoryHeadroom:
        """One-pass memory/swap headroom snapshot (heartbeats and the
        suspend-admission gate read this)."""
        return self.vmm.headroom()

    def memory_summary(self) -> Dict[str, int]:
        """Snapshot of RAM/cache/swap usage (bytes)."""
        return {
            "usable_ram": self.config.usable_ram_bytes,
            "free_ram": self.vmm.free_ram(),
            "process_resident": self.vmm.used_by_processes(),
            "page_cache": self.vmm.page_cache.size,
            "swap_used": self.vmm.swap.used,
        }

    def stopped_processes(self) -> List[OSProcess]:
        """All processes currently in the STOPPED state."""
        return [p for p in self.live_processes() if p.state is ProcessState.STOPPED]

    def trace(self, label: str, **fields) -> None:
        """Record a trace event tagged with this node's hostname."""
        self.sim.trace_log.record(
            self.sim.now, label, host=self.config.hostname, **fields
        )

    def check_invariants(self) -> None:
        """Cross-module consistency checks used by the test suite."""
        self.vmm.check_invariants()
        for proc in self.live_processes():
            proc.image.check_invariants()
            swapped_accounted = self.vmm.swap.swapped_bytes(proc.pid)
            if swapped_accounted != proc.image.swapped:
                raise NoSuchProcessError(
                    f"swap accounting mismatch for pid {proc.pid}: "
                    f"area={swapped_accounted} image={proc.image.swapped}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"NodeKernel(host={self.config.hostname!r}, "
            f"procs={len(self.live_processes())})"
        )


__all__ = ["NodeKernel", "AllocationCharge", "ExitReason"]
