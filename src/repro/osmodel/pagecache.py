"""File-system page cache.

Hadoop workloads stream large files, so the cache mostly holds
recently-read HDFS block data.  With ``swappiness = 0`` (the
configuration the paper uses) the reclaimer shrinks this cache all the
way to its floor before touching any process page; with a higher
swappiness the two victim classes are mixed proportionally
(see :mod:`repro.osmodel.vmm`).

Cache pages are clean by definition here (write-back of dirty file
pages is modelled as part of the writing task's stream I/O), so
shrinking the cache is free.
"""

from __future__ import annotations

from repro.errors import OSModelError
from repro.units import format_size, page_align


class PageCache:
    """Byte-accounted, page-aligned file-system cache."""

    def __init__(self, min_bytes: int = 0):
        if min_bytes < 0:
            raise OSModelError("page cache floor may not be negative")
        self.min_bytes = page_align(min_bytes)
        self.size = 0
        self.total_inserted = 0
        self.total_evicted = 0

    def insert(self, nbytes: int, room: int) -> int:
        """Cache up to ``nbytes`` of freshly-read file data.

        ``room`` is the free RAM the kernel is willing to dedicate; the
        cache never forces reclaim of process pages to grow (reads
        simply bypass the cache when memory is tight).  Returns bytes
        actually cached.
        """
        if nbytes < 0:
            raise OSModelError("cannot insert a negative size")
        take = min(page_align(nbytes), max(0, room))
        self.size += take
        self.total_inserted += take
        return take

    def shrink(self, target: int) -> int:
        """Evict up to ``target`` bytes, respecting the floor.

        Returns bytes actually freed.  Eviction of clean cache pages
        costs no I/O.
        """
        if target <= 0:
            return 0
        evictable = max(0, self.size - self.min_bytes)
        take = min(page_align(target), evictable)
        self.size -= take
        self.total_evicted += take
        return take

    @property
    def evictable(self) -> int:
        """Bytes the reclaimer could free from the cache right now."""
        return max(0, self.size - self.min_bytes)

    def check_invariants(self) -> None:
        """Raise if accounting broke."""
        if self.size < 0:
            raise OSModelError(f"page cache size negative: {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PageCache(size={format_size(self.size)})"
