"""Per-process memory accounting.

Tracking millions of 4 KB pages individually would make the simulator
unusably slow, so a process's address space is accounted as four
byte-granular pools, always multiples of the page size:

* ``resident_clean`` -- mapped pages identical to their backing store
  (program text, buffers read from disk and not modified).  Reclaiming
  them is free: the kernel just drops them.
* ``resident_dirty`` -- anonymous/modified pages.  Reclaiming them
  requires writing to swap.
* ``swapped`` -- pages currently in the swap area.  Touching them
  again costs a page-in.
* (implicitly) ``virtual = resident_clean + resident_dirty + swapped``.

The invariant ``virtual == resident + swapped`` is maintained by
construction and checked by :meth:`MemoryImage.check_invariants`,
which the property-based tests drive hard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OSModelError
from repro.units import format_size, page_align


@dataclass
class PageoutPlan:
    """How a reclaim request against one image will be satisfied."""

    drop_clean: int
    swap_dirty: int

    @property
    def total(self) -> int:
        """Bytes freed from RAM by this plan."""
        return self.drop_clean + self.swap_dirty


class MemoryImage:
    """The memory footprint of one simulated process."""

    __slots__ = ("resident_clean", "resident_dirty", "swapped", "last_touched")

    def __init__(self) -> None:
        self.resident_clean = 0
        self.resident_dirty = 0
        self.swapped = 0
        #: Virtual time of the most recent allocation/touch; the
        #: reclaimer uses it as its (coarse) LRU clock.
        self.last_touched = 0.0

    # -- derived quantities ------------------------------------------------

    @property
    def resident(self) -> int:
        """Resident set size in bytes (RSS)."""
        return self.resident_clean + self.resident_dirty

    @property
    def virtual(self) -> int:
        """Total allocated address space in bytes."""
        return self.resident + self.swapped

    # -- mutation ------------------------------------------------------------

    def allocate(self, nbytes: int, dirty: bool, now: float) -> int:
        """Map ``nbytes`` new bytes (page aligned); returns bytes added."""
        if nbytes < 0:
            raise OSModelError("cannot allocate a negative size")
        aligned = page_align(nbytes)
        if dirty:
            self.resident_dirty += aligned
        else:
            self.resident_clean += aligned
        self.last_touched = now
        return aligned

    def free(self, nbytes: int, now: float) -> int:
        """Unmap up to ``nbytes``, preferring swapped then clean pages
        (cheapest to discard); returns bytes actually freed."""
        aligned = page_align(nbytes)
        remaining = aligned
        take = min(self.swapped, remaining)
        self.swapped -= take
        remaining -= take
        take = min(self.resident_clean, remaining)
        self.resident_clean -= take
        remaining -= take
        take = min(self.resident_dirty, remaining)
        self.resident_dirty -= take
        remaining -= take
        self.last_touched = now
        return aligned - remaining

    def dirty_all(self, now: float) -> None:
        """Mark every resident page dirty (memset over the whole image)."""
        self.resident_dirty += self.resident_clean
        self.resident_clean = 0
        self.last_touched = now

    def plan_pageout(self, target: int) -> PageoutPlan:
        """Plan the eviction of up to ``target`` resident bytes.

        Clean pages are dropped first (free), dirty pages are swapped,
        mirroring the kernel's preference ("clean pages ... get
        prioritized when performing eviction").
        """
        if target <= 0:
            return PageoutPlan(0, 0)
        target = min(page_align(target), self.resident)
        drop_clean = min(self.resident_clean, target)
        swap_dirty = min(self.resident_dirty, target - drop_clean)
        return PageoutPlan(drop_clean=drop_clean, swap_dirty=swap_dirty)

    def apply_pageout(self, plan: PageoutPlan) -> None:
        """Execute a plan produced by :meth:`plan_pageout`."""
        if plan.drop_clean > self.resident_clean or plan.swap_dirty > self.resident_dirty:
            raise OSModelError("page-out plan exceeds resident pages")
        self.resident_clean -= plan.drop_clean
        self.resident_dirty -= plan.swap_dirty
        self.swapped += plan.swap_dirty

    def page_in(self, nbytes: int, now: float) -> int:
        """Fault up to ``nbytes`` back from swap; returns bytes paged in.

        Pages read back from swap are clean until rewritten.
        """
        take = min(page_align(nbytes), self.swapped)
        self.swapped -= take
        self.resident_clean += take
        self.last_touched = now
        return take

    def touch(self, now: float) -> None:
        """Record a memory access for LRU purposes."""
        self.last_touched = now

    # -- verification ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`~repro.errors.OSModelError` if accounting broke."""
        for name in ("resident_clean", "resident_dirty", "swapped"):
            value = getattr(self, name)
            if value < 0:
                raise OSModelError(f"memory accounting went negative: {name}={value}")
        if self.virtual != self.resident + self.swapped:  # pragma: no cover
            raise OSModelError("virtual != resident + swapped")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MemoryImage(rss={format_size(self.resident)}, "
            f"dirty={format_size(self.resident_dirty)}, "
            f"swapped={format_size(self.swapped)})"
        )
