"""Configuration of one simulated node's hardware and kernel policy.

The defaults mirror the paper's testbed: 4 GB of physical RAM, a
single spinning disk, swap on the same disk, and the Linux
``swappiness`` parameter set to 0 (evict file-system cache before
process memory), which the paper calls out as the Hadoop best
practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import GB, MB


@dataclass
class NodeConfig:
    """Hardware sizes, bandwidths and kernel policy knobs for a node.

    Attributes
    ----------
    ram_bytes:
        Physical memory size.  The paper's nodes have 4 GB.
    os_reserved_bytes:
        Memory permanently claimed by the OS and the Hadoop daemons
        (TaskTracker/DataNode JVMs).  The paper notes "the rest of the
        memory is needed by the Hadoop framework and by the operating
        system services".
    swap_bytes:
        Size of the swap area.  Must be large enough for every
        suspended task (Section III-A's constraint); experiments use a
        generous default.
    cores:
        CPU cores.  Tasks are CPU-bound parsers, processor-shared when
        more runnable processes than cores exist.
    disk_read_bw / disk_write_bw:
        Sequential disk bandwidth in bytes/second.
    disk_seek_time:
        Seek+rotational penalty charged once per I/O burst; page-out
        clustering amortises it (Section III-A).
    swap_cluster_bytes:
        Batch size for clustered page-out writes.
    mem_touch_bw:
        Rate at which a process can dirty pages (memset-style) -- the
        setup phase of memory-hungry tasks writes random values to all
        allocated memory.
    mem_read_bw:
        Rate at which a process re-reads its resident memory
        (finalisation phase).
    swappiness:
        0..100 as in Linux.  0 (default, per Hadoop best practice)
        evicts the whole page cache before any process page; higher
        values let the reclaimer take process pages while cache
        remains.
    page_cache_min_bytes:
        Floor below which the page cache is not shrunk (the kernel
        always keeps a little cache for metadata).
    lru_overshoot:
        Strength of the approximate-LRU over-eviction: reclaiming
        ``T`` bytes from a victim set of resident size ``R`` actually
        evicts ``T * (1 + lru_overshoot * T / R)``.  This reproduces
        the paper's observation that "swapped data grows more than
        linearly because of an approximate implementation of the page
        replacement algorithm in Linux".
    working_set_protect_bytes:
        Amount of a *running* process's most-recently-used memory that
        the reclaimer will not touch; pressure beyond that spills onto
        the running process's cold pages (so a memory-hungry ``th``
        can self-swap, as observed in Figure 4 where ``tl`` loses
        fewer bytes than naive accounting predicts).
    lru_scan_leak:
        How much of a reclaim "leaks" onto the cold pages of *running*
        processes even while suspended processes still hold resident
        memory.  The kernel's clock-style scan is approximate: it
        visits victim pools roughly proportionally to their sizes.
        The share taken from running processes is
        ``lru_scan_leak * running_cold / (running_cold + stopped_resident)``,
        so small reclaims against a large suspended task hit it almost
        exclusively (the behaviour the paper relies on), while a
        multi-GB allocation burst increasingly self-swaps (why Figure
        4's paged-bytes tops out below ``tl``'s full footprint).
    direct_reclaim_fraction:
        Share of the page-out I/O that stalls the allocating process
        (direct reclaim); the rest is written back asynchronously by
        kswapd, overlapped with the allocator's compute.
    fault_in_sync_fraction:
        Share of swap-in I/O that stalls the resumed process; the rest
        overlaps with its compute thanks to swap readahead.
    alloc_chunk_bytes:
        Granularity at which a large allocation claims frames;
        reclaim decisions interleave with the allocator's own resident
        growth, which is what lets the LRU leak engage.
    sigtstp_handler_latency:
        Time a task's SIGTSTP handler takes to tidy external state
        before the process actually stops.
    """

    ram_bytes: int = 4 * GB
    os_reserved_bytes: int = 1 * GB
    swap_bytes: int = 8 * GB
    cores: int = 2
    disk_read_bw: float = 110 * MB
    disk_write_bw: float = 90 * MB
    disk_seek_time: float = 0.008
    swap_cluster_bytes: int = 1 * MB
    mem_touch_bw: float = 1200 * MB
    mem_read_bw: float = 2400 * MB
    swappiness: int = 0
    page_cache_min_bytes: int = 64 * MB
    lru_overshoot: float = 0.35
    lru_scan_leak: float = 0.45
    working_set_protect_bytes: int = 512 * MB
    direct_reclaim_fraction: float = 0.45
    fault_in_sync_fraction: float = 0.55
    alloc_chunk_bytes: int = 128 * MB
    sigtstp_handler_latency: float = 0.15
    hostname: str = "node"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigurationError` on nonsense."""
        if self.ram_bytes <= 0:
            raise ConfigurationError("ram_bytes must be positive")
        if not 0 <= self.os_reserved_bytes < self.ram_bytes:
            raise ConfigurationError(
                "os_reserved_bytes must be within [0, ram_bytes)"
            )
        if self.swap_bytes < 0:
            raise ConfigurationError("swap_bytes may not be negative")
        if self.cores < 1:
            raise ConfigurationError("a node needs at least one core")
        for name in ("disk_read_bw", "disk_write_bw", "mem_touch_bw", "mem_read_bw"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0 <= self.swappiness <= 100:
            raise ConfigurationError("swappiness must be in [0, 100]")
        if self.lru_overshoot < 0:
            raise ConfigurationError("lru_overshoot may not be negative")
        if self.lru_scan_leak < 0:
            raise ConfigurationError("lru_scan_leak may not be negative")
        if not 0 <= self.direct_reclaim_fraction <= 1:
            raise ConfigurationError("direct_reclaim_fraction must be in [0, 1]")
        if not 0 <= self.fault_in_sync_fraction <= 1:
            raise ConfigurationError("fault_in_sync_fraction must be in [0, 1]")
        if self.alloc_chunk_bytes <= 0:
            raise ConfigurationError("alloc_chunk_bytes must be positive")
        if self.disk_seek_time < 0:
            raise ConfigurationError("disk_seek_time may not be negative")
        if self.sigtstp_handler_latency < 0:
            raise ConfigurationError("sigtstp_handler_latency may not be negative")

    @property
    def usable_ram_bytes(self) -> int:
        """RAM available to user processes and the page cache."""
        return self.ram_bytes - self.os_reserved_bytes

    def replace(self, **overrides) -> "NodeConfig":
        """Return a copy with the given fields replaced."""
        import dataclasses

        return dataclasses.replace(self, **overrides)
