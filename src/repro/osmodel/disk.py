"""Disk device model.

One node has one spinning disk shared by HDFS data, MapReduce
temporary files, and the swap area -- as on the paper's testbed.  Two
access styles are modelled:

* **streams**: long sequential transfers (HDFS block reads, output
  writes) served through a processor-shared
  :class:`~repro.osmodel.resources.DiskResource`;
* **bursts**: synchronous page-out/page-in batches issued by the
  virtual memory manager.  Burst time = one seek per write cluster +
  transfer at sequential bandwidth, reflecting the clustered page-out
  behaviour the paper describes ("page-out operations are generally
  clustered to improve disk throughput").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.osmodel.config import NodeConfig
from repro.osmodel.resources import Claim, DiskResource
from repro.sim.engine import Simulation


@dataclass(slots=True)
class BurstCost:
    """Breakdown of a synchronous I/O burst's cost."""

    bytes: int
    seeks: int
    seek_time: float
    transfer_time: float

    @property
    def total_time(self) -> float:
        """Seek plus transfer time in seconds."""
        return self.seek_time + self.transfer_time


class DiskDevice:
    """A single spindle with separate read/write sequential bandwidth."""

    def __init__(self, sim: Simulation, config: NodeConfig, name: str = "disk"):
        self.sim = sim
        self.config = config
        self.name = name
        self.read_stream = DiskResource(sim, config.disk_read_bw, name=f"{name}.read")
        self.write_stream = DiskResource(
            sim, config.disk_write_bw, name=f"{name}.write"
        )
        self.bytes_read = 0
        self.bytes_written = 0
        self.burst_seconds = 0.0

    # -- streaming I/O ----------------------------------------------------

    def stream_read(self, nbytes: int, on_done, label: str = "", owner=None) -> Claim:
        """Start a shared sequential read of ``nbytes``; ``on_done`` fires
        at completion."""
        self.bytes_read += nbytes
        return self.read_stream.submit(nbytes, on_done, label=label, owner=owner)

    def stream_write(self, nbytes: int, on_done, label: str = "", owner=None) -> Claim:
        """Start a shared sequential write of ``nbytes``."""
        self.bytes_written += nbytes
        return self.write_stream.submit(nbytes, on_done, label=label, owner=owner)

    # -- synchronous bursts (swap traffic) ---------------------------------

    def write_burst_cost(self, nbytes: int) -> BurstCost:
        """Cost of writing ``nbytes`` of page-out clusters synchronously."""
        return self._burst_cost(nbytes, self.config.disk_write_bw)

    def read_burst_cost(self, nbytes: int) -> BurstCost:
        """Cost of faulting ``nbytes`` back in from swap synchronously.

        Page-in is less clustered than page-out (faults arrive in page
        order but interleaved with compute), so we charge seeks on the
        same cluster size; the dominant term is still the transfer.
        """
        return self._burst_cost(nbytes, self.config.disk_read_bw)

    def _burst_cost(self, nbytes: int, bandwidth: float) -> BurstCost:
        if nbytes <= 0:
            return BurstCost(bytes=0, seeks=0, seek_time=0.0, transfer_time=0.0)
        cluster = max(1, self.config.swap_cluster_bytes)
        seeks = -(-nbytes // cluster)  # ceil division
        seek_time = seeks * self.config.disk_seek_time
        transfer_time = nbytes / bandwidth
        return BurstCost(
            bytes=nbytes, seeks=seeks, seek_time=seek_time, transfer_time=transfer_time
        )

    def account_burst(self, cost: BurstCost, write: bool) -> None:
        """Record a burst in the device counters."""
        if write:
            self.bytes_written += cost.bytes
        else:
            self.bytes_read += cost.bytes
        self.burst_seconds += cost.total_time

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DiskDevice(name={self.name!r}, read={self.bytes_read}, "
            f"written={self.bytes_written})"
        )
