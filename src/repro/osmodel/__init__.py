"""Simulated operating system for one cluster node.

This package models the pieces of a Unix kernel that the paper's
preemption primitive leans on:

* **processes** with POSIX signal semantics — ``SIGTSTP`` stops a
  process (running its handler first), ``SIGCONT`` resumes it,
  ``SIGKILL`` destroys it (:mod:`repro.osmodel.process`,
  :mod:`repro.osmodel.signals`);
* **memory management** — per-process resident/dirty/swapped page
  accounting, a file-system page cache that is evicted first
  (swappiness = 0, the Hadoop best practice the paper follows), a swap
  device, and an approximate-LRU reclaimer that prefers clean pages
  and suspended processes and over-evicts under pressure, reproducing
  the super-linear swap growth of Figure 4
  (:mod:`repro.osmodel.memory`, :mod:`repro.osmodel.pagecache`,
  :mod:`repro.osmodel.swap`, :mod:`repro.osmodel.vmm`);
* **CPU and disk** as processor-shared rate resources
  (:mod:`repro.osmodel.resources`, :mod:`repro.osmodel.cpu`,
  :mod:`repro.osmodel.disk`);
* a **work engine** that executes a process's plan of work items
  (sleep, CPU work, memory allocation, memory touch, disk I/O),
  supports exact mid-item suspension/resumption, and reports progress
  (:mod:`repro.osmodel.work`);
* a **node kernel facade** tying the above together
  (:mod:`repro.osmodel.kernel`).
"""

from repro.osmodel.config import NodeConfig
from repro.osmodel.kernel import NodeKernel
from repro.osmodel.process import OSProcess, ProcessState
from repro.osmodel.signals import Signal
from repro.osmodel.work import (
    CpuWorkItem,
    DiskWriteItem,
    MemAllocItem,
    MemTouchItem,
    SleepItem,
    WorkEngine,
    WorkItem,
    WorkPlan,
)

__all__ = [
    "NodeConfig",
    "NodeKernel",
    "OSProcess",
    "ProcessState",
    "Signal",
    "WorkEngine",
    "WorkPlan",
    "WorkItem",
    "SleepItem",
    "CpuWorkItem",
    "MemAllocItem",
    "MemTouchItem",
    "DiskWriteItem",
]
