"""POSIX signal semantics for simulated processes.

The paper's preemption primitive is built on three signals:

* ``SIGTSTP`` -- polite stop.  Unlike ``SIGSTOP`` it can be caught, so
  a task may run a handler that tidies external state (close network
  connections, flush pipes) before stopping.  The model charges the
  configured handler latency between delivery and the actual stop.
* ``SIGCONT`` -- resume a stopped process.
* ``SIGKILL`` -- immediate destruction; cannot be caught.

``SIGSTOP`` (uncatchable stop) and ``SIGTERM`` (catchable terminate)
are modelled as well for completeness: Hadoop's kill path uses
``SIGKILL`` after a ``SIGTERM`` grace period.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import InvalidSignalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.osmodel.process import OSProcess


class Signal(enum.Enum):
    """The subset of POSIX signals the model understands."""

    SIGTSTP = "SIGTSTP"
    SIGSTOP = "SIGSTOP"
    SIGCONT = "SIGCONT"
    SIGTERM = "SIGTERM"
    SIGKILL = "SIGKILL"

    @property
    def catchable(self) -> bool:
        """SIGKILL and SIGSTOP cannot be caught, blocked or ignored."""
        return self not in (Signal.SIGKILL, Signal.SIGSTOP)

    @property
    def stops(self) -> bool:
        """True for signals whose default disposition stops the process."""
        return self in (Signal.SIGTSTP, Signal.SIGSTOP)

    @property
    def terminates(self) -> bool:
        """True for signals whose default disposition kills the process."""
        return self in (Signal.SIGTERM, Signal.SIGKILL)


#: Handler type: called with the process when the signal is delivered.
SignalHandler = Callable[["OSProcess"], None]


class SignalDispositions:
    """Per-process table of installed handlers.

    Only catchable signals may have handlers; installing one for
    SIGKILL/SIGSTOP raises
    :class:`~repro.errors.InvalidSignalError`, matching ``sigaction``'s
    ``EINVAL``.
    """

    def __init__(self) -> None:
        self._handlers: Dict[Signal, SignalHandler] = {}

    def install(self, sig: Signal, handler: SignalHandler) -> None:
        """Install ``handler`` for ``sig``."""
        if not sig.catchable:
            raise InvalidSignalError(f"{sig.value} cannot be caught")
        self._handlers[sig] = handler

    def uninstall(self, sig: Signal) -> None:
        """Restore the default disposition for ``sig``."""
        self._handlers.pop(sig, None)

    def handler_for(self, sig: Signal) -> Optional[SignalHandler]:
        """The installed handler, or None for default disposition."""
        return self._handlers.get(sig)

    def __contains__(self, sig: Signal) -> bool:
        return sig in self._handlers
