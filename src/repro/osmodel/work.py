"""Work plans and the engine that executes them.

A Hadoop task attempt is modelled as a :class:`WorkPlan`: an ordered
list of :class:`WorkItem` steps (JVM start-up, memory allocation,
parsing the input split, re-reading allocated state, committing
output).  The :class:`WorkEngine` executes the plan on behalf of one
:class:`~repro.osmodel.process.OSProcess`, and is the point where the
paper's preemption primitive bites:

* **suspension** pauses the current item exactly mid-flight (remaining
  work is settled to the instant the stop lands);
* **resumption** first charges the page-in cost of any memory the
  process lost to swap while stopped, then continues the item from
  where it paused;
* **progress** is reported as a weighted fraction of plan completion,
  and watchers can request a callback at the exact instant progress
  crosses a threshold -- this is how the experiment harness launches
  ``th`` at exactly r% of ``tl``.
"""

from __future__ import annotations

import abc
import functools
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import OutOfMemoryError, SimulationError
from repro.sim.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.osmodel.kernel import NodeKernel
    from repro.osmodel.process import OSProcess
    from repro.osmodel.resources import Claim


class WorkItem(abc.ABC):
    """One step of a work plan.

    ``weight`` is the item's share of the task's reported progress;
    Hadoop reports map progress as the fraction of input consumed, so
    plans give the input-processing item weight 1.0 and bookkeeping
    items weight 0.

    The hierarchy declares ``__slots__`` throughout: scale replays
    build one plan (4-6 items) per task attempt, and the per-instance
    dict is the bulk of each item's footprint.
    """

    __slots__ = ("label", "weight", "started", "finished")

    def __init__(self, label: str, weight: float = 0.0):
        self.label = label
        self.weight = weight
        self.started = False
        self.finished = False

    @abc.abstractmethod
    def begin(self, engine: "WorkEngine") -> None:
        """Start executing (first time only)."""

    @abc.abstractmethod
    def pause(self, engine: "WorkEngine") -> None:
        """Stop mid-flight, settling partial progress."""

    @abc.abstractmethod
    def resume(self, engine: "WorkEngine") -> None:
        """Continue after a pause."""

    @abc.abstractmethod
    def abort(self, engine: "WorkEngine") -> None:
        """Cancel outright (process killed)."""

    @abc.abstractmethod
    def fraction_done(self, engine: "WorkEngine") -> float:
        """Fraction of this item completed, settled to now."""

    @abc.abstractmethod
    def schedule_crossing(
        self, engine: "WorkEngine", fraction: float, callback: Callable[[], None]
    ) -> None:
        """Arrange ``callback`` at the exact moment this item's local
        progress crosses ``fraction`` (item must be active)."""

    def _finish(self, engine: "WorkEngine") -> None:
        self.finished = True
        engine._item_finished(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(label={self.label!r})"


class SleepItem(WorkItem):
    """A fixed-duration step (JVM start-up, framework bookkeeping)."""

    __slots__ = ("duration", "remaining", "_since", "_event", "_crossings")

    def __init__(self, duration: float, label: str = "sleep", weight: float = 0.0):
        super().__init__(label, weight)
        if duration < 0:
            raise SimulationError("sleep duration may not be negative")
        self.duration = duration
        self.remaining = duration
        self._since: Optional[float] = None
        self._event: Optional[EventHandle] = None
        # (fraction, callback, EventHandle-or-None, fired) mutable records
        self._crossings: List[list] = []

    def begin(self, engine: "WorkEngine") -> None:
        self.started = True
        self._arm(engine)

    def _arm(self, engine: "WorkEngine") -> None:
        self._since = engine.sim.now
        self._event = engine.sim.schedule(
            self.remaining, self._finish, engine, label=f"work.sleep:{self.label}"
        )
        self._arm_crossings(engine)

    def _settle(self, engine: "WorkEngine") -> None:
        if self._since is not None:
            self.remaining = max(0.0, self.remaining - (engine.sim.now - self._since))
            self._since = None

    def pause(self, engine: "WorkEngine") -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        for crossing in self._crossings:
            if crossing[2] is not None:
                crossing[2].cancel()
                crossing[2] = None
        self._settle(engine)

    def resume(self, engine: "WorkEngine") -> None:
        self._arm(engine)

    def abort(self, engine: "WorkEngine") -> None:
        self.pause(engine)

    def fraction_done(self, engine: "WorkEngine") -> float:
        if self.duration <= 0:
            return 1.0
        remaining = self.remaining
        if self._since is not None:
            remaining = max(0.0, remaining - (engine.sim.now - self._since))
        return max(0.0, min(1.0, 1.0 - remaining / self.duration))

    def schedule_crossing(
        self, engine: "WorkEngine", fraction: float, callback: Callable[[], None]
    ) -> None:
        crossing = [fraction, callback, None, False]
        self._crossings.append(crossing)
        self._arm_crossings(engine)

    def _arm_crossings(self, engine: "WorkEngine") -> None:
        """(Re)schedule crossing events against the live countdown."""
        done = self.fraction_done(engine)
        for crossing in self._crossings:
            fraction, callback, event, fired = crossing
            if fired:
                continue
            if event is not None:
                event.cancel()
                crossing[2] = None
            if done >= fraction:
                crossing[3] = True
                engine.sim.call_soon(callback, label=f"work.crossing:{self.label}")
                continue
            if self._since is None:
                continue  # paused; re-armed on resume
            delay = (fraction - done) * self.duration
            crossing[2] = engine.sim.schedule(
                delay,
                self._fire_crossing,
                crossing,
                label=f"work.crossing:{self.label}",
            )

    def _fire_crossing(self, crossing: list) -> None:
        if crossing[3]:
            return
        crossing[3] = True
        crossing[2] = None
        crossing[1]()


class RateWorkItem(WorkItem):
    """Base for items backed by a processor-shared resource claim.

    Subclasses choose the :class:`~repro.osmodel.resources.RateResource`
    drawn from; pause/resume/abort and progress crossings all ride the
    claim API, so the virtual-time model's O(log n) state changes apply
    to every rate-backed step uniformly.
    """

    __slots__ = ("units", "claim")

    def __init__(self, units: float, label: str, weight: float):
        super().__init__(label, weight)
        if units < 0:
            raise SimulationError("work units may not be negative")
        self.units = units
        self.claim: Optional["Claim"] = None

    @abc.abstractmethod
    def _resource(self, engine: "WorkEngine"):
        """The RateResource this item draws from."""

    def begin(self, engine: "WorkEngine") -> None:
        self.started = True
        if self.units <= 0:
            engine.sim.call_soon(self._finish, engine, label=f"work.zero:{self.label}")
            return
        resource = self._resource(engine)
        self.claim = resource.create(
            self.units,
            functools.partial(self._finish, engine),
            label=self.label,
            owner=engine.process,
        )
        resource.activate(self.claim)

    def pause(self, engine: "WorkEngine") -> None:
        if self.claim is not None:
            self.claim.resource.pause(self.claim)

    def resume(self, engine: "WorkEngine") -> None:
        if self.claim is not None:
            self.claim.resource.activate(self.claim)

    def abort(self, engine: "WorkEngine") -> None:
        if self.claim is not None:
            self.claim.resource.cancel(self.claim)

    def fraction_done(self, engine: "WorkEngine") -> float:
        if self.claim is None:
            return 1.0 if self.finished else 0.0
        return self.claim.fraction_done()

    def schedule_crossing(
        self, engine: "WorkEngine", fraction: float, callback: Callable[[], None]
    ) -> None:
        if self.claim is None:
            engine.sim.call_soon(callback, label=f"work.crossing:{self.label}")
            return
        remaining_at = self.units * (1.0 - fraction)
        self.claim.add_milestone(remaining_at, callback)


class CpuWorkItem(RateWorkItem):
    """CPU-bound work, expressed in core-seconds.

    The synthetic mappers of the paper "read and parse the randomly
    generated input"; parsing dominates, so the map phase is modelled
    as CPU work at ``bytes / parse_rate`` core-seconds, with the bytes
    streamed from disk entering the page cache as the work progresses
    (``reads_bytes``).
    """

    __slots__ = ("reads_bytes", "_cached_fraction")

    def __init__(
        self,
        core_seconds: float,
        label: str = "cpu",
        weight: float = 0.0,
        reads_bytes: int = 0,
    ):
        super().__init__(core_seconds, label, weight)
        self.reads_bytes = reads_bytes
        self._cached_fraction = 0.0

    @classmethod
    def for_bytes(
        cls,
        nbytes: int,
        parse_rate: float,
        label: str = "cpu",
        weight: float = 0.0,
        reads_input: bool = True,
    ) -> "CpuWorkItem":
        """Build from an input size and a parse rate (bytes/second/core)."""
        if parse_rate <= 0:
            raise SimulationError("parse_rate must be positive")
        return cls(
            core_seconds=nbytes / parse_rate,
            label=label,
            weight=weight,
            reads_bytes=nbytes if reads_input else 0,
        )

    def _resource(self, engine: "WorkEngine"):
        return engine.kernel.cpu

    def account_cache(self, engine: "WorkEngine") -> None:
        """Feed freshly-read input bytes into the page cache.

        Called at pauses, milestones and completion; granular enough
        because suspension is the only moment the cache level matters.
        """
        if self.reads_bytes <= 0:
            return
        fraction = self.fraction_done(engine)
        delta = fraction - self._cached_fraction
        if delta > 0:
            engine.kernel.vmm.cache_file_read(int(delta * self.reads_bytes))
            engine.process.image.touch(engine.sim.now)
            self._cached_fraction = fraction

    def pause(self, engine: "WorkEngine") -> None:
        # Sync the resource's virtual clock first so the cache
        # accounting and the pause read one settled instant.
        if self.claim is not None:
            self.claim.resource.settle()
        self.account_cache(engine)
        super().pause(engine)

    def _finish(self, engine: "WorkEngine") -> None:
        self.account_cache(engine)
        super()._finish(engine)


class DiskWriteItem(RateWorkItem):
    """Sequential write of output data (commit phase)."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int, label: str = "write", weight: float = 0.0):
        super().__init__(float(nbytes), label, weight)
        self.nbytes = nbytes

    def _resource(self, engine: "WorkEngine"):
        return engine.kernel.disk.write_stream


class DiskReadItem(RateWorkItem):
    """Sequential read of input data that is I/O-bound (no parsing)."""

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int, label: str = "read", weight: float = 0.0):
        super().__init__(float(nbytes), label, weight)
        self.nbytes = nbytes

    def _resource(self, engine: "WorkEngine"):
        return engine.kernel.disk.read_stream

    def _finish(self, engine: "WorkEngine") -> None:
        engine.kernel.vmm.cache_file_read(self.nbytes)
        super()._finish(engine)


class MemAllocItem(SleepItem):
    """Allocate and dirty ``nbytes`` of anonymous memory.

    The paper's memory-hungry tasks "allocate memory and ... the OS
    marks pages as dirty, by writing random values to all memory at
    task startup".  The item's duration is the memset time plus any
    direct-reclaim cost the kernel charges (evicting the page cache is
    free; paging a suspended task out to swap is not -- that is
    exactly the overhead Figure 4 measures).
    """

    __slots__ = ("nbytes", "reclaim_cost")

    def __init__(self, nbytes: int, label: str = "alloc", weight: float = 0.0):
        # Duration is computed lazily in begin(), when the reclaim cost
        # is known; initialise with a placeholder.
        super().__init__(0.0, label, weight)
        self.nbytes = nbytes
        self.reclaim_cost = 0.0

    def begin(self, engine: "WorkEngine") -> None:
        try:
            charge = engine.kernel.charge_allocation(engine.process, self.nbytes)
        except OutOfMemoryError as exc:
            engine.kernel.oom_kill(engine.process, why=str(exc))
            return
        self.reclaim_cost = charge.reclaim_time
        self.duration = charge.total_time
        self.remaining = self.duration
        super().begin(engine)


class MemTouchItem(SleepItem):
    """Re-read the whole allocated image (task finalisation).

    Memory-hungry tasks read their state back before completing; if
    any of it was swapped out while suspended the page-in cost lands
    here (unless it was already charged at resume time).
    """

    __slots__ = ("fault_cost",)

    def __init__(self, label: str = "touch", weight: float = 0.0):
        super().__init__(0.0, label, weight)
        self.fault_cost = 0.0

    def begin(self, engine: "WorkEngine") -> None:
        process = engine.process
        try:
            fault = engine.kernel.vmm.fault_in(process)
        except OutOfMemoryError as exc:
            engine.kernel.oom_kill(process, why=str(exc))
            return
        self.fault_cost = fault.time_cost
        read_time = process.image.resident / engine.kernel.config.mem_read_bw
        self.duration = read_time + fault.time_cost
        self.remaining = self.duration
        process.image.touch(engine.sim.now)
        super().begin(engine)


class WorkPlan:
    """An ordered list of work items with progress weights."""

    def __init__(self, items: List[WorkItem]):
        self.items = list(items)
        self.total_weight = sum(item.weight for item in self.items)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"WorkPlan({[item.label for item in self.items]})"


class WorkEngine:
    """Executes a :class:`WorkPlan` for one process.

    The engine is installed as ``process.engine``; the process's
    signal machinery calls :meth:`pause`/:meth:`resume`/:meth:`abort`,
    and the engine calls ``process.exit_normally()`` when the plan
    completes.
    """

    def __init__(self, process: "OSProcess", plan: WorkPlan):
        self.process = process
        self.kernel: "NodeKernel" = process.kernel
        self.sim = self.kernel.sim
        self.plan = plan
        self.index = 0
        self.started = False
        self.completed = False
        self.paused = False
        self._completed_weight = 0.0
        self._watchers: List[tuple] = []  # (fraction, callback, [fired])
        self._pending_resume: Optional[EventHandle] = None
        self.fault_in_seconds = 0.0
        self._aborted_progress: Optional[float] = None
        process.engine = self

    # -- lifecycle -------------------------------------------------------------

    @property
    def current_item(self) -> Optional[WorkItem]:
        """The item in flight, or None before start / after completion."""
        if self.completed or self.index >= len(self.plan.items):
            return None
        return self.plan.items[self.index]

    def start(self) -> None:
        """Begin executing the plan."""
        if self.started:
            raise SimulationError("work engine already started")
        self.started = True
        self._begin_current()

    def _begin_current(self) -> None:
        item = self.current_item
        if item is None:
            self._complete()
            return
        item.begin(self)
        self._arm_watchers()

    def _item_finished(self, item: WorkItem) -> None:
        if self.completed:
            return
        self._completed_weight += item.weight
        self.index += 1
        if self.paused:
            # Finished exactly as a pause landed; stay put.
            return
        if self.index >= len(self.plan.items):
            self._complete()
        else:
            self._begin_current()

    def _complete(self) -> None:
        self.completed = True
        self._fire_watchers_at_completion()
        self.process.exit_normally()

    # -- preemption hooks --------------------------------------------------------

    def pause(self) -> None:
        """Suspend execution (stop signal landed)."""
        if self.paused or self.completed:
            return
        self.paused = True
        if self._pending_resume is not None:
            self._pending_resume.cancel()
            self._pending_resume = None
        item = self.current_item
        if item is not None and item.started and not item.finished:
            item.pause(self)

    def resume(self) -> None:
        """Continue execution (SIGCONT landed).

        If the process lost pages to swap while stopped, the page-in
        cost is charged as a delay before work continues -- the
        "possible overhead due to page-out/page-in cycles" of the
        paper's Section IV.
        """
        if not self.paused or self.completed:
            return
        self.paused = False
        try:
            fault = self.kernel.vmm.fault_in(self.process)
        except OutOfMemoryError as exc:
            # The node cannot hold the faulting-in image: the OOM
            # killer reaps the resuming process (RAM + swap are over-
            # committed past Section III-A's constraint).
            self.kernel.oom_kill(self.process, why=str(exc))
            return
        self.fault_in_seconds += fault.time_cost
        if fault.time_cost > 0:
            self._pending_resume = self.sim.schedule(
                fault.time_cost,
                self._resume_items,
                label=f"work.faultin:{self.process.name}",
            )
        else:
            self._resume_items()

    def _resume_items(self) -> None:
        self._pending_resume = None
        if self.paused or self.completed:
            return
        item = self.current_item
        if item is None:
            self._complete()
        elif not item.started:
            self._begin_current()
        elif not item.finished:
            item.resume(self)
            self._arm_watchers()

    def abort(self) -> None:
        """Cancel execution permanently (process died).

        The progress reached at the instant of death is preserved so
        the JobTracker can account the work a kill discards.
        """
        if self.completed:
            return
        self._aborted_progress = self.progress()
        if self._pending_resume is not None:
            self._pending_resume.cancel()
            self._pending_resume = None
        item = self.current_item
        if item is not None and item.started and not item.finished:
            item.abort(self)
        self.completed = True

    # -- progress ------------------------------------------------------------------

    def progress(self) -> float:
        """Weighted plan progress in [0, 1], settled to now."""
        if self._aborted_progress is not None:
            return self._aborted_progress
        total = self.plan.total_weight
        if total <= 0:
            if not self.plan.items:
                return 1.0
            return self.index / len(self.plan.items)
        done = self._completed_weight
        item = self.current_item
        if item is not None and item.started and not item.finished and item.weight > 0:
            done += item.weight * item.fraction_done(self)
        return max(0.0, min(1.0, done / total))

    def when_progress(self, fraction: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` at the exact instant :meth:`progress`
        first reaches ``fraction``.

        Fires immediately if already past; fires at plan completion at
        the latest.
        """
        fraction = max(0.0, min(1.0, fraction))
        if self.progress() >= fraction or self.completed:
            self.sim.call_soon(callback, label="work.watcher")
            return
        watcher = [fraction, callback, False]
        self._watchers.append(watcher)
        self._arm_watchers()

    def _arm_watchers(self) -> None:
        """Register crossings that land inside the current item."""
        item = self.current_item
        if item is None or not item.started or item.finished:
            return
        total = self.plan.total_weight
        if total <= 0 or item.weight <= 0:
            return
        for watcher in self._watchers:
            fraction, callback, armed = watcher
            if armed:
                continue
            start_progress = self._completed_weight / total
            end_progress = (self._completed_weight + item.weight) / total
            if start_progress <= fraction <= end_progress:
                local = (fraction * total - self._completed_weight) / item.weight
                watcher[2] = True
                item.schedule_crossing(self, local, callback)

    def _fire_watchers_at_completion(self) -> None:
        for watcher in self._watchers:
            fraction, callback, armed = watcher
            if not armed:
                watcher[2] = True
                self.sim.call_soon(callback, label="work.watcher")
