"""Simulated Unix processes.

A process is the unit the paper's preemption primitive acts on: Hadoop
tasks "are regular Unix processes running in child JVMs spawned by the
TaskTracker ... they can safely be handled with the POSIX signaling
infrastructure".

State machine::

    RUNNING --SIGTSTP/SIGSTOP--> STOPPED --SIGCONT--> RUNNING
    RUNNING/STOPPED --SIGKILL/SIGTERM or plan completion--> DEAD

``SIGTSTP`` delivery runs the process's handler for the configured
latency before the stop takes effect (the handler closes network
connections etc.); ``SIGCONT`` arriving during that window cancels the
pending stop, exactly as a real shell job-control race would resolve.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import ProcessStateError
from repro.osmodel.memory import MemoryImage
from repro.osmodel.signals import Signal, SignalDispositions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.osmodel.kernel import NodeKernel
    from repro.osmodel.work import WorkEngine


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""

    RUNNING = "running"
    STOPPED = "stopped"
    DEAD = "dead"


class ExitReason(enum.Enum):
    """Why a process left the RUNNING/STOPPED states."""

    EXITED = "exited"
    KILLED = "killed"
    TERMINATED = "terminated"
    OOM = "oom"


class OSProcess:
    """One simulated process on one node.

    Created via :meth:`repro.osmodel.kernel.NodeKernel.spawn`; driven
    by an attached :class:`~repro.osmodel.work.WorkEngine`.
    """

    def __init__(self, kernel: "NodeKernel", pid: int, name: str):
        self.kernel = kernel
        self.pid = pid
        self.name = name
        self.state = ProcessState.RUNNING
        self.image = MemoryImage()
        self.dispositions = SignalDispositions()
        self.engine: Optional["WorkEngine"] = None
        self.spawned_at = kernel.sim.now
        self.stopped_at: Optional[float] = None
        self.died_at: Optional[float] = None
        self.exit_reason: Optional[ExitReason] = None
        self.exit_callbacks: List[Callable[["OSProcess", ExitReason], None]] = []
        self.stop_callbacks: List[Callable[["OSProcess"], None]] = []
        self.resume_callbacks: List[Callable[["OSProcess"], None]] = []
        #: cumulative wall time spent in STOPPED
        self.stopped_seconds = 0.0
        self._pending_stop: Optional[Any] = None  # EventHandle during TSTP latency

    # -- queries ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True until the process dies."""
        return self.state is not ProcessState.DEAD

    @property
    def running(self) -> bool:
        """True while the process may consume CPU."""
        return self.state is ProcessState.RUNNING

    @property
    def stopped(self) -> bool:
        """True while the process is suspended by a stop signal."""
        return self.state is ProcessState.STOPPED

    def on_exit(self, callback: Callable[["OSProcess", ExitReason], None]) -> None:
        """Register a callback fired once when the process dies."""
        self.exit_callbacks.append(callback)

    def on_stop(self, callback: Callable[["OSProcess"], None]) -> None:
        """Register a callback fired each time the process stops."""
        self.stop_callbacks.append(callback)

    def on_resume(self, callback: Callable[["OSProcess"], None]) -> None:
        """Register a callback fired each time the process resumes."""
        self.resume_callbacks.append(callback)

    # -- signal handling (invoked by the kernel) ------------------------------

    def deliver(self, sig: Signal) -> None:
        """Deliver ``sig`` to this process.

        Use :meth:`repro.osmodel.kernel.NodeKernel.signal` rather than
        calling this directly, so kernel-wide accounting stays
        consistent.
        """
        if not self.alive:
            raise ProcessStateError(f"pid {self.pid} is dead; cannot signal")
        if sig is Signal.SIGKILL:
            self._die(ExitReason.KILLED)
        elif sig is Signal.SIGTERM:
            handler = self.dispositions.handler_for(sig)
            if handler is not None:
                handler(self)
            else:
                self._die(ExitReason.TERMINATED)
        elif sig is Signal.SIGSTOP:
            self._stop_now()
        elif sig is Signal.SIGTSTP:
            handler = self.dispositions.handler_for(sig)
            latency = 0.0
            if handler is not None:
                handler(self)
                latency = self.kernel.config.sigtstp_handler_latency
            self._schedule_stop(latency)
        elif sig is Signal.SIGCONT:
            self._continue()
        else:  # pragma: no cover - enum is closed
            raise ProcessStateError(f"unhandled signal {sig}")

    def _schedule_stop(self, latency: float) -> None:
        if self.state is ProcessState.STOPPED or self._pending_stop is not None:
            return
        if latency <= 0:
            self._stop_now()
            return
        self._pending_stop = self.kernel.sim.schedule(
            latency, self._stop_from_handler, label=f"proc.stop:{self.name}"
        )

    def _stop_from_handler(self) -> None:
        self._pending_stop = None
        if self.alive and self.state is ProcessState.RUNNING:
            self._stop_now()

    def _stop_now(self) -> None:
        if self.state is not ProcessState.RUNNING:
            return
        self.state = ProcessState.STOPPED
        self.stopped_at = self.kernel.sim.now
        if self.engine is not None:
            self.engine.pause()
        self.kernel.note_process_stopped(self)
        for callback in list(self.stop_callbacks):
            callback(self)

    def _continue(self) -> None:
        if self._pending_stop is not None:
            # SIGCONT raced the TSTP handler: the stop never lands.
            self._pending_stop.cancel()
            self._pending_stop = None
            return
        if self.state is not ProcessState.STOPPED:
            return
        assert self.stopped_at is not None
        self.stopped_seconds += self.kernel.sim.now - self.stopped_at
        self.state = ProcessState.RUNNING
        self.stopped_at = None
        self.kernel.note_process_resumed(self)
        if self.engine is not None:
            self.engine.resume()
        for callback in list(self.resume_callbacks):
            callback(self)

    # -- exit -----------------------------------------------------------------

    def exit_normally(self) -> None:
        """Called by the work engine when the plan completes."""
        self._die(ExitReason.EXITED)

    def die_oom(self) -> None:
        """Reaped by the OOM killer (see
        :meth:`repro.osmodel.kernel.NodeKernel.oom_kill`): like SIGKILL
        but recorded as :attr:`ExitReason.OOM` so the Hadoop layer can
        charge the loss to the right wasted-work cause."""
        self._die(ExitReason.OOM)

    def _die(self, reason: ExitReason) -> None:
        if not self.alive:
            return
        if self._pending_stop is not None:
            self._pending_stop.cancel()
            self._pending_stop = None
        if self.state is ProcessState.STOPPED and self.stopped_at is not None:
            self.stopped_seconds += self.kernel.sim.now - self.stopped_at
        self.state = ProcessState.DEAD
        self.died_at = self.kernel.sim.now
        self.exit_reason = reason
        if self.engine is not None:
            self.engine.abort()
        self.kernel.reap(self)
        for callback in list(self.exit_callbacks):
            callback(self, reason)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"OSProcess(pid={self.pid}, name={self.name!r}, "
            f"state={self.state.value})"
        )
