"""Virtual memory manager: reclaim, swap-out, swap-in.

This module is the heart of the reproduction.  The paper's primitive
works *because* of three kernel behaviours, all modelled here:

1. **swappiness = 0**: the file-system cache is evicted before any
   process page, so light-weight suspended tasks stay entirely in RAM
   and suspend/resume costs nothing (Figure 2).
2. **suspended-first, clean-first reclaim**: when process pages must
   go, pages of stopped processes are evicted before those of running
   ones, and clean pages are dropped for free before dirty pages are
   written to swap (Section III-A).
3. **approximate LRU**: the clock-style scan over-evicts under
   pressure and leaks onto the cold pages of running processes, which
   is why Figure 4's "paged bytes" curve grows more than linearly and
   then saturates below the suspended task's full footprint.

All reclaim time is charged to the *requesting* process (direct
reclaim), which is how a memory-hungry ``th`` pays the page-out cost
of evicting a suspended ``tl``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List

from repro.errors import OutOfMemoryError
from repro.osmodel.config import NodeConfig
from repro.osmodel.disk import DiskDevice
from repro.osmodel.pagecache import PageCache
from repro.osmodel.swap import SwapArea
from repro.units import format_size, page_align

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.osmodel.process import OSProcess


@dataclass(slots=True)
class ReclaimResult:
    """Outcome of one :meth:`VirtualMemoryManager.make_room` call."""

    requested: int
    freed_from_cache: int = 0
    dropped_clean: int = 0
    swapped_out: int = 0
    time_cost: float = 0.0
    per_victim_swap: Dict[int, int] = field(default_factory=dict)

    @property
    def freed_total(self) -> int:
        """Total RAM bytes freed."""
        return self.freed_from_cache + self.dropped_clean + self.swapped_out


@dataclass(slots=True)
class FaultInResult:
    """Outcome of one :meth:`VirtualMemoryManager.fault_in` call."""

    paged_in: int = 0
    time_cost: float = 0.0
    reclaim: ReclaimResult | None = None


@dataclass(frozen=True, slots=True)
class MemoryHeadroom:
    """One node's memory/swap headroom, snapshotted in a single pass.

    This is the quantity Section III-A's constraint is stated over:
    the aggregate memory of running + suspended tasks must fit in
    RAM + swap.  TaskTrackers attach a snapshot to every heartbeat and
    the suspend-admission gate reads it before issuing SIGTSTP, so the
    constraint is actively managed instead of discovered as an OOM.
    """

    #: RAM free without any reclaim (bytes)
    free_ram: int
    #: page-cache bytes the reclaimer could drop for free
    evictable_cache: int
    #: unused swap bytes
    free_swap: int
    #: resident bytes of runnable processes
    running_resident: int
    #: resident bytes of stopped (suspended) processes
    stopped_resident: int
    #: swapped bytes held by stopped processes
    stopped_swapped: int
    #: number of stopped processes
    stopped_count: int

    @property
    def suspend_budget(self) -> int:
        """Bytes of additional task memory the node can still absorb:
        free RAM, droppable cache, and unused swap."""
        return self.free_ram + self.evictable_cache + self.free_swap


class VirtualMemoryManager:
    """Owns the page cache, the swap area, and the reclaim policy."""

    def __init__(
        self,
        config: NodeConfig,
        disk: DiskDevice,
        live_processes: Callable[[], List["OSProcess"]],
        now: Callable[[], float],
    ):
        self.config = config
        self.disk = disk
        self._live_processes = live_processes
        self._now = now
        self.page_cache = PageCache(min_bytes=config.page_cache_min_bytes)
        self.swap = SwapArea(capacity=config.swap_bytes)
        self.reclaim_events = 0
        self.oom_events = 0

    # -- accounting -----------------------------------------------------------

    def used_by_processes(self) -> int:
        """Sum of all live processes' resident sets."""
        return sum(proc.image.resident for proc in self._live_processes())

    def free_ram(self) -> int:
        """RAM available without any reclaim."""
        return (
            self.config.usable_ram_bytes
            - self.used_by_processes()
            - self.page_cache.size
        )

    def memory_pressure(self) -> float:
        """Fraction of usable RAM in use (processes + cache)."""
        usable = max(1, self.config.usable_ram_bytes)
        return 1.0 - self.free_ram() / usable

    def headroom(self) -> MemoryHeadroom:
        """Snapshot the node's memory/swap headroom in one pass.

        Batching matters at scale: heartbeat building and the suspend
        admission gate both need these totals, and a single walk over
        the (handful of) live processes replaces the per-attempt
        resident/swap sums the old swap-capacity check performed.
        """
        running = stopped = stopped_swapped = 0
        stopped_count = 0
        for proc in self._live_processes():
            if proc.stopped:
                stopped += proc.image.resident
                stopped_swapped += proc.image.swapped
                stopped_count += 1
            else:
                running += proc.image.resident
        free_ram = (
            self.config.usable_ram_bytes - running - stopped - self.page_cache.size
        )
        return MemoryHeadroom(
            free_ram=free_ram,
            evictable_cache=self.page_cache.evictable,
            free_swap=self.swap.free,
            running_resident=running,
            stopped_resident=stopped,
            stopped_swapped=stopped_swapped,
            stopped_count=stopped_count,
        )

    # -- page cache population --------------------------------------------------

    def cache_file_read(self, nbytes: int) -> int:
        """Record that ``nbytes`` of file data were read; cache what fits.

        The cache never triggers reclaim of process pages to grow
        (streaming reads simply bypass it when RAM is tight), so this
        is free of I/O cost.
        """
        return self.page_cache.insert(nbytes, room=self.free_ram())

    # -- reclaim ------------------------------------------------------------------

    def make_room(self, requester: "OSProcess", nbytes: int) -> ReclaimResult:
        """Ensure ``nbytes`` of RAM are free, evicting if necessary.

        Returns the reclaim breakdown including the synchronous time
        cost to charge the requester.  Raises
        :class:`~repro.errors.OutOfMemoryError` when RAM + swap cannot
        satisfy the demand.
        """
        nbytes = page_align(nbytes)
        result = ReclaimResult(requested=nbytes)
        demand = nbytes - self.free_ram()
        if demand <= 0:
            return result
        self.reclaim_events += 1

        demand = self._shrink_cache(demand, result)
        if demand <= 0:
            return result

        self._evict_process_pages(requester, demand, result)

        if self.free_ram() < nbytes:
            self.oom_events += 1
            raise OutOfMemoryError(
                f"cannot free {format_size(nbytes)} on {self.config.hostname}: "
                f"free={format_size(self.free_ram())} after reclaim",
                victim_pid=requester.pid,
            )
        return result

    def _shrink_cache(self, demand: int, result: ReclaimResult) -> int:
        """Evict file-cache pages per the swappiness policy.

        With swappiness = 0 the entire evictable cache is fair game
        before any process page.  With swappiness > 0 the kernel is
        only willing to take a proportional slice of the cache per
        reclaim round, pushing the remainder of the demand onto
        process pages (a deliberate simplification of the Linux
        active/inactive ratio machinery).
        """
        willing = self.page_cache.evictable
        if self.config.swappiness > 0:
            willing = int(willing * (100 - self.config.swappiness) / 100)
        freed = self.page_cache.shrink(min(demand, willing))
        result.freed_from_cache += freed
        return demand - freed

    def _evict_process_pages(
        self, requester: "OSProcess", demand: int, result: ReclaimResult
    ) -> None:
        """Evict process pages: suspended-first with an approximate-LRU
        leak onto running processes' cold pages."""
        stopped, running = self._victim_pools(requester)
        stopped_resident = sum(proc.image.resident for proc in stopped)
        running_cold = sum(
            max(0, proc.image.resident - self.config.working_set_protect_bytes)
            for proc in running
        )

        # Approximate-LRU inflation: the clock scan frees more than asked.
        pressure = demand / max(1, self.config.usable_ram_bytes)
        inflated = int(demand * (1.0 + self.config.lru_overshoot * pressure))

        # Leak share: the clock scan visits pools roughly proportionally
        # to their evictable sizes, damped by lru_scan_leak.
        leak = 0.0
        if running_cold > 0 and stopped_resident > 0:
            leak = self.config.lru_scan_leak * running_cold / (
                running_cold + stopped_resident
            )
        elif stopped_resident == 0:
            leak = 1.0

        target_running = int(inflated * leak)
        target_stopped = inflated - target_running

        freed_stopped = self._evict_from_pool(stopped, target_stopped, result, all_pages=True)
        shortfall = target_stopped - freed_stopped
        freed_running = self._evict_from_pool(
            running, target_running + max(0, shortfall), result, all_pages=False
        )
        # If the running pool came up short too, go back to stopped pages.
        shortfall = (target_running + max(0, shortfall)) - freed_running
        if shortfall > 0 and demand > result.freed_total - result.freed_from_cache:
            self._evict_from_pool(stopped, shortfall, result, all_pages=True)

    def _victim_pools(self, requester: "OSProcess"):
        """Order eviction victims.

        Pool 1: stopped processes, oldest stop first -- "pages from
        suspended processes are evicted before those from running
        ones".  Pool 2: running processes' pages beyond their
        working-set protection, other processes before the requester.
        """
        processes = self._live_processes()
        stopped = sorted(
            (p for p in processes if p.stopped),
            key=lambda p: (p.stopped_at if p.stopped_at is not None else 0.0),
        )
        running = sorted(
            (p for p in processes if not p.stopped),
            key=lambda p: (p.pid == requester.pid, p.image.last_touched),
        )
        return stopped, running

    def _evict_from_pool(
        self,
        pool: List["OSProcess"],
        target: int,
        result: ReclaimResult,
        all_pages: bool,
    ) -> int:
        """Take up to ``target`` bytes from the pool; returns bytes freed."""
        freed = 0
        for victim in pool:
            if freed >= target:
                break
            evictable = victim.image.resident
            if not all_pages:
                evictable = max(
                    0, evictable - self.config.working_set_protect_bytes
                )
            if evictable <= 0:
                continue
            want = min(target - freed, evictable)
            plan = victim.image.plan_pageout(want)
            swappable = min(plan.swap_dirty, self.swap.free)
            if swappable < plan.swap_dirty:
                plan.swap_dirty = swappable
            victim.image.apply_pageout(plan)
            if plan.swap_dirty > 0:
                self.swap.page_out(victim.pid, plan.swap_dirty)
                cost = self.disk.write_burst_cost(plan.swap_dirty)
                self.disk.account_burst(cost, write=True)
                result.time_cost += cost.total_time
                result.swapped_out += plan.swap_dirty
                result.per_victim_swap[victim.pid] = (
                    result.per_victim_swap.get(victim.pid, 0) + plan.swap_dirty
                )
            result.dropped_clean += plan.drop_clean
            freed += plan.total
        return freed

    # -- swap-in ---------------------------------------------------------------

    def fault_in(self, proc: "OSProcess") -> FaultInResult:
        """Fault every swapped page of ``proc`` back into RAM.

        Used when a suspended task resumes: the paper's model is that
        pages of a suspended process "are paged out and in at most
        once, respectively after suspension and resuming".  Faulting in
        may itself require reclaim (rare: only when memory is still
        tight after the preempting task finished).
        """
        nbytes = proc.image.swapped
        result = FaultInResult()
        if nbytes <= 0:
            return result
        reclaim = self.make_room(proc, nbytes)
        result.reclaim = reclaim
        result.time_cost += reclaim.time_cost * self.config.direct_reclaim_fraction
        paged = proc.image.page_in(nbytes, self._now())
        self.swap.page_in(proc.pid, paged)
        cost = self.disk.read_burst_cost(paged)
        self.disk.account_burst(cost, write=False)
        result.paged_in = paged
        # Swap readahead overlaps part of the transfer with compute;
        # only the synchronous share stalls the process.
        result.time_cost += cost.total_time * self.config.fault_in_sync_fraction
        return result

    # -- process exit -------------------------------------------------------------

    def release_process(self, proc: "OSProcess") -> None:
        """Free all RAM and swap held by a dead process."""
        self.swap.release(proc.pid)
        image = proc.image
        image.free(image.virtual, self._now())

    def check_invariants(self) -> None:
        """Cross-checks used by tests."""
        self.page_cache.check_invariants()
        self.swap.check_invariants()
        if self.free_ram() < 0:
            raise OutOfMemoryError(
                f"accounting error: free RAM negative ({self.free_ram()})"
            )
