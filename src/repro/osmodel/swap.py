"""Swap area accounting.

The swap device tracks how many bytes each process has paged out.  The
paper's Section III-A notes the operational constraint this module
enforces: the aggregate memory of running + suspended tasks must fit
in RAM + swap, otherwise the OOM killer would fire -- surfaced here as
:class:`~repro.errors.SwapExhaustedError` so schedulers can cap the
number of suspended tasks per node.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SwapExhaustedError
from repro.units import format_size


class SwapArea:
    """Byte-accounted swap device with per-process attribution."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise SwapExhaustedError("swap capacity may not be negative")
        self.capacity = capacity
        self.used = 0
        #: bytes currently swapped, per pid
        self.per_process: Dict[int, int] = {}
        #: lifetime bytes written to swap, per pid (Figure 4's metric)
        self.total_out_per_process: Dict[int, int] = {}
        self.total_out = 0
        self.total_in = 0

    @property
    def free(self) -> int:
        """Unused swap bytes."""
        return self.capacity - self.used

    def page_out(self, pid: int, nbytes: int) -> None:
        """Record ``nbytes`` moving from RAM to swap for ``pid``."""
        if nbytes <= 0:
            return
        if nbytes > self.free:
            raise SwapExhaustedError(
                f"swap exhausted: need {format_size(nbytes)}, "
                f"free {format_size(self.free)}"
            )
        self.used += nbytes
        self.per_process[pid] = self.per_process.get(pid, 0) + nbytes
        self.total_out_per_process[pid] = (
            self.total_out_per_process.get(pid, 0) + nbytes
        )
        self.total_out += nbytes

    def page_in(self, pid: int, nbytes: int) -> None:
        """Record ``nbytes`` moving back from swap to RAM for ``pid``."""
        if nbytes <= 0:
            return
        held = self.per_process.get(pid, 0)
        if nbytes > held:
            raise SwapExhaustedError(
                f"pid {pid} paging in {format_size(nbytes)} "
                f"but only {format_size(held)} swapped"
            )
        self.used -= nbytes
        remaining = held - nbytes
        if remaining:
            self.per_process[pid] = remaining
        else:
            del self.per_process[pid]
        self.total_in += nbytes

    def release(self, pid: int) -> int:
        """Free all swap held by ``pid`` (process exit); returns bytes."""
        held = self.per_process.pop(pid, 0)
        self.used -= held
        return held

    def swapped_bytes(self, pid: int) -> int:
        """Bytes currently in swap for ``pid``."""
        return self.per_process.get(pid, 0)

    def lifetime_swapped_bytes(self, pid: int) -> int:
        """Lifetime bytes ever paged out for ``pid`` -- the quantity
        Figure 4 plots ("paged bytes")."""
        return self.total_out_per_process.get(pid, 0)

    def check_invariants(self) -> None:
        """Raise if accounting broke."""
        if self.used < 0 or self.used > self.capacity:
            raise SwapExhaustedError(f"swap accounting broken: used={self.used}")
        if sum(self.per_process.values()) != self.used:
            raise SwapExhaustedError("per-process swap does not sum to used")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SwapArea(used={format_size(self.used)}/{format_size(self.capacity)})"
