"""Flows: one point-to-point transfer across the fabric.

A flow's progress rides a dedicated single-claim
:class:`~repro.osmodel.resources.RateResource` ("the pipe"): the
fabric sets the pipe's speed factor to the flow's current bottleneck
share, and the virtual-time machinery does the rest -- completion is
one armed engine event, a rate change is O(1) (advance the virtual
clock under the old rate, re-aim the event), pause/resume preserve the
remaining bytes exactly, and milestones ("call me when N bytes have
arrived") come for free.  An uncongested flow therefore *is* the plain
PS resource: same arithmetic, same event pattern (the differential
test in ``tests/test_netmodel.py`` pins this reduction).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.osmodel.resources import RateResource
from repro.sim.engine import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netmodel.link import Link


class FlowState(enum.Enum):
    """Lifecycle of a flow."""

    ACTIVE = "active"
    PAUSED = "paused"
    DONE = "done"
    CANCELLED = "cancelled"


class Flow:
    """One transfer of ``nbytes`` from ``src`` to ``dst``."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "nbytes",
        "label",
        "owner",
        "path",
        "on_done",
        "state",
        "rate",
        "started_at",
        "finished_at",
        "_pipe",
        "_claim",
    )

    def __init__(
        self,
        sim: Simulation,
        flow_id: int,
        src: str,
        dst: str,
        nbytes: float,
        path: List["Link"],
        on_done: Callable[["Flow"], None],
        label: str = "",
        owner=None,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.nbytes = float(nbytes)
        self.label = label or f"flow-{flow_id}"
        self.owner = owner
        self.path = path
        self.on_done = on_done
        self.state = FlowState.ACTIVE
        #: current assigned rate (bytes/second); fabric-maintained
        self.rate = 0.0
        self.started_at = sim.now
        self.finished_at: Optional[float] = None
        self._pipe = RateResource(sim, capacity=1.0, name=f"pipe:{self.label}")
        self._claim = self._pipe.create(self.nbytes, self._complete, label=self.label)

    # -- progress -----------------------------------------------------------

    @property
    def transferred(self) -> float:
        """Bytes delivered so far, settled to now."""
        return max(0.0, self.nbytes - self._claim.remaining)

    @property
    def remaining(self) -> float:
        """Bytes still to deliver."""
        return self._claim.remaining

    def when_transferred(self, nbytes: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` at the exact instant ``nbytes`` have
        arrived (immediately if already past)."""
        self._claim.add_milestone(max(0.0, self.nbytes - nbytes), callback)

    # -- fabric-internal lifecycle ---------------------------------------------

    def _set_rate(self, rate: float) -> None:
        if rate == self.rate:
            return
        self.rate = rate
        # Exact piecewise-constant semantics: the pipe settles the
        # elapsed interval at the old rate before adopting the new one.
        self._pipe.set_speed_factor(rate)

    def _start(self, rate: float) -> None:
        self.rate = rate
        self._pipe.speed_factor = rate  # no history to settle yet
        self._pipe.activate(self._claim)

    def _pause(self) -> None:
        self._pipe.pause(self._claim)
        self.state = FlowState.PAUSED

    def _resume(self) -> None:
        self.state = FlowState.ACTIVE
        self._pipe.activate(self._claim)

    def _cancel(self) -> None:
        self._pipe.cancel(self._claim)
        self.state = FlowState.CANCELLED

    def _complete(self) -> None:
        self.state = FlowState.DONE
        self.finished_at = self._pipe.sim.now
        self.on_done(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Flow({self.label}, {self.src}->{self.dst}, "
            f"{self.transferred:.0f}/{self.nbytes:.0f}B, {self.state.value})"
        )
