"""Shared-bandwidth network fabric.

The paper's suspend primitive wins because a suspended task releases
its resources without losing work; on real clusters the resource that
shuffle-heavy workloads fight over is the *network*.  This package
models it:

* :class:`~repro.netmodel.link.Link` -- one shared segment (host NIC,
  rack uplink, core switch) with egalitarian fair sharing, built on
  the same virtual-time processor-sharing arithmetic as
  :mod:`repro.osmodel.resources`;
* :class:`~repro.netmodel.fabric.Fabric` -- routes a
  :class:`~repro.netmodel.flow.Flow` over its
  (src-NIC, src-uplink, core, dst-uplink, dst-NIC) path and couples
  the per-flow rates: every flow progresses at the fair share of its
  *bottleneck* link;
* :class:`~repro.netmodel.transfer.TransferManager` -- multiplexes
  many fetches per host under a parallel-copies cap and exposes
  completion events to the engine;
* :class:`~repro.netmodel.fetch.NetworkFetchItem` -- the work item
  that replaces the local ``shuffle_fraction`` disk read: a reduce
  attempt fetches its map outputs as real cross-rack flows, pausing
  them under SIGTSTP and discarding them under SIGKILL.
"""

from repro.netmodel.config import NetConfig
from repro.netmodel.fabric import Fabric
from repro.netmodel.fetch import NetworkFetchItem
from repro.netmodel.flow import Flow, FlowState
from repro.netmodel.link import Link
from repro.netmodel.transfer import Transfer, TransferManager, TransferState

__all__ = [
    "NetConfig",
    "Fabric",
    "Flow",
    "FlowState",
    "Link",
    "NetworkFetchItem",
    "Transfer",
    "TransferManager",
    "TransferState",
]
