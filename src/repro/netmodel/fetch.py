"""The shuffle-fetch work item.

Replaces the reduce plan's local ``DiskReadItem`` shuffle stand-in:
the attempt fetches each map output from the host that produced it, as
real flows through the fabric's :class:`~repro.netmodel.transfer.
TransferManager`.  The preemption primitives now bite on the network:

* **SIGTSTP** pauses every in-flight fetch (bytes preserved, link
  capacity released) and holds the queued ones;
* **SIGCONT** re-queues them where they left off;
* **SIGKILL** cancels everything -- the bytes already moved are
  discarded work, surfaced as :attr:`discarded_network_bytes` and
  charged to the :class:`~repro.metrics.wasted.WastedWorkLedger`'s
  wasted-network-bytes column by the JobTracker.

Progress crossings are exact while a single transfer remains in
flight (a milestone on its flow) and otherwise fire at the next
transfer completion -- within one fetch of the requested instant.
"""

from __future__ import annotations

import functools
from typing import Callable, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.netmodel.transfer import Transfer, TransferState
from repro.osmodel.work import WorkEngine, WorkItem


class NetworkFetchItem(WorkItem):
    """Fetch map outputs over the network (the reduce shuffle phase)."""

    __slots__ = (
        "sources",
        "total_bytes",
        "discarded_network_bytes",
        "_transfers",
        "_completed_bytes",
        "_pending",
        "_engine",
        "_crossings",
        "_frozen_bytes",
    )

    def __init__(
        self,
        sources: Sequence[Tuple[str, int]],
        label: str = "shuffle",
        weight: float = 0.0,
    ):
        super().__init__(label, weight)
        self.sources: Tuple[Tuple[str, int], ...] = tuple(
            (host, int(nbytes)) for host, nbytes in sources
        )
        if any(nbytes < 0 for _, nbytes in self.sources):
            raise SimulationError("fetch sizes may not be negative")
        self.total_bytes = sum(nbytes for _, nbytes in self.sources)
        #: partial traffic a kill threw away (set at abort)
        self.discarded_network_bytes = 0
        self._transfers: List[Transfer] = []
        self._completed_bytes = 0
        self._pending = 0
        self._engine = None
        # [byte target, callback, fired, armed-flow-ids] records
        self._crossings: List[list] = []
        self._frozen_bytes = None

    # -- lifecycle ------------------------------------------------------------

    def begin(self, engine: WorkEngine) -> None:
        self.started = True
        self._engine = engine
        fabric = getattr(engine.kernel, "fabric", None)
        live_sources = [(h, n) for h, n in self.sources if n > 0]
        if fabric is None or not live_sources:
            engine.sim.call_soon(
                self._finish, engine, label=f"work.zero:{self.label}"
            )
            return
        dst = engine.kernel.config.hostname
        self._pending = len(live_sources)
        for host, nbytes in live_sources:
            self._transfers.append(
                fabric.transfers.fetch(
                    host,
                    dst,
                    nbytes,
                    self._on_transfer_done,
                    label=f"{self.label}:{host}->{dst}",
                    owner=engine.process,
                )
            )

    def _on_transfer_done(self, transfer: Transfer) -> None:
        self._completed_bytes += int(transfer.nbytes)
        self._pending -= 1
        self._check_crossings()
        if self._pending == 0:
            engine = self._engine
            # Fetched map output lands in the node's page cache, like
            # the DiskReadItem stand-in it replaces.
            engine.kernel.vmm.cache_file_read(self.total_bytes)
            self._finish(engine)

    # -- preemption hooks ---------------------------------------------------------

    def pause(self, engine: WorkEngine) -> None:
        manager = self._manager(engine)
        if manager is None:
            return
        # Queued transfers first: pausing an active one frees its fetch
        # slot, and the manager's pump would otherwise promote this
        # item's own queued siblings into real (instantly re-paused)
        # flows mid-loop.
        for transfer in self._transfers:
            if transfer.state is TransferState.QUEUED:
                manager.pause(transfer)
        for transfer in self._transfers:
            manager.pause(transfer)

    def resume(self, engine: WorkEngine) -> None:
        manager = self._manager(engine)
        if manager is None:
            return
        for transfer in self._transfers:
            manager.resume(transfer)
        self._arm_single_crossing()

    def abort(self, engine: WorkEngine) -> None:
        self._frozen_bytes = self.fetched_bytes(engine)
        self.discarded_network_bytes = int(self._frozen_bytes)
        manager = self._manager(engine)
        if manager is not None:
            # Queued first, as in pause(): cancelling an active
            # transfer frees its slot and would promote this item's
            # own queued siblings into flows that die instantly.
            for transfer in self._transfers:
                if transfer.state is TransferState.QUEUED:
                    manager.cancel(transfer)
            for transfer in self._transfers:
                manager.cancel(transfer)

    @staticmethod
    def _manager(engine: WorkEngine):
        fabric = getattr(engine.kernel, "fabric", None)
        return None if fabric is None else fabric.transfers

    # -- progress -----------------------------------------------------------------

    def fetched_bytes(self, engine: WorkEngine = None) -> float:
        """Bytes fetched so far across all sources, settled to now."""
        if self._frozen_bytes is not None:
            return self._frozen_bytes
        if self.finished:
            return float(self.total_bytes)
        # QUEUED counts too: a paused-then-resumed transfer waiting for
        # a fetch slot still holds its partially-filled flow.
        in_flight = sum(
            t.transferred
            for t in self._transfers
            if t.state
            in (TransferState.ACTIVE, TransferState.PAUSED, TransferState.QUEUED)
        )
        return self._completed_bytes + in_flight

    def fraction_done(self, engine: WorkEngine) -> float:
        if self.total_bytes <= 0:
            return 1.0 if self.finished else 0.0
        return max(0.0, min(1.0, self.fetched_bytes(engine) / self.total_bytes))

    def schedule_crossing(
        self, engine: WorkEngine, fraction: float, callback: Callable[[], None]
    ) -> None:
        target = fraction * self.total_bytes
        # [byte target, callback, fired, flow ids already carrying a
        # milestone for this crossing]
        crossing = [target, callback, False, set()]
        self._crossings.append(crossing)
        if self.fetched_bytes(engine) >= target or self.total_bytes <= 0:
            crossing[2] = True
            engine.sim.call_soon(callback, label=f"work.crossing:{self.label}")
            return
        self._arm_single_crossing()

    def _check_crossings(self) -> None:
        fetched = self.fetched_bytes()
        for crossing in self._crossings:
            if not crossing[2] and fetched >= crossing[0]:
                crossing[2] = True
                crossing[1]()
        self._arm_single_crossing()

    def _arm_single_crossing(self) -> None:
        """Exact crossings when one transfer remains in flight: ride a
        milestone on its flow."""
        live = [
            t
            for t in self._transfers
            if t.state in (TransferState.ACTIVE, TransferState.QUEUED)
        ]
        if len(live) != 1 or live[0].flow is None:
            return
        transfer = live[0]
        base = self._completed_bytes
        for crossing in self._crossings:
            if crossing[2] or transfer.flow.flow_id in crossing[3]:
                continue  # fired, or this flow already carries it
            need = crossing[0] - base
            if 0 <= need <= transfer.nbytes:
                crossing[3].add(transfer.flow.flow_id)
                transfer.flow.when_transferred(
                    need, self._fire_crossing(crossing)
                )

    def _fire_crossing(self, crossing: list):
        return functools.partial(self._fire_crossing_cb, crossing)

    def _fire_crossing_cb(self, crossing: list) -> None:
        if crossing[2]:
            return
        crossing[2] = True
        crossing[1]()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"NetworkFetchItem({self.label}, {len(self.sources)} sources, "
            f"{self.total_bytes}B)"
        )
