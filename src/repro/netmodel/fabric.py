"""The fabric: topology-routed flows with coupled bottleneck shares.

Routing follows the classic two-tier pod:

* same host          -> empty path (loopback rate, no shared segment);
* same rack          -> ``[src NIC, dst NIC]``;
* different racks    -> ``[src NIC, src rack uplink, core,
  dst rack uplink, dst NIC]``.

Every membership change recomputes the rate of each flow crossing a
touched link as ``min(fair share over its path)`` -- *bottleneck
share*: a flow held back elsewhere does not speed up on its other
links, and the capacity it leaves behind is **not** redistributed to
its neighbours (no progressive filling).  That choice keeps one
update O(flows on touched links) with no fixed-point iteration, and
makes the rates a pure function of the link occupancy counts -- which
is what makes parallel replay determinism trivial to preserve.

Determinism rules (pinned by ``tests/test_netmodel.py``):

* flows are (re)visited in ``flow_id`` order -- ids are allocated by a
  fabric-global counter, never from container iteration;
* rates depend only on occupancy counts, so update *order* cannot
  change the values, only the engine-event sequence -- which the
  ordered visit fixes;
* every rate change settles the flow's pipe under the old rate first
  (the piecewise-constant contract of the virtual-time core).
"""

from __future__ import annotations

import functools
from typing import Dict, Iterable, List, Optional

from repro.errors import SimulationError
from repro.hdfs.topology import RackTopology
from repro.netmodel.config import NetConfig
from repro.netmodel.flow import Flow, FlowState
from repro.netmodel.link import Link
from repro.netmodel.transfer import TransferManager
from repro.sim.engine import Simulation


class Fabric:
    """Shared-bandwidth network connecting the topology's hosts."""

    def __init__(
        self,
        sim: Simulation,
        topology: RackTopology,
        config: Optional[NetConfig] = None,
    ):
        self.sim = sim
        self.topology = topology
        self.config = config or NetConfig()
        now = sim.now
        bucket = self.config.utilization_bucket
        self.core = Link("core", self.config.core_bandwidth, now, bucket)
        self._nics: Dict[str, Link] = {}
        self._uplinks: Dict[str, Link] = {}
        for host in topology.hosts():
            self._ensure_host(host)
        self._flow_seq = 0
        #: live (active or paused) flows by id, insertion-ordered
        self._flows: Dict[int, Flow] = {}
        self.flows_started = 0
        self.flows_completed = 0
        self.offrack_flows = 0
        #: bytes of cancelled flows' partial progress (kill discards)
        self.cancelled_bytes = 0.0
        self.transfers = TransferManager(self, self.config.max_flows_per_host)

    # -- topology ----------------------------------------------------------

    def _ensure_host(self, host: str) -> None:
        if host in self._nics:
            return
        now = self.sim.now
        bucket = self.config.utilization_bucket
        self._nics[host] = Link(
            f"nic:{host}", self.config.nic_bandwidth, now, bucket
        )
        rack = self.topology.rack_of(host)
        if rack not in self._uplinks:
            self._uplinks[rack] = Link(
                f"uplink:{rack}", self.config.uplink_bandwidth, now, bucket
            )

    def nic(self, host: str) -> Link:
        """The (shared send/receive) NIC link of ``host``."""
        self._ensure_host(host)
        return self._nics[host]

    def uplink(self, rack: str) -> Link:
        """The uplink of ``rack``."""
        if rack not in self._uplinks:
            raise SimulationError(f"unknown rack {rack!r}")
        return self._uplinks[rack]

    def uplinks(self) -> List[Link]:
        """All rack uplinks, rack order."""
        return list(self._uplinks.values())

    def route(self, src: str, dst: str) -> List[Link]:
        """The link path of a ``src`` -> ``dst`` flow."""
        if src == dst:
            return []
        self._ensure_host(src)
        self._ensure_host(dst)
        src_rack = self.topology.rack_of(src)
        dst_rack = self.topology.rack_of(dst)
        if src_rack == dst_rack:
            return [self._nics[src], self._nics[dst]]
        return [
            self._nics[src],
            self._uplinks[src_rack],
            self.core,
            self._uplinks[dst_rack],
            self._nics[dst],
        ]

    # -- flow lifecycle -------------------------------------------------------

    def start_flow(
        self,
        src: str,
        dst: str,
        nbytes: float,
        on_done,
        label: str = "",
        owner=None,
    ) -> Flow:
        """Open a flow and start it at its bottleneck share."""
        if nbytes < 0:
            raise SimulationError("flow size may not be negative")
        self._flow_seq += 1
        path = self.route(src, dst)
        flow = Flow(
            self.sim,
            self._flow_seq,
            src,
            dst,
            nbytes,
            path,
            self._flow_done(on_done),
            label=label,
            owner=owner,
        )
        self._flows[flow.flow_id] = flow
        self.flows_started += 1
        if len(path) == 5:
            self.offrack_flows += 1
        flow._start(self._rate_of(flow))
        self._attach(flow)
        return flow

    def pause_flow(self, flow: Flow) -> None:
        """Stop serving ``flow``; its links' capacity is released and
        its delivered bytes are preserved (a suspended reducer's fetch
        rides its task's SIGTSTP through here)."""
        if flow.state is not FlowState.ACTIVE:
            return
        self._detach(flow)
        flow._pause()

    def resume_flow(self, flow: Flow) -> None:
        """Re-admit a paused flow at its current bottleneck share."""
        if flow.state is not FlowState.PAUSED:
            return
        flow._resume()
        flow._set_rate(self._rate_of(flow))
        self._attach(flow)

    def cancel_flow(self, flow: Flow) -> None:
        """Abort ``flow``; partial progress is discarded (and counted
        in :attr:`cancelled_bytes` -- the kill primitive's wasted
        network traffic)."""
        if flow.state in (FlowState.DONE, FlowState.CANCELLED):
            return
        if flow.state is FlowState.ACTIVE:
            self._detach(flow)
        self.cancelled_bytes += flow.transferred
        flow._cancel()
        self._flows.pop(flow.flow_id, None)

    def _flow_done(self, on_done):
        return functools.partial(self._finish_flow, on_done)

    def _finish_flow(self, on_done, flow: Flow) -> None:
        self._detach(flow)
        self._flows.pop(flow.flow_id, None)
        self.flows_completed += 1
        on_done(flow)

    # -- coupled rate updates ----------------------------------------------------

    def _rate_of(self, flow: Flow) -> float:
        if not flow.path:
            return self.config.loopback_bandwidth
        return min(link.fair_share() for link in flow.path)

    def _attach(self, flow: Flow) -> None:
        now = self.sim.now
        for link in flow.path:
            link._add(flow.flow_id, now)
        self._recouple(flow.path, added=flow)

    def _detach(self, flow: Flow) -> None:
        now = self.sim.now
        for link in flow.path:
            link._remove(flow.flow_id, now)
        self._recouple(flow.path, removed=True)

    def _recouple(
        self,
        touched: Iterable[Link],
        added: Optional[Flow] = None,
        removed: bool = False,
    ) -> None:
        """Reassign bottleneck shares to the flows a membership change
        can actually move.

        One attach/detach shifts each touched link's fair share in a
        known direction, which screens the candidates: an **attach**
        only lowers shares, so only flows whose current rate *exceeds*
        the new share (plus the newcomer itself) can change; a
        **detach** only raises them, so only flows that were
        bottlenecked *at* a touched link -- ``rate == capacity /
        (count + 1)``, an exact float because rates are pure functions
        of the occupancy counts -- can rise.  Screened-out flows would
        have recomputed to their current rate, so skipping them changes
        no rate, no event, and no utilization sample; it is what keeps
        a hot core link (hundreds of crossing flows) from turning every
        membership change into a full re-rate.  Callers that pass
        neither hint get the unscreened full visit.
        """
        now = self.sim.now
        affected = set()
        if added is not None:
            affected.add(added.flow_id)
        for link in touched:
            n = len(link._flows)
            if n == 0:
                continue
            if added is not None:
                share = link.capacity / n
                for fid in link._flows:
                    flow = self._flows.get(fid)
                    if flow is not None and flow.rate > share:
                        affected.add(fid)
            elif removed:
                prev_share = link.capacity / (n + 1)
                for fid in link._flows:
                    flow = self._flows.get(fid)
                    if flow is not None and flow.rate == prev_share:
                        affected.add(fid)
            else:
                affected.update(link._flows)
        for flow_id in sorted(affected):
            flow = self._flows.get(flow_id)
            if flow is None or flow.state is not FlowState.ACTIVE:
                continue
            rate = self._rate_of(flow)
            if rate != flow.rate:
                flow._set_rate(rate)
            for link in flow.path:
                if link._flows.get(flow_id) != rate:
                    link._set_flow_rate(flow_id, rate, now)

    # -- introspection -------------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Flows currently being served."""
        return sum(
            1 for f in self._flows.values() if f.state is FlowState.ACTIVE
        )

    def mean_uplink_utilization(self) -> float:
        """Mean utilization over all rack uplinks, settled to now."""
        links = self.uplinks()
        if not links:
            return 0.0
        now = self.sim.now
        return sum(link.mean_utilization(now) for link in links) / len(links)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Fabric(hosts={len(self._nics)}, racks={len(self._uplinks)}, "
            f"flows={len(self._flows)})"
        )
