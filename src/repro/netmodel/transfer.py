"""Per-host transfer multiplexing.

Hadoop reducers fetch map outputs a few at a time
(``mapred.reduce.parallel.copies``); the :class:`TransferManager`
enforces that cap per *destination host* -- all reducers on a node
share its inbound fetch budget -- and queues the rest FIFO.  A
:class:`Transfer` is the handle work items hold: it survives pause
(suspend), resume, and cancel (kill) with exact byte accounting, and
its completion is an ordinary engine event (the underlying flow's
crossing).
"""

from __future__ import annotations

import enum
import functools
from collections import deque
from typing import Callable, Deque, Dict, Optional, TYPE_CHECKING

from repro.netmodel.flow import Flow, FlowState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netmodel.fabric import Fabric


class TransferState(enum.Enum):
    """Lifecycle of a managed transfer."""

    QUEUED = "queued"
    ACTIVE = "active"
    PAUSED = "paused"
    DONE = "done"
    CANCELLED = "cancelled"


class Transfer:
    """One managed fetch of ``nbytes`` from ``src`` into ``dst``."""

    __slots__ = (
        "src",
        "dst",
        "nbytes",
        "on_done",
        "label",
        "owner",
        "seq",
        "state",
        "flow",
        "_final_bytes",
    )

    def __init__(self, src, dst, nbytes, on_done, label, owner, seq=0):
        self.src = src
        self.dst = dst
        self.nbytes = float(nbytes)
        self.on_done = on_done
        self.label = label
        self.owner = owner
        #: manager-assigned id, deterministic in fetch order; the
        #: telemetry span tracer keys start/done records on it
        self.seq = seq
        self.state = TransferState.QUEUED
        self.flow: Optional[Flow] = None
        self._final_bytes: Optional[float] = None

    @property
    def transferred(self) -> float:
        """Bytes delivered so far (frozen at cancel/completion)."""
        if self._final_bytes is not None:
            return self._final_bytes
        if self.flow is not None:
            return self.flow.transferred
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Transfer({self.label}, {self.src}->{self.dst}, "
            f"{self.state.value})"
        )


class TransferManager:
    """FIFO fetch queues with a per-destination-host concurrency cap."""

    def __init__(self, fabric: "Fabric", max_flows_per_host: int):
        self.fabric = fabric
        self.max_flows_per_host = max_flows_per_host
        self._active: Dict[str, int] = {}
        self._queues: Dict[str, Deque[Transfer]] = {}
        self._xfer_seq = 0

    # -- API ------------------------------------------------------------------

    def fetch(
        self,
        src: str,
        dst: str,
        nbytes: float,
        on_done: Callable[[Transfer], None],
        label: str = "",
        owner=None,
    ) -> Transfer:
        """Request a transfer; it starts now if ``dst`` has fetch
        budget, else queues behind the host's earlier requests."""
        self._xfer_seq += 1
        transfer = Transfer(src, dst, nbytes, on_done, label, owner,
                            seq=self._xfer_seq)
        self._queues.setdefault(dst, deque()).append(transfer)
        self._pump(dst)
        return transfer

    def pause(self, transfer: Transfer) -> None:
        """Hold a transfer: an active one pauses its flow and releases
        its fetch slot to the next queued transfer; a queued one is
        simply skipped until resumed."""
        if transfer.state is TransferState.ACTIVE:
            transfer.state = TransferState.PAUSED
            self.fabric.pause_flow(transfer.flow)
            self._release_slot(transfer.dst)
        elif transfer.state is TransferState.QUEUED:
            transfer.state = TransferState.PAUSED

    def resume(self, transfer: Transfer) -> None:
        """Re-queue a paused transfer (progress preserved)."""
        if transfer.state is not TransferState.PAUSED:
            return
        transfer.state = TransferState.QUEUED
        queue = self._queues.setdefault(transfer.dst, deque())
        if transfer not in queue:
            queue.append(transfer)
        self._pump(transfer.dst)

    def cancel(self, transfer: Transfer) -> None:
        """Abort a transfer; partial bytes are frozen (and charged as
        cancelled traffic by the fabric)."""
        if transfer.state in (TransferState.DONE, TransferState.CANCELLED):
            return
        was_active = transfer.state is TransferState.ACTIVE
        started = transfer.flow is not None
        transfer._final_bytes = transfer.transferred
        transfer.state = TransferState.CANCELLED
        if transfer.flow is not None:
            self.fabric.cancel_flow(transfer.flow)
        if started:
            self._trace("net.xfer-cancel", transfer,
                        bytes=int(transfer.transferred))
        if was_active:
            self._release_slot(transfer.dst)

    # -- internals ----------------------------------------------------------------

    def _pump(self, dst: str) -> None:
        queue = self._queues.get(dst)
        if not queue:
            return
        while queue and self._active.get(dst, 0) < self.max_flows_per_host:
            transfer = queue.popleft()
            if transfer.state is not TransferState.QUEUED:
                continue  # paused or cancelled while waiting
            self._active[dst] = self._active.get(dst, 0) + 1
            transfer.state = TransferState.ACTIVE
            if transfer.flow is not None:
                # A previously paused transfer: resume where it left off.
                self.fabric.resume_flow(transfer.flow)
            else:
                self._trace("net.xfer-start", transfer,
                            bytes=int(transfer.nbytes))
                transfer.flow = self.fabric.start_flow(
                    transfer.src,
                    transfer.dst,
                    transfer.nbytes,
                    functools.partial(self._flow_done, transfer),
                    label=transfer.label,
                    owner=transfer.owner,
                )

    def _flow_done(self, transfer: Transfer, flow: Flow) -> None:
        self._done(transfer)

    def _done(self, transfer: Transfer) -> None:
        transfer.state = TransferState.DONE
        transfer._final_bytes = transfer.nbytes
        self._trace("net.xfer-done", transfer, bytes=int(transfer.nbytes))
        self._release_slot(transfer.dst)
        transfer.on_done(transfer)

    def _trace(self, label: str, transfer: Transfer, **fields) -> None:
        """Narrate a transfer milestone (records only; no events)."""
        sim = self.fabric.sim
        sim.trace_log.record(
            sim.now,
            label,
            xfer=transfer.seq,
            name=transfer.label,
            src=transfer.src,
            dst=transfer.dst,
            owner=getattr(transfer.owner, "name", "") or "",
            **fields,
        )

    def _release_slot(self, dst: str) -> None:
        self._active[dst] = max(0, self._active.get(dst, 0) - 1)
        self._pump(dst)

    def active_count(self, dst: str) -> int:
        """Transfers currently running into ``dst``."""
        return self._active.get(dst, 0)

    def queued_count(self, dst: str) -> int:
        """Transfers waiting for fetch budget into ``dst``."""
        queue = self._queues.get(dst)
        if not queue:
            return 0
        return sum(1 for t in queue if t.state is TransferState.QUEUED)
