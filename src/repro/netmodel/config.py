"""Network fabric configuration.

Bandwidths are bytes/second.  The defaults describe the classic
oversubscribed Hadoop pod: gigabit NICs, a per-rack uplink carrying a
fraction of the rack's aggregate NIC bandwidth (the *oversubscription
ratio* every datacenter-network paper fights about), and a core that
is fast relative to any single uplink.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import MB

#: 1 GbE in bytes/second -- the paper-era Hadoop cluster NIC.
GIGABIT = 125 * MB


@dataclass(frozen=True)
class NetConfig:
    """Knobs of one :class:`~repro.netmodel.fabric.Fabric`.

    Attributes
    ----------
    nic_bandwidth:
        Line rate of every host NIC (one shared segment per host; send
        and receive share it, which keeps the link count linear in
        hosts).
    uplink_bandwidth:
        Rack uplink (ToR-to-core) bandwidth.  See
        :meth:`oversubscribed` for deriving it from a ratio.
    core_bandwidth:
        The core switch, modelled as one shared segment.
    loopback_bandwidth:
        Rate of host-local transfers (empty path: the data never
        leaves the machine, so it moves at memory/disk speed).
    max_flows_per_host:
        Cap on concurrently active inbound flows per destination host
        (Hadoop's ``mapred.reduce.parallel.copies`` aggregated at node
        level); further fetches queue FIFO in the
        :class:`~repro.netmodel.transfer.TransferManager`.
    utilization_bucket:
        Seconds per bucket of the per-link utilization timeline.
    """

    nic_bandwidth: float = float(GIGABIT)
    uplink_bandwidth: float = float(4 * GIGABIT)
    core_bandwidth: float = float(16 * GIGABIT)
    loopback_bandwidth: float = float(10 * GIGABIT)
    max_flows_per_host: int = 5
    utilization_bucket: float = 10.0

    def __post_init__(self) -> None:
        for name in (
            "nic_bandwidth",
            "uplink_bandwidth",
            "core_bandwidth",
            "loopback_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.max_flows_per_host < 1:
            raise ConfigurationError("max_flows_per_host must be at least 1")
        if self.utilization_bucket <= 0:
            raise ConfigurationError("utilization_bucket must be positive")

    @classmethod
    def oversubscribed(
        cls,
        hosts_per_rack: int,
        oversubscription: float,
        nic_bandwidth: float = float(GIGABIT),
        **overrides,
    ) -> "NetConfig":
        """A fabric whose rack uplinks carry ``1/oversubscription`` of
        the rack's aggregate NIC bandwidth (ratio 1.0 = non-blocking;
        the shuffle study uses >= 2).  The core is sized at twice one
        uplink so contention concentrates where real pods have it."""
        if hosts_per_rack < 1:
            raise ConfigurationError("hosts_per_rack must be at least 1")
        if oversubscription <= 0:
            raise ConfigurationError("oversubscription must be positive")
        uplink = nic_bandwidth * hosts_per_rack / oversubscription
        return cls(
            nic_bandwidth=float(nic_bandwidth),
            uplink_bandwidth=float(uplink),
            core_bandwidth=float(2 * uplink),
            **overrides,
        )

    def replace(self, **overrides) -> "NetConfig":
        """Copy with the given fields replaced."""
        return replace(self, **overrides)
