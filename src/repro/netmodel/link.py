"""Links: the shared segments of the fabric.

A :class:`Link` is a capacity shared equally among the flows that
cross it -- the same egalitarian processor-sharing policy as
:class:`~repro.osmodel.resources.RateResource`, but a flow's *actual*
rate is set by its bottleneck link, so a link cannot integrate one
cumulative service function for all of its flows (they progress at
different rates).  The link therefore keeps only membership and the
fair-share arithmetic; per-flow progress lives in each flow's own
virtual-time pipe (see :mod:`repro.netmodel.flow`), and the
:class:`~repro.netmodel.fabric.Fabric` couples the two.

Each link also accumulates a deterministic utilization timeline: the
aggregate flow rate is piecewise constant between fabric updates, so
the byte integral per fixed-width bucket is exact.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SimulationError


class Link:
    """One shared network segment (NIC, rack uplink, core switch)."""

    __slots__ = (
        "name",
        "capacity",
        "_flows",
        "_rate_sum",
        "_last_at",
        "_created_at",
        "_bucket_width",
        "_buckets",
        "bytes_carried",
    )

    def __init__(
        self, name: str, capacity: float, now: float, bucket_width: float = 10.0
    ):
        if capacity <= 0:
            raise SimulationError(f"{name}: link capacity must be positive")
        self.name = name
        self.capacity = float(capacity)
        #: flow_id -> current rate; insertion-ordered for determinism
        self._flows: Dict[int, float] = {}
        #: sum of the current rates of all flows on this link
        self._rate_sum = 0.0
        self._last_at = now
        self._created_at = now
        self._bucket_width = bucket_width
        #: bucket index -> bytes carried during that bucket
        self._buckets: Dict[int, float] = {}
        self.bytes_carried = 0.0

    # -- fair sharing ------------------------------------------------------

    @property
    def flow_count(self) -> int:
        """Number of flows currently crossing this link."""
        return len(self._flows)

    def fair_share(self) -> float:
        """Bytes/second each crossing flow is entitled to."""
        n = len(self._flows)
        if n == 0:
            return self.capacity
        return self.capacity / n

    # -- membership (fabric-internal) --------------------------------------

    def _add(self, flow_id: int, now: float) -> None:
        self._accumulate(now)
        self._flows[flow_id] = 0.0

    def _remove(self, flow_id: int, now: float) -> None:
        self._accumulate(now)
        rate = self._flows.pop(flow_id, 0.0)
        self._rate_sum -= rate
        if not self._flows:
            self._rate_sum = 0.0  # kill residual float dust

    def _set_flow_rate(self, flow_id: int, rate: float, now: float) -> None:
        self._accumulate(now)
        self._rate_sum += rate - self._flows[flow_id]
        self._flows[flow_id] = rate

    # -- utilization accounting ----------------------------------------------

    def _accumulate(self, now: float) -> None:
        """Fold the piecewise-constant aggregate rate since the last
        change into the byte integral and its buckets."""
        elapsed = now - self._last_at
        if elapsed <= 0 or self._rate_sum <= 0:
            self._last_at = now
            return
        start, rate = self._last_at, self._rate_sum
        self.bytes_carried += rate * elapsed
        width = self._bucket_width
        first = int(start // width)
        last = int(now // width)
        for bucket in range(first, last + 1):
            lo = max(start, bucket * width)
            hi = min(now, (bucket + 1) * width)
            if hi > lo:
                self._buckets[bucket] = self._buckets.get(bucket, 0.0) + rate * (
                    hi - lo
                )
        self._last_at = now

    def mean_utilization(self, now: float) -> float:
        """Fraction of capacity used since construction, settled to now."""
        self._accumulate(now)
        elapsed = now - self._created_at
        if elapsed <= 0:
            return 0.0
        return self.bytes_carried / (self.capacity * elapsed)

    def utilization_timeline(self, now: float) -> List[Tuple[float, float]]:
        """(bucket start time, utilization in [0, 1]) pairs, in order."""
        self._accumulate(now)
        width = self._bucket_width
        return [
            (bucket * width, self._buckets[bucket] / (self.capacity * width))
            for bucket in sorted(self._buckets)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Link(name={self.name!r}, flows={len(self._flows)})"
