"""Observability substrate: metric sketches, span traces, profiling.

The paper's claims are about *episodes* -- a suspend is cheap because
its SIGTSTP -> swap-out -> SIGCONT -> fault-in arc wastes little work
compared with a kill's relaunch arc -- yet the raw simulation output
is a flat :class:`~repro.sim.trace.TraceLog`.  This package turns that
stream into three structured views, none of which may perturb the
simulation they observe:

* :mod:`repro.telemetry.registry` -- counters, gauges and
  deterministic log-bucket histograms with exact merge, so sharded
  experiment runs aggregate *streams* instead of materialised sample
  lists, byte-identically for any ``--workers`` count;
* :mod:`repro.telemetry.spans` -- a span tracer riding
  ``TraceLog.subscribe`` that stitches flat records into parent/child
  spans (attempt lifecycles, preemption episodes, shuffle flows),
  exported as Chrome trace-event / Perfetto JSON
  (:mod:`repro.telemetry.export`);
* :mod:`repro.telemetry.profiling` -- the engine's self-profile
  (per-label fired-event counts, per-callback wall attribution, heap
  churn), surfaced through ``repro profile --engine`` and the
  bench_guard artifact.

**Silence invariant**: every collector here is observation only.  A
run with telemetry attached produces the same events, the same RNG
draws and the same TraceLog digest as a run without -- the
differential suite pins that, exactly as it pins the admission gate.
"""

from repro.telemetry.export import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    LogHistogram,
    MetricRegistry,
)
from repro.telemetry.spans import Span, SpanCollector

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricRegistry",
    "Span",
    "SpanCollector",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
