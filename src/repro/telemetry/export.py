"""Chrome trace-event / Perfetto JSON export for span collections.

Emits the JSON-object flavour of the trace-event format --
``{"traceEvents": [...]}`` -- which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Simulated seconds map to
trace microseconds (``ts = time * 1e6``), so a 300-second run renders
as a 5-minute timeline.

Mapping:

* a *process* groups one experiment cell (e.g. ``fig2/suspend``);
* a *thread* is one span track (a host, a ``tip:<id>`` lane, ...);
* closed spans become ``"X"`` complete events;
* instants become ``"i"`` instant events (thread scope);
* process/thread names are declared with ``"M"`` metadata events.

Everything is emitted in deterministic order (metadata first, then
events sorted by ``(ts, pid, tid, name)``), so the exported JSON for a
fixed seed is byte-identical across runs -- the CI smoke job diffs on
that.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.telemetry.spans import Instant, Span

US_PER_SECOND = 1_000_000.0

#: event phases the validator accepts (the subset this exporter emits)
_PHASES = {"X", "i", "M"}
_METADATA_NAMES = {"process_name", "thread_name", "process_sort_index",
                   "thread_sort_index"}


def _ts(time_s: float) -> float:
    return round(time_s * US_PER_SECOND, 3)


def to_chrome_trace(
    groups: Sequence[Tuple[str, Iterable[Span], Iterable[Instant]]],
) -> Dict[str, Any]:
    """Build a trace-event JSON object.

    ``groups`` is a sequence of ``(process_name, spans, instants)``;
    each group becomes one trace process, its tracks become threads.
    """
    events: List[Dict[str, Any]] = []
    body: List[Dict[str, Any]] = []
    for pid, (process_name, spans, instants) in enumerate(groups, start=1):
        spans = list(spans)
        instants = list(instants)
        tracks = sorted(
            {span.track for span in spans} | {inst.track for inst in instants}
        )
        tids = {track: tid for tid, track in enumerate(tracks, start=1)}
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        })
        for track, tid in sorted(tids.items()):
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        for span in spans:
            body.append({
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "ts": _ts(span.start),
                "dur": _ts(span.end) - _ts(span.start),
                "pid": pid,
                "tid": tids[span.track],
                "args": dict(span.args),
            })
        for inst in instants:
            body.append({
                "ph": "i",
                "s": "t",
                "name": inst.name,
                "cat": inst.cat,
                "ts": _ts(inst.time),
                "pid": pid,
                "tid": tids[inst.track],
                "args": dict(inst.args),
            })
    body.sort(key=lambda ev: (ev["ts"], ev["pid"], ev["tid"], ev["name"]))
    events.extend(body)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-seconds", "us_per_second": US_PER_SECOND},
    }


def validate_chrome_trace(obj: Any) -> None:
    """Raise ``ValueError`` unless ``obj`` is a well-formed
    trace-event JSON object (the subset this package emits)."""
    if not isinstance(obj, dict):
        raise ValueError("trace must be a JSON object")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace missing 'traceEvents' list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where}: unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        if ph == "M":
            if ev["name"] not in _METADATA_NAMES:
                raise ValueError(f"{where}: unknown metadata {ev['name']!r}")
            if not isinstance(ev.get("args"), dict):
                raise ValueError(f"{where}: metadata needs args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: complete event needs dur >= 0")
        if ph == "i" and ev.get("s") not in (None, "t", "p", "g"):
            raise ValueError(f"{where}: bad instant scope {ev.get('s')!r}")


def write_chrome_trace(path: str, obj: Dict[str, Any]) -> None:
    """Validate and write a trace to ``path`` (deterministic JSON)."""
    validate_chrome_trace(obj)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(obj, handle, indent=1, sort_keys=True)
        handle.write("\n")
