"""Deterministic span tracing over the flat TraceLog stream.

The simulator narrates itself as flat ``(time, label, fields)``
records; this module stitches them into *spans* -- named intervals
with a category, a track (the Perfetto "thread" row they render on)
and structured args -- via :meth:`~repro.sim.trace.TraceLog.subscribe`,
so it works streaming with the stored log disabled, or after the fact
via :meth:`SpanCollector.feed`.

Span families (category / what opens and closes them):

``attempt``
    One task-attempt lifecycle: ``attempt.launch`` ->
    ``attempt.finished``; args carry the terminal state.
``suspend``
    A process's stopped interval: ``os.stopped`` -> ``os.resumed``
    (children of the attempt span on the same track).
``episode``
    A preemption episode on one TIP.  A *suspend episode* opens at
    ``jt.must-suspend`` and closes at ``jt.resumed`` (or the tip's
    terminal record), with child phases ``suspending`` (directive ->
    stop confirmed) and ``stopped`` (stop -> resume confirmed); its
    ``wasted_seconds`` is 0 by construction -- pages fault back in
    and work continues.  A *kill episode* opens at ``jt.must-kill``
    and closes when the relaunched attempt of the same TIP starts (or
    at teardown); ``wasted_seconds`` accumulates the exact work the
    JobTracker charged to the wasted ledger for those kills, so the
    episode view reconciles with the ledger.
``net``
    One managed shuffle transfer: ``net.xfer-start`` ->
    ``net.xfer-done`` / ``net.xfer-cancel``; args carry the byte
    counts.

Heartbeat scheduling rounds (``jt.response``) and preemption
directives are emitted as instant events.

**Silence invariant**: the collector only reads records.  Attaching
it changes no event, no RNG draw and no stored record -- the
differential suite pins TraceLog digests with and without a collector
across fig2/scale/memscale cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.trace import TraceLog, TraceRecord

ATTEMPT_PREFIX = "attempt_"


def tip_of_attempt(attempt_id: str) -> Optional[str]:
    """The TIP id embedded in an attempt id
    (``attempt_<tip>_<n>`` -> ``<tip>``)."""
    if not attempt_id.startswith(ATTEMPT_PREFIX):
        return None
    body = attempt_id[len(ATTEMPT_PREFIX):]
    tip, sep, seq = body.rpartition("_")
    if not sep or not seq.isdigit():
        return None
    return tip


@dataclass
class Span:
    """One closed interval on a track."""

    name: str
    cat: str
    start: float
    end: float
    track: str
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Instant:
    """A zero-duration marker."""

    name: str
    cat: str
    time: float
    track: str
    args: Dict[str, Any] = field(default_factory=dict)


class SpanCollector:
    """Stitches TraceLog records into spans.

    Parameters
    ----------
    include_heartbeats:
        Emit an instant event per ``jt.response`` round (off by
        default: large replays produce one per heartbeat exchange).
    """

    def __init__(self, include_heartbeats: bool = False):
        self.include_heartbeats = include_heartbeats
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        #: records seen (telemetry's own liveness counter)
        self.records_seen = 0
        # open state, keyed as noted
        self._attempts: Dict[str, Dict[str, Any]] = {}  # attempt_id
        self._stops: Dict[str, Dict[str, Any]] = {}  # process name
        self._suspends: Dict[str, Dict[str, Any]] = {}  # tip_id
        self._kills: Dict[str, Dict[str, Any]] = {}  # tip_id
        self._transfers: Dict[int, Dict[str, Any]] = {}  # xfer seq

    # -- wiring -----------------------------------------------------------

    def attach(self, trace_log: TraceLog) -> "SpanCollector":
        """Subscribe to a live log (works with storage disabled)."""
        trace_log.subscribe(self.on_record)
        return self

    def feed(self, trace_log: TraceLog) -> "SpanCollector":
        """Replay a stored log through the collector."""
        for record in trace_log:
            self.on_record(record)
        return self

    # -- record dispatch --------------------------------------------------

    def on_record(self, rec: TraceRecord) -> None:
        self.records_seen += 1
        label = rec.label
        if label.startswith("attempt."):
            self._on_attempt(rec)
        elif label.startswith("os."):
            self._on_os(rec)
        elif label.startswith("jt."):
            self._on_jobtracker(rec)
        elif label.startswith("net."):
            self._on_net(rec)
        elif label.startswith("preempt."):
            self.instants.append(
                Instant(
                    name=label,
                    cat="directive",
                    time=rec.time,
                    track="preemption",
                    args=dict(rec.fields),
                )
            )

    # -- attempt lifecycle ------------------------------------------------

    def _on_attempt(self, rec: TraceRecord) -> None:
        attempt_id = rec.fields.get("attempt")
        if attempt_id is None:
            return
        host = rec.fields.get("host", "?")
        if rec.label == "attempt.launch":
            self._attempts[attempt_id] = {"start": rec.time, "host": host}
            tip = tip_of_attempt(attempt_id)
            if tip is not None and tip in self._kills:
                # The relaunch arc completes the kill episode: work
                # re-starts from zero here.
                self._close_kill(tip, rec.time, relaunched=True)
        elif rec.label == "attempt.finished":
            open_attempt = self._attempts.pop(attempt_id, None)
            if open_attempt is None:
                return
            tip = tip_of_attempt(attempt_id)
            self.spans.append(
                Span(
                    name=attempt_id,
                    cat="attempt",
                    start=open_attempt["start"],
                    end=rec.time,
                    track=open_attempt["host"],
                    args={
                        "state": rec.fields.get("state", "?"),
                        "tip": tip or "?",
                    },
                )
            )

    # -- process stop/resume ----------------------------------------------

    def _on_os(self, rec: TraceRecord) -> None:
        name = rec.fields.get("name")
        if name is None:
            return
        host = rec.fields.get("host", "?")
        if rec.label == "os.stopped":
            self._stops[name] = {"start": rec.time, "host": host}
        elif rec.label == "os.resumed":
            stop = self._stops.pop(name, None)
            if stop is not None:
                self.spans.append(
                    Span(
                        name=f"stopped:{name}",
                        cat="suspend",
                        start=stop["start"],
                        end=rec.time,
                        track=stop["host"],
                        args={"process": name},
                    )
                )

    # -- preemption episodes ----------------------------------------------

    def _on_jobtracker(self, rec: TraceRecord) -> None:
        label, fields = rec.label, rec.fields
        tip = fields.get("tip")
        if label == "jt.must-suspend" and tip is not None:
            self._suspends.setdefault(
                tip, {"start": rec.time, "confirmed": None, "phases": []}
            )
        elif label == "jt.suspended" and tip in self._suspends:
            episode = self._suspends[tip]
            episode["confirmed"] = rec.time
            episode["phases"].append(("suspending", episode["start"], rec.time))
        elif label == "jt.resumed" and tip in self._suspends:
            episode = self._suspends.pop(tip)
            if episode["confirmed"] is not None:
                episode["phases"].append(
                    ("stopped", episode["confirmed"], rec.time)
                )
            self._emit_suspend_episode(tip, episode, rec.time)
        elif label == "jt.must-kill" and tip is not None:
            self._kills.setdefault(
                tip, {"start": rec.time, "wasted": 0.0, "kills": 0}
            )
        elif label == "jt.tip-killed" and tip in self._kills:
            episode = self._kills[tip]
            episode["kills"] += 1
            episode["wasted"] += float(fields.get("wasted", 0.0))
            if not fields.get("reschedule", True):
                # Teardown collateral: no relaunch is coming.
                self._close_kill(tip, rec.time, relaunched=False)
        elif label == "jt.tip-done" and tip is not None:
            # A tip finishing closes any episode still open on it
            # (e.g. resumed-to-completion without a resume confirm,
            # or a kill whose job completed from another attempt).
            if tip in self._suspends:
                self._emit_suspend_episode(
                    tip, self._suspends.pop(tip), rec.time
                )
            if tip in self._kills:
                self._close_kill(tip, rec.time, relaunched=False)
        elif label == "jt.response" and self.include_heartbeats:
            self.instants.append(
                Instant(
                    name="heartbeat",
                    cat="heartbeat",
                    time=rec.time,
                    track=str(fields.get("tracker", "?")),
                    args={"actions": fields.get("actions", "")},
                )
            )

    def _emit_suspend_episode(
        self, tip: str, episode: Dict[str, Any], end: float
    ) -> None:
        for phase_name, start, stop in episode["phases"]:
            self.spans.append(
                Span(
                    name=phase_name,
                    cat="episode-phase",
                    start=start,
                    end=stop,
                    track=f"tip:{tip}",
                )
            )
        self.spans.append(
            Span(
                name=f"suspend-episode:{tip}",
                cat="episode",
                start=episode["start"],
                end=end,
                track=f"tip:{tip}",
                args={"kind": "suspend", "wasted_seconds": 0.0},
            )
        )

    def _close_kill(self, tip: str, end: float, relaunched: bool) -> None:
        episode = self._kills.pop(tip)
        self.spans.append(
            Span(
                name=f"kill-episode:{tip}",
                cat="episode",
                start=episode["start"],
                end=end,
                track=f"tip:{tip}",
                args={
                    "kind": "kill",
                    "wasted_seconds": episode["wasted"],
                    "kills": episode["kills"],
                    "relaunched": relaunched,
                },
            )
        )

    # -- network transfers ------------------------------------------------

    def _on_net(self, rec: TraceRecord) -> None:
        xfer = rec.fields.get("xfer")
        if xfer is None:
            return
        if rec.label == "net.xfer-start":
            self._transfers[xfer] = {
                "start": rec.time,
                "label": rec.fields.get("name", "xfer"),
                "dst": rec.fields.get("dst", "?"),
                "src": rec.fields.get("src", "?"),
            }
        elif rec.label in ("net.xfer-done", "net.xfer-cancel"):
            open_xfer = self._transfers.pop(xfer, None)
            if open_xfer is None:
                return
            self.spans.append(
                Span(
                    name=open_xfer["label"],
                    cat="net",
                    start=open_xfer["start"],
                    end=rec.time,
                    track=open_xfer["dst"],
                    args={
                        "src": open_xfer["src"],
                        "bytes": rec.fields.get("bytes", 0),
                        "cancelled": rec.label == "net.xfer-cancel",
                    },
                )
            )

    # -- teardown ---------------------------------------------------------

    def close_open(self, now: float) -> None:
        """Close every still-open span at ``now`` (end of run)."""
        for attempt_id, open_attempt in sorted(self._attempts.items()):
            self.spans.append(
                Span(
                    name=attempt_id,
                    cat="attempt",
                    start=open_attempt["start"],
                    end=now,
                    track=open_attempt["host"],
                    args={"state": "open", "tip": tip_of_attempt(attempt_id) or "?"},
                )
            )
        self._attempts.clear()
        for name, stop in sorted(self._stops.items()):
            self.spans.append(
                Span(
                    name=f"stopped:{name}",
                    cat="suspend",
                    start=stop["start"],
                    end=now,
                    track=stop["host"],
                    args={"process": name, "open": True},
                )
            )
        self._stops.clear()
        for tip in sorted(self._suspends):
            self._emit_suspend_episode(tip, self._suspends.pop(tip), now)
        for tip in sorted(self._kills):
            self._close_kill(tip, now, relaunched=False)

    # -- queries ----------------------------------------------------------

    def by_category(self, cat: str) -> List[Span]:
        """Closed spans of one category, in emission order."""
        return [span for span in self.spans if span.cat == cat]

    def episode_wasted_seconds(self) -> float:
        """Summed ``wasted_seconds`` across every closed episode --
        the number the wasted-work-ledger reconciliation tests check."""
        return sum(
            span.args.get("wasted_seconds", 0.0) for span in self.by_category("episode")
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SpanCollector({len(self.spans)} spans, "
            f"{len(self.instants)} instants, {self.records_seen} records)"
        )
