"""Streaming metric sketches with an order-insensitive exact merge.

The fleet-scale runner shards experiment grids over worker processes;
every shard streams its samples into a :class:`MetricRegistry` and the
parent folds the shard registries together.  Two properties make that
fold safe to run in *any* order:

* **histogram buckets are deterministic** -- a sample lands in a
  log-spaced bucket computed from its IEEE-754 exponent and mantissa
  (no data-dependent bucket boundaries, no reservoir randomness);
* **moments are exact** -- sums and sums of squares accumulate as
  :class:`fractions.Fraction` (every float is an exact rational, and
  rational addition is associative and commutative), so merging shards
  A+(B+C) or (C+A)+B yields the same bits, and :meth:`MetricRegistry.
  digest` over a serial run equals the digest over any ``--workers N``
  sharding.

Floats only surface at read time (:meth:`LogHistogram.mean`,
:meth:`LogHistogram.quantile`), after the exact arithmetic has
settled.  This is the "streaming metric sketches instead of
materialized sojourn lists" piece of the ROADMAP's fleet-scale item:
a histogram holds O(buckets) state however many samples it absorbs.
"""

from __future__ import annotations

import hashlib
import math
from fractions import Fraction
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError

#: sub-buckets per power of two: relative bucket width 2**(1/8) ~ 9%,
#: plenty for sojourn percentiles while keeping sketches tiny
SUBBUCKETS = 8

#: mantissa boundaries of the sub-buckets, in [0.5, 1.0); computed
#: once so bucket assignment is a short deterministic scan
_BOUNDS: Tuple[float, ...] = tuple(
    0.5 * 2.0 ** (i / SUBBUCKETS) for i in range(SUBBUCKETS)
)


def bucket_index(value: float) -> Tuple[int, int]:
    """Deterministic (sign, log-bucket) key for a finite sample.

    The bucket is ``exponent * SUBBUCKETS + sub`` where ``exponent``
    comes from :func:`math.frexp` and ``sub`` places the mantissa
    among :data:`SUBBUCKETS` geometric slices -- pure IEEE arithmetic,
    identical on every platform the tests run on.
    """
    if value == 0:
        return (0, 0)
    sign = 1 if value > 0 else -1
    mantissa, exponent = math.frexp(abs(value))
    sub = 0
    for i in range(SUBBUCKETS - 1, 0, -1):
        if mantissa >= _BOUNDS[i]:
            sub = i
            break
    return (sign, exponent * SUBBUCKETS + sub)


def bucket_bounds(key: Tuple[int, int]) -> Tuple[float, float]:
    """The [low, high) value range of a bucket key (0 for the zero
    bucket)."""
    sign, idx = key
    if sign == 0:
        return (0.0, 0.0)
    exponent, sub = divmod(idx, SUBBUCKETS)
    low = _BOUNDS[sub] * 2.0 ** exponent
    if sub == SUBBUCKETS - 1:
        high = 0.5 * 2.0 ** (exponent + 1)
    else:
        high = _BOUNDS[sub + 1] * 2.0 ** exponent
    return (sign * low, sign * high) if sign > 0 else (sign * high, sign * low)


def _bucket_sort_key(key: Tuple[int, int]) -> Tuple[int, int]:
    """Ascending value order: negatives (large idx first), zero,
    positives."""
    sign, idx = key
    return (sign, idx if sign >= 0 else -idx)


class Counter:
    """A monotonically growing integer."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: int = 0):
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigurationError("counters only count up")
        self.value += int(n)

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def state(self) -> str:
        return f"counter:{self.value}"


class Gauge:
    """A last-write-wins sample; merge keeps the lexicographic max of
    ``(time, value)`` so shard order cannot matter."""

    __slots__ = ("time", "value")
    kind = "gauge"

    def __init__(self, time: Optional[float] = None, value: float = 0.0):
        self.time = time
        self.value = float(value)

    def set(self, time: float, value: float) -> None:
        if self.time is None or (time, value) >= (self.time, self.value):
            self.time, self.value = float(time), float(value)

    def merge(self, other: "Gauge") -> None:
        if other.time is not None:
            self.set(other.time, other.value)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "time": self.time, "value": self.value}

    def state(self) -> str:
        return f"gauge:{self.time!r}:{self.value!r}"


class LogHistogram:
    """Deterministic log-bucket histogram with exact moments."""

    __slots__ = ("counts", "count", "_sum", "_sum_sq", "minimum", "maximum")
    kind = "histogram"

    def __init__(self) -> None:
        self.counts: Dict[Tuple[int, int], int] = {}
        self.count = 0
        self._sum = Fraction(0)
        self._sum_sq = Fraction(0)
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ConfigurationError(
                f"histograms take finite samples (got {value!r})"
            )
        key = bucket_index(value)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.count += 1
        exact = Fraction(value)
        self._sum += exact
        self._sum_sq += exact * exact
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    # -- reads ------------------------------------------------------------

    @property
    def total(self) -> float:
        """Exact sum of every sample, rounded once to float."""
        return float(self._sum)

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return float(self._sum / self.count)

    def variance(self) -> float:
        """Population variance from the exact moments."""
        if self.count == 0:
            return 0.0
        n = self.count
        return float(self._sum_sq / n - (self._sum / n) ** 2)

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (q in [0, 1]).

        Walks the buckets in value order and returns the geometric
        midpoint of the bucket holding the q-th sample -- within one
        bucket width (~9% relative) of the exact order statistic, and
        a pure function of the bucket counts, so identical however
        the shards merged.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile q must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0
        for key in sorted(self.counts, key=_bucket_sort_key):
            seen += self.counts[key]
            if seen > rank:
                low, high = bucket_bounds(key)
                if low == 0.0 or high == 0.0:
                    return 0.0
                mid = math.sqrt(abs(low) * abs(high))
                return mid if low > 0 else -mid
        low, high = bucket_bounds(max(self.counts, key=_bucket_sort_key))
        return high  # pragma: no cover - defensive (rank < count always)

    # -- merge / io -------------------------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        for key, n in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + n
        self.count += other.count
        self._sum += other._sum
        self._sum_sq += other._sum_sq
        for bound in (other.minimum,):
            if bound is not None and (self.minimum is None or bound < self.minimum):
                self.minimum = bound
        for bound in (other.maximum,):
            if bound is not None and (self.maximum is None or bound > self.maximum):
                self.maximum = bound

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "counts": {f"{s}:{i}": n for (s, i), n in self.counts.items()},
            "count": self.count,
            "sum": f"{self._sum.numerator}/{self._sum.denominator}",
            "sum_sq": f"{self._sum_sq.numerator}/{self._sum_sq.denominator}",
            "min": self.minimum,
            "max": self.maximum,
        }

    def state(self) -> str:
        items = sorted(self.counts.items())
        return (
            f"hist:{items!r}:{self.count}:{self._sum!r}:{self._sum_sq!r}"
            f":{self.minimum!r}:{self.maximum!r}"
        )


Metric = Union[Counter, Gauge, LogHistogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": LogHistogram}


def _metric_from_dict(payload: Dict[str, Any]) -> Metric:
    kind = payload.get("kind")
    if kind == "counter":
        return Counter(payload["value"])
    if kind == "gauge":
        return Gauge(payload["time"], payload["value"])
    if kind == "histogram":
        hist = LogHistogram()
        hist.counts = {
            (int(k.split(":")[0]), int(k.split(":")[1])): int(n)
            for k, n in payload["counts"].items()
        }
        hist.count = int(payload["count"])
        num, den = payload["sum"].split("/")
        hist._sum = Fraction(int(num), int(den))
        num, den = payload["sum_sq"].split("/")
        hist._sum_sq = Fraction(int(num), int(den))
        hist.minimum = payload["min"]
        hist.maximum = payload["max"]
        return hist
    raise ConfigurationError(f"unknown metric kind {kind!r}")


class MetricRegistry:
    """A named bag of metrics experiments stream samples into.

    Accessors are create-on-first-use; asking for an existing name
    with a different kind is an error (silent kind aliasing would make
    shard merges ill-defined).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{kind.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> LogHistogram:
        return self._get(name, LogHistogram)  # type: ignore[return-value]

    def observe(self, name: str, value: float) -> None:
        """Stream one sample into the named histogram."""
        self.histogram(name).observe(value)

    # -- introspection ----------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    # -- merge / io / digest ----------------------------------------------

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold another registry in; returns self for chaining.

        Commutative and associative: every metric's merge is, and the
        name space is a plain union.
        """
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = _metric_from_dict(metric.to_dict())
            elif type(mine) is not type(metric):
                raise ConfigurationError(
                    f"cannot merge {name!r}: {mine.kind} vs {metric.kind}"
                )
            else:
                mine.merge(metric)  # type: ignore[arg-type]
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot (crosses process boundaries in cell
        results)."""
        return {name: metric.to_dict() for name, metric in self._metrics.items()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricRegistry":
        registry = cls()
        for name, metric_payload in payload.items():
            registry._metrics[name] = _metric_from_dict(metric_payload)
        return registry

    def digest(self) -> str:
        """SHA-256 over every metric's exact state, name-sorted.

        Two registries digest equal iff they hold bit-identical state
        -- the value the serial-vs-sharded aggregation tests compare.
        """
        h = hashlib.sha256()
        for name in sorted(self._metrics):
            h.update(name.encode("utf-8"))
            h.update(b"\x1f")
            h.update(self._metrics[name].state().encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Human-facing view: per-metric headline numbers."""
        out: Dict[str, Dict[str, float]] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                out[name] = {"value": float(metric.value)}
            elif isinstance(metric, Gauge):
                out[name] = {"value": metric.value}
            else:
                out[name] = {
                    "count": float(metric.count),
                    "mean": metric.mean(),
                    "p50": metric.quantile(0.50),
                    "p95": metric.quantile(0.95),
                    "min": metric.minimum if metric.minimum is not None else 0.0,
                    "max": metric.maximum if metric.maximum is not None else 0.0,
                }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MetricRegistry({len(self._metrics)} metrics)"
