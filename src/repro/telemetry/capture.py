"""Run an experiment cell with telemetry attached and export it.

``repro trace <exp>`` needs a simulated run with a
:class:`~repro.telemetry.spans.SpanCollector` subscribed and the
engine profiling; this module owns that glue so the CLI stays thin and
tests can drive the exact same path.  One
:func:`capture_experiment` call runs a *representative cell* (or
cells) of the named experiment -- for ``fig2``/``fig3`` every
primitive at the paper's r=50% point, for the replay studies one
canonical cell -- and returns a :class:`TelemetryCapture` whose
``to_chrome()`` is ready for :func:`~repro.telemetry.export.
write_chrome_trace`.

The captures reuse the experiments' own cell functions with their own
derived seeds, so a captured run is the same simulation the sweep
would run -- the trace is of the science, not of a demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.telemetry.profiling import engine_stats
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.spans import SpanCollector

#: experiments capture_experiment knows how to trace
SUPPORTED = ("fig2", "fig3", "scale", "shuffle", "memscale")


@dataclass
class CellCapture:
    """Everything telemetry saw in one traced cell."""

    name: str
    collector: SpanCollector
    registry: MetricRegistry = field(default_factory=MetricRegistry)
    wasted_by_cause: Dict[str, float] = field(default_factory=dict)
    engine: Dict[str, Any] = field(default_factory=dict)
    end_time: float = 0.0


class TelemetryCapture:
    """The traced cells of one ``repro trace`` invocation."""

    def __init__(self, experiment: str, cells: List[CellCapture]):
        self.experiment = experiment
        self.cells = cells

    def to_chrome(self) -> Dict[str, Any]:
        from repro.telemetry.export import to_chrome_trace

        return to_chrome_trace(
            [
                (cell.name, cell.collector.spans, cell.collector.instants)
                for cell in self.cells
            ]
        )

    def span_count(self) -> int:
        return sum(len(cell.collector.spans) for cell in self.cells)


def capture_experiment(
    name: str,
    quick: bool = False,
    seed: Optional[int] = None,
    profile: bool = True,
    heartbeats: bool = False,
) -> TelemetryCapture:
    """Trace a representative cell (or cells) of ``name``."""
    if name == "fig2":
        return _capture_two_job(name, heavy=False, seed=seed, profile=profile,
                                heartbeats=heartbeats)
    if name == "fig3":
        return _capture_two_job(name, heavy=True, seed=seed, profile=profile,
                                heartbeats=heartbeats)
    if name == "scale":
        return _capture_scale(quick=quick, seed=seed, profile=profile,
                              heartbeats=heartbeats)
    if name == "shuffle":
        return _capture_shuffle(quick=quick, seed=seed, profile=profile,
                                heartbeats=heartbeats)
    if name == "memscale":
        return _capture_memscale(quick=quick, seed=seed, profile=profile,
                                 heartbeats=heartbeats)
    raise ConfigurationError(
        f"cannot trace {name!r}; traceable experiments: "
        + ", ".join(SUPPORTED)
    )


# -- the paper's two-job microbenchmark -----------------------------------


def _capture_two_job(
    name: str, heavy: bool, seed: Optional[int], profile: bool,
    heartbeats: bool = False,
) -> TelemetryCapture:
    from repro.experiments.harness import TwoJobHarness

    base_seed = 1000 if seed is None else seed
    cells: List[CellCapture] = []
    for primitive in ("wait", "kill", "suspend"):
        collector = SpanCollector(include_heartbeats=heartbeats)
        harness = TwoJobHarness(
            primitive=primitive,
            progress_at_launch=0.5,
            heavy=heavy,
            runs=1,
            base_seed=base_seed,
            keep_traces=True,
            collector=collector,
            profile=profile,
        )
        result = harness.run_once(seed=base_seed)
        cluster = result.trace_cluster
        collector.close_open(cluster.sim.now)
        registry = MetricRegistry()
        registry.observe(f"{primitive}/sojourn_th", result.sojourn_th)
        registry.observe(f"{primitive}/makespan", result.makespan)
        registry.observe(
            f"{primitive}/tl_wasted_seconds", result.tl_wasted_seconds
        )
        registry.counter(f"{primitive}/suspends").inc(result.suspend_count)
        registry.counter(f"{primitive}/tl_paged_bytes").inc(
            result.tl_paged_bytes
        )
        cells.append(
            CellCapture(
                name=f"{name}/{primitive}",
                collector=collector,
                registry=registry,
                wasted_by_cause=cluster.jobtracker.wasted.by_cause(),
                engine=engine_stats(cluster.sim),
                end_time=cluster.sim.now,
            )
        )
    return TelemetryCapture(name, cells)


# -- replay studies: one canonical cell each ------------------------------


def _capture_scale(
    quick: bool, seed: Optional[int], profile: bool,
    heartbeats: bool = False,
) -> TelemetryCapture:
    from repro.experiments.runner import derive_seed
    from repro.experiments.scale_study import _run_once

    trackers = 10 if quick else 25
    cell_seed = seed if seed is not None else derive_seed(
        9000, "scale", "baseline", trackers, "suspend", 0
    )
    collector = SpanCollector(include_heartbeats=heartbeats)
    out = _run_once(
        scenario="baseline",
        primitive_name="suspend",
        trackers=trackers,
        num_jobs=trackers,
        seed=cell_seed,
        collector=collector,
        profile=profile,
    )
    return _study_capture(
        "scale", f"scale/baseline/{trackers}/suspend", collector, out
    )


def _capture_shuffle(
    quick: bool, seed: Optional[int], profile: bool,
    heartbeats: bool = False,
) -> TelemetryCapture:
    from repro.experiments.runner import derive_seed
    from repro.experiments.shuffle_study import _run_once

    trackers = 10 if quick else 25
    cell_seed = seed if seed is not None else derive_seed(
        11000, "shuffle", trackers, "kill", 2.5, 0.0, 0
    )
    collector = SpanCollector(include_heartbeats=heartbeats)
    out = _run_once(
        primitive_name="kill",
        trackers=trackers,
        num_jobs=trackers,
        oversubscription=2.5,
        seed=cell_seed,
        collector=collector,
        profile=profile,
    )
    return _study_capture(
        "shuffle", f"shuffle/kill/{trackers}/2.5x", collector, out
    )


def _capture_memscale(
    quick: bool, seed: Optional[int], profile: bool,
    heartbeats: bool = False,
) -> TelemetryCapture:
    from repro.experiments.memscale_study import (
        RESERVE_BYTES,
        SWAP_BYTES,
        _run_once,
    )
    from repro.experiments.runner import derive_seed

    trackers = 10 if quick else 25
    cell_seed = seed if seed is not None else derive_seed(
        12000, "memscale", trackers, "suspend-gated",
        SWAP_BYTES, RESERVE_BYTES, 0,
    )
    collector = SpanCollector(include_heartbeats=heartbeats)
    out = _run_once(
        mode="suspend-gated",
        trackers=trackers,
        num_jobs=trackers,
        seed=cell_seed,
        collector=collector,
        profile=profile,
    )
    return _study_capture(
        "memscale", f"memscale/suspend-gated/{trackers}", collector, out
    )


def _study_capture(
    experiment: str, cell_name: str, collector: SpanCollector, out: Dict
) -> TelemetryCapture:
    collector.close_open(float(out["makespan"]))
    cell = CellCapture(
        name=cell_name,
        collector=collector,
        registry=MetricRegistry.from_dict(out.get("sketch", {})),
        engine=out.get("engine", {}),
        end_time=float(out["makespan"]),
    )
    return TelemetryCapture(experiment, [cell])
