"""Engine self-profiling: read out what the simulator spent itself on.

Builds on the optional per-label attribution in
:class:`~repro.sim.engine.Simulation` (``profile=True``): fired-event
counts and callback wall seconds per event label, plus the engine's
always-on churn counters (schedule/reschedule/compaction totals, heap
residue).  Two consumers:

* ``repro profile --engine`` renders the tables below;
* ``tools/bench_guard.py`` records the *collapsed* label counts (the
  deterministic part) in the BENCH artifact and hard-fails on drift.

Labels carry per-entity suffixes (``tt.heartbeat:node03``);
:func:`collapse_labels` folds those onto their family
(``tt.heartbeat``) so profiles of different cluster sizes line up and
the bench artifact stays small and stable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.engine import Simulation

UNLABELLED = "(unlabelled)"


def label_family(label: str) -> str:
    """The per-entity label's family: the part before the first ``:``
    (``tt.heartbeat:node03`` -> ``tt.heartbeat``), additionally
    stripping a leading ``nodeNN.`` host component
    (``node03.cpu.crossing`` -> ``cpu.crossing``); empty labels group
    under ``(unlabelled)``."""
    if not label:
        return UNLABELLED
    family = label.split(":", 1)[0]
    head, sep, rest = family.partition(".")
    if sep and rest and head.startswith("node") and head[4:].isdigit():
        return rest
    return family


def collapse_labels(counts: Dict[str, int]) -> Dict[str, int]:
    """Fold per-entity label counts onto their families."""
    collapsed: Dict[str, int] = {}
    for label, count in counts.items():
        family = label_family(label)
        collapsed[family] = collapsed.get(family, 0) + count
    return collapsed


def engine_stats(sim: Simulation) -> dict:
    """Snapshot an engine's self-profile as a plain dict.

    The churn counters are always present; ``label_counts`` /
    ``labels`` / ``label_wall`` appear only when the simulation was
    constructed with ``profile=True``.  ``labels`` (collapsed counts)
    is the deterministic slice bench_guard pins.
    """
    stats = {
        "events_fired": sim.events_fired,
        "events_scheduled": sim.events_scheduled,
        "reschedules": sim.reschedules,
        "reschedule_reuses": sim.reschedule_reuses,
        "compactions": sim.compactions,
        "heap_size": sim.heap_size,
        "pending_events": sim.pending_events,
        "profile_enabled": sim.profile_enabled,
    }
    if sim.profile_enabled:
        stats["label_counts"] = sim.label_counts
        stats["labels"] = collapse_labels(sim.label_counts)
        stats["label_wall"] = {
            label: round(wall, 6) for label, wall in sim.label_wall.items()
        }
    return stats


def render_engine_profile(sim: Simulation, top: int = 20) -> str:
    """Human-readable profile of a live simulation."""
    return render_engine_stats(engine_stats(sim), top=top)


def render_engine_stats(stats: Dict, top: int = 20) -> str:
    """Human-readable profile from an :func:`engine_stats` snapshot:
    churn summary plus the top label families by fired events, with
    their callback wall time alongside."""
    lines: List[str] = [
        "engine profile",
        "==============",
        f"  events fired     : {stats['events_fired']}",
        f"  events scheduled : {stats['events_scheduled']}",
        f"  reschedules      : {stats['reschedules']} "
        f"(reused {stats['reschedule_reuses']})",
        f"  heap compactions : {stats['compactions']}",
        f"  heap residue     : {stats['heap_size']} entries, "
        f"{stats['pending_events']} pending",
    ]
    if not stats["profile_enabled"]:
        lines.append("  (construct the simulation with profile=True "
                     "for per-label attribution)")
        return "\n".join(lines)

    families = stats["labels"]
    wall_families = collapse_wall(stats["label_wall"])
    lines += ["", f"top {top} label families by fired events",
              "-" * 40]
    ranked = sorted(families.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    for family, count in ranked:
        wall = wall_families.get(family, 0.0)
        lines.append(f"  {family:<32} {count:>10}  {wall * 1e3:>9.2f} ms")
    hidden = len(families) - len(ranked)
    if hidden > 0:
        lines.append(f"  ... and {hidden} more families")
    return "\n".join(lines)


def collapse_wall(wall: Dict[str, float]) -> Dict[str, float]:
    """Label-family wall totals (same folding as :func:`collapse_labels`)."""
    collapsed: Dict[str, float] = {}
    for label, seconds in wall.items():
        family = label_family(label)
        collapsed[family] = collapsed.get(family, 0.0) + seconds
    return collapsed
