"""The discrete-event engine.

:class:`Simulation` owns the virtual clock and the event heap.  A
simulation run is a sequence of callback invocations at non-decreasing
virtual times; callbacks schedule further events.  The engine never
advances the clock past the next pending event, so model code can rely
on ``sim.now`` being exact at every callback.

Typical use::

    sim = Simulation(seed=42)
    sim.schedule(1.5, lambda: print("fires at t=1.5"))
    sim.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.events import EventHandle
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


class Simulation:
    """A deterministic discrete-event simulation loop.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry`.  Two
        simulations constructed with the same seed and driven by the
        same model code produce identical event sequences.
    trace:
        When true, every fired event is appended to :attr:`trace_log`.
        Useful in tests and when rendering Figure 1 style schedules.
    """

    #: heaps smaller than this are never compacted (the rebuild would
    #: cost more than the dead entries ever will)
    COMPACTION_MIN_SIZE = 64

    def __init__(self, seed: int = 0, trace: bool = False):
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.trace_log = TraceLog(enabled=trace)
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0
        #: cancelled handles still sitting in the heap; kept exact so
        #: :attr:`pending_events` is O(1) instead of an O(n) scan
        self._cancelled_in_heap = 0
        self._compactions = 0
        #: bound once: attribute access on self would otherwise build a
        #: fresh bound-method object per scheduled event
        self._on_cancel_hook = self._note_cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant (FIFO order).
        Returns an :class:`EventHandle` that may be cancelled.
        """
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule {delay:.6f}s in the past (now={self.now:.6f})"
            )
        return self.schedule_at(self.now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SchedulingInPastError(
                f"cannot schedule at t={time:.6f} (now={self.now:.6f})"
            )
        handle = EventHandle(time, self._seq, callback, args, label=label)
        handle._on_cancel = self._on_cancel_hook
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def call_soon(
        self, callback: Callable[..., Any], *args: Any, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at the current instant (after pending
        same-time events)."""
        return self.schedule(0.0, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is
        empty (simulation finished).  Cancelled events are discarded
        silently.
        """
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if handle.time < self.now:  # pragma: no cover - defensive
                raise SimulationError(
                    f"event heap corrupted: event at t={handle.time} "
                    f"popped at now={self.now}"
                )
            self.now = handle.time
            handle._mark_fired()
            self._events_fired += 1
            self.trace_log.record(self.now, handle.label)
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` events have fired.

        ``until`` is an absolute virtual time; when given, the clock is
        advanced to exactly ``until`` even if no event fires there, so
        repeated ``run(until=...)`` calls behave like a paced replay.
        """
        if self._running:
            raise SimulationError("Simulation.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap and not self._stopped:
                if until is not None and self._peek_time() > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                if self.step():
                    fired += 1
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _peek_time(self) -> float:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_in_heap -= 1
        if not self._heap:
            return float("inf")
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------

    def _note_cancelled(self, handle: EventHandle) -> None:
        """Called by :meth:`EventHandle.cancel`.  Handles stay in the
        heap when cancelled, so the counter tracks the dead weight; once
        more than half the heap is dead it is rebuilt without the
        cancelled entries (heap order is preserved by re-heapifying on
        the same ``(time, seq)`` keys)."""
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self.COMPACTION_MIN_SIZE
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled handle from the heap in one pass."""
        self._heap = [h for h in self._heap if not h.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    @property
    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included (introspection
        for the compaction tests and benchmarks)."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """How many times the heap was rebuilt to shed cancellations."""
        return self._compactions

    @property
    def events_fired(self) -> int:
        """Total number of events fired since construction."""
        return self._events_fired

    @property
    def idle(self) -> bool:
        """True when no events remain."""
        return self.pending_events == 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Simulation(now={self.now:.3f}, pending={self.pending_events}, "
            f"fired={self._events_fired})"
        )
