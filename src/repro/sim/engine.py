"""The discrete-event engine.

:class:`Simulation` owns the virtual clock and the event heap.  A
simulation run is a sequence of callback invocations at non-decreasing
virtual times; callbacks schedule further events.  The engine never
advances the clock past the next pending event, so model code can rely
on ``sim.now`` being exact at every callback.

The heap stores ``(time, seq, handle)`` tuples, so ordering is decided
by C-level tuple comparison rather than Python ``__lt__`` calls, and a
handle's key can move without touching the entries already heaped:
:meth:`Simulation.reschedule` defers a pending event to a later time by
rewriting the handle's desired key and recycling the old heap entry
when it surfaces -- the fast path the virtual-time resource model leans
on, where every rate change moves one armed event.

Typical use::

    sim = Simulation(seed=42)
    sim.schedule(1.5, lambda: print("fires at t=1.5"))
    sim.run()
"""

from __future__ import annotations

import heapq
import time as _wallclock
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.events import EventHandle
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


class Simulation:
    """A deterministic discrete-event simulation loop.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RngRegistry`.  Two
        simulations constructed with the same seed and driven by the
        same model code produce identical event sequences.
    trace:
        When true, every fired event is appended to :attr:`trace_log`.
        Useful in tests and when rendering Figure 1 style schedules.
    profile:
        When true, :meth:`step` attributes every fired event to its
        label: :attr:`label_counts` (deterministic -- same seed, same
        counts) and :attr:`label_wall` (wall seconds spent inside the
        callbacks, machine-dependent).  Observation only: the event
        sequence, RNG draws and trace records are identical with
        profiling on or off.
    """

    #: heaps smaller than this are never compacted (the rebuild would
    #: cost more than the dead entries ever will)
    COMPACTION_MIN_SIZE = 64

    def __init__(self, seed: int = 0, trace: bool = False,
                 profile: bool = False):
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.trace_log = TraceLog(enabled=trace)
        #: (time, seq, handle) entries; a pending handle is represented
        #: by exactly one entry whose key equals ``handle._entry``
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0
        #: heap entries that will be discarded on pop: entries of
        #: cancelled handles plus entries orphaned when a reschedule
        #: moved a handle earlier; kept exact so :attr:`pending_events`
        #: is O(1) instead of an O(n) scan
        self._dead_in_heap = 0
        self._compactions = 0
        self._scheduled = 0
        self._reschedules = 0
        self._reschedule_reuses = 0
        self._profile = profile
        self._label_counts: Dict[str, int] = {}
        self._label_wall: Dict[str, float] = {}
        #: monotone batch counter: consecutive fired events sharing the
        #: same instant *and* the same non-None ``batch_key`` share one
        #: batch id; any other event opens a fresh batch.  Pure
        #: observation -- event order, trace and RNG are untouched.
        self._batch_seq = 0
        self._last_batch: Optional[Tuple[float, Any]] = None
        #: bound once: attribute access on self would otherwise build a
        #: fresh bound-method object per scheduled event
        self._on_cancel_hook = self._note_cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        batch_key: Any = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant (FIFO order).
        Returns an :class:`EventHandle` that may be cancelled.
        """
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule {delay:.6f}s in the past (now={self.now:.6f})"
            )
        return self.schedule_at(self.now + delay, callback, *args, label=label,
                                batch_key=batch_key)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
        batch_key: Any = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``.

        ``batch_key`` opts the event into same-instant coalescing: when
        it fires back-to-back with other events carrying the same key at
        the same virtual time, they all observe the same
        :attr:`batch_id`.  Keys never change *when* or in what order
        events fire -- they only let callbacks recognise siblings.
        """
        if time < self.now:
            raise SchedulingInPastError(
                f"cannot schedule at t={time:.6f} (now={self.now:.6f})"
            )
        handle = EventHandle(time, self._seq, callback, args, label=label,
                             batch_key=batch_key)
        handle._on_cancel = self._on_cancel_hook
        self._seq += 1
        self._scheduled += 1
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def call_soon(
        self, callback: Callable[..., Any], *args: Any, label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at the current instant (after pending
        same-time events)."""
        return self.schedule(0.0, callback, *args, label=label)

    def reschedule(self, handle: EventHandle, time: float) -> EventHandle:
        """Move a pending event to absolute virtual time ``time``.

        The handle keeps its callback and args; only the firing time
        changes.  A reschedule to a *different* time re-sequences the
        event behind its new same-instant peers, as if freshly
        scheduled now; a same-time reschedule is a no-op that keeps
        the event's original FIFO position.  Three cost tiers:

        * unchanged time: no heap traffic at all (and no re-sequencing);
        * later time: the existing heap entry is left in place and
          recycled when it surfaces (one lazy push, no cancel);
        * earlier time: one push; the old entry is dropped lazily.

        Raises :class:`SimulationError` if the handle already fired or
        was cancelled -- callers own their handle lifecycle.
        """
        if time < self.now:
            raise SchedulingInPastError(
                f"cannot reschedule to t={time:.6f} (now={self.now:.6f})"
            )
        if not handle.pending:
            raise SimulationError(
                f"cannot reschedule {handle!r}: event is not pending"
            )
        self._reschedules += 1
        if time == handle.time:
            self._reschedule_reuses += 1
            return handle
        entry = handle._entry
        handle.seq = self._seq
        self._seq += 1
        handle.time = time
        if entry is not None and time >= entry[0]:
            # Deferred: the entry already in the heap pops no later
            # than the new time; recycle it when it surfaces.
            self._reschedule_reuses += 1
        else:
            # Moved earlier than the resident entry: a fresh entry must
            # carry the handle.  Re-point ``_entry`` *before* counting
            # the old entry dead -- a compaction triggered by the
            # counter bump classifies entries by comparing against
            # ``_entry``, and must not mistake the orphan for the
            # representative.
            handle._entry = (time, handle.seq)
            heapq.heappush(self._heap, (time, handle.seq, handle))
            if entry is not None:
                self._dead_in_heap += 1
                self._maybe_compact()
        return handle

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the heap is
        empty (simulation finished).  Dead entries (cancelled events,
        orphans of earlier reschedules) are discarded silently; entries
        of deferred reschedules are pushed back at their current key.
        """
        heap = self._heap
        while heap:
            time, seq, handle = heapq.heappop(heap)
            if not self._entry_fireable(time, seq, handle):
                self._discard_or_recycle(time, seq, handle)
                continue
            if time < self.now:  # pragma: no cover - defensive
                raise SimulationError(
                    f"event heap corrupted: event at t={time} "
                    f"popped at now={self.now}"
                )
            self.now = time
            # Batch accounting: a fired event extends the current batch
            # only when it shares the previous event's instant and
            # non-None key; everything else opens a new batch.  The
            # check runs before the callback so the callback reads its
            # own batch id from :attr:`batch_id`.
            key = handle.batch_key
            if key is None:
                self._batch_seq += 1
                self._last_batch = None
            elif self._last_batch != (time, key):
                self._batch_seq += 1
                self._last_batch = (time, key)
            handle._mark_fired()
            self._events_fired += 1
            self.trace_log.record(self.now, handle.label)
            if self._profile:
                label = handle.label
                self._label_counts[label] = self._label_counts.get(label, 0) + 1
                start = _wallclock.perf_counter()
                handle.callback(*handle.args)
                self._label_wall[label] = (
                    self._label_wall.get(label, 0.0)
                    + (_wallclock.perf_counter() - start)
                )
            else:
                handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` events have fired.

        ``until`` is an absolute virtual time; when given, the clock is
        advanced to exactly ``until`` even if no event fires there, so
        repeated ``run(until=...)`` calls behave like a paced replay.
        """
        if self._running:
            raise SimulationError("Simulation.run() is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap and not self._stopped:
                if until is not None and self._peek_time() > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                if self.step():
                    fired += 1
            # Advance the clock to ``until`` only when the heap truly
            # holds nothing before it -- if ``max_events`` (or stop())
            # halted the loop with events still pending before
            # ``until``, jumping the clock would strand those events in
            # the past and the next step() would see a corrupted heap.
            if (
                until is not None
                and not self._stopped
                and self.now < until
                and self._peek_time() > until
            ):
                self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot_at(
        self,
        time: float,
        path: str,
        root: Any = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> EventHandle:
        """Schedule a checkpoint of ``root`` at absolute virtual time.

        ``root`` defaults to this simulation; pass the owning
        :class:`~repro.hadoop.cluster.HadoopCluster` to capture the
        whole cluster.  The write happens inside an ordinary event, so
        repeated ``run(until=...)`` paced replays hit it exactly; the
        snapshot event's own trace record lands *before* the write and
        is therefore part of the checkpoint -- a restored run's
        TraceLog digest stays comparable with the original's.
        """
        from repro.checkpoint.core import SnapshotEvent

        return self.schedule_at(
            time,
            SnapshotEvent(self if root is None else root, path, meta),
            label="checkpoint.snapshot",
        )

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle with a live-only heap.

        Dead entries (cancelled handles, orphans of earlier-move
        reschedules) are filtered out without mutating the running
        simulation, and deferred representatives are emitted at their
        *current* desired key -- exactly what :meth:`_compact` does,
        but on a copy.  The restored engine is never mid-:meth:`run`.
        """
        live = []
        for time, seq, handle in self._heap:
            entry = handle._entry
            if entry is None or entry[0] != time or entry[1] != seq:
                continue
            if handle.cancelled:
                continue
            live.append((handle.time, handle.seq, handle))
        heapq.heapify(live)
        state = dict(self.__dict__)
        state["_heap"] = live
        state["_dead_in_heap"] = 0
        state["_running"] = False
        state["_stopped"] = False
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        # Re-point every representative at its (possibly recycled) heap
        # key: __getstate__ emits one entry per live handle but cannot
        # touch the handles of the simulation it copied from.
        for time, seq, handle in self._heap:
            handle._entry = (time, seq)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _peek_time(self) -> float:
        heap = self._heap
        while heap:
            time, seq, handle = heap[0]
            if self._entry_fireable(time, seq, handle):
                return time
            heapq.heappop(heap)
            self._discard_or_recycle(time, seq, handle)
        return float("inf")

    # ------------------------------------------------------------------
    # Heap-entry protocol
    #
    # A pending handle is represented by exactly one entry, recorded in
    # ``handle._entry``; everything else in the heap is an orphan of an
    # earlier-move reschedule or the residue of a cancel/fire.  The two
    # helpers below are the single definition of that protocol; step(),
    # _peek_time() and _compact() all classify through it.
    # ------------------------------------------------------------------

    @staticmethod
    def _entry_fireable(time: float, seq: int, handle: EventHandle) -> bool:
        """True when a heap entry is live at its desired key: it is the
        handle's representative, not cancelled, and not deferred."""
        entry = handle._entry
        return (
            entry is not None
            and entry[0] == time
            and entry[1] == seq
            and time == handle.time
            and seq == handle.seq
            and not handle.cancelled
        )

    def _discard_or_recycle(self, time: float, seq: int, handle: EventHandle) -> None:
        """Settle a popped non-fireable entry: drop dead weight (with
        its counter) or re-push a deferred representative at the
        handle's current desired key."""
        entry = handle._entry
        if entry is None or entry[0] != time or entry[1] != seq:
            # orphan of an earlier move, or residue of a fired handle
            self._dead_in_heap -= 1
        elif handle.cancelled:
            self._dead_in_heap -= 1
            handle._entry = None
        else:
            # deferred reschedule: recycle the entry at the new key
            handle._entry = (handle.time, handle.seq)
            heapq.heappush(self._heap, (handle.time, handle.seq, handle))

    # ------------------------------------------------------------------
    # Dead-entry bookkeeping
    # ------------------------------------------------------------------

    def _note_cancelled(self, handle: EventHandle) -> None:
        """Called by :meth:`EventHandle.cancel`.  Entries stay in the
        heap when their handle is cancelled, so the counter tracks the
        dead weight; once more than half the heap is dead it is rebuilt
        without them (heap order is preserved by re-heapifying on the
        same ``(time, seq)`` keys)."""
        self._dead_in_heap += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            len(self._heap) >= self.COMPACTION_MIN_SIZE
            and self._dead_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every dead entry from the heap in one pass.

        Entries of deferred reschedules are rebuilt at their current
        desired key, so the compacted heap holds exactly one live entry
        per pending handle."""
        live = []
        for time, seq, handle in self._heap:
            entry = handle._entry
            if entry is None or entry[0] != time or entry[1] != seq:
                continue
            if handle.cancelled:
                handle._entry = None
                continue
            handle._entry = (handle.time, handle.seq)
            live.append((handle.time, handle.seq, handle))
        self._heap = live
        heapq.heapify(self._heap)
        self._dead_in_heap = 0
        self._compactions += 1

    @property
    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still in the heap."""
        return len(self._heap) - self._dead_in_heap

    @property
    def heap_size(self) -> int:
        """Raw heap length, dead entries included (introspection for
        the compaction tests and benchmarks)."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """How many times the heap was rebuilt to shed dead entries."""
        return self._compactions

    @property
    def batch_id(self) -> int:
        """Id of the batch the most recently fired event belongs to.

        Monotone; bumps on every fired event except when the event
        extends a run of same-instant, same-``batch_key`` siblings.
        Model code caches per-batch work keyed on this id.
        """
        return self._batch_seq

    @property
    def events_fired(self) -> int:
        """Total number of events fired since construction."""
        return self._events_fired

    @property
    def events_scheduled(self) -> int:
        """Total :meth:`schedule_at` calls since construction (the
        event-churn counter the resource-model tests assert on)."""
        return self._scheduled

    @property
    def reschedules(self) -> int:
        """Total :meth:`reschedule` calls since construction."""
        return self._reschedules

    @property
    def reschedule_reuses(self) -> int:
        """Reschedules that reused the resident heap entry (same-time
        no-ops plus deferred moves) instead of pushing a fresh one."""
        return self._reschedule_reuses

    @property
    def profile_enabled(self) -> bool:
        """True when per-label event attribution is being collected."""
        return self._profile

    @property
    def label_counts(self) -> Dict[str, int]:
        """Fired events per label (profiling only; deterministic)."""
        return dict(self._label_counts)

    @property
    def label_wall(self) -> Dict[str, float]:
        """Wall seconds inside callbacks per label (profiling only;
        machine-dependent -- never compare across hosts)."""
        return dict(self._label_wall)

    @property
    def idle(self) -> bool:
        """True when no events remain."""
        return self.pending_events == 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Simulation(now={self.now:.3f}, pending={self.pending_events}, "
            f"fired={self._events_fired})"
        )
