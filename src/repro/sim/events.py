"""Scheduled-event bookkeeping for the simulation kernel.

An :class:`EventHandle` is returned by
:meth:`repro.sim.engine.Simulation.schedule` and lets the caller cancel
the event, move it with :meth:`~repro.sim.engine.Simulation.reschedule`,
or ask whether it already fired.  The engine's heap orders entries by
``(time, seq)``: time first, then FIFO among events scheduled for the
same instant.

A handle's ``(time, seq)`` is its *desired* firing key; the engine
tracks separately which heap entry currently represents the handle
(``_entry``), so a reschedule to a later time can leave the existing
entry in place and recycle it when it surfaces instead of paying a
cancel-plus-push per move.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Tuple


class EventState(enum.Enum):
    """Lifecycle of a scheduled event."""

    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class EventHandle:
    """A cancellable reference to one scheduled callback.

    Instances are created by the engine; user code only cancels them,
    reschedules them through the owning simulation, or inspects state.
    """

    __slots__ = ("time", "seq", "callback", "args", "label", "state",
                 "batch_key", "_on_cancel", "_entry")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: str = "",
        batch_key: Any = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label or getattr(callback, "__name__", "event")
        #: events fired back-to-back at the same instant with the same
        #: (non-None) key share one engine batch id; None never coalesces
        self.batch_key = batch_key
        self.state = EventState.PENDING
        #: engine bookkeeping hook; lets the owning Simulation keep its
        #: dead-entry counter exact without scanning the heap
        self._on_cancel: Any = None
        #: the (time, seq) key of the heap entry currently representing
        #: this handle; diverges from (self.time, self.seq) after a
        #: deferred reschedule, None once fired/extracted
        self._entry: Optional[Tuple[float, int]] = (time, seq)

    # State queries ------------------------------------------------------

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired/cancelled."""
        return self.state is EventState.PENDING

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` succeeded."""
        return self.state is EventState.CANCELLED

    @property
    def fired(self) -> bool:
        """True once the callback ran."""
        return self.state is EventState.FIRED

    def cancel(self) -> bool:
        """Cancel the event if it has not fired yet.

        Returns ``True`` if the event was pending and is now cancelled,
        ``False`` if it had already fired or was already cancelled.
        Cancellation is lazy: the handle's entry stays in the engine's
        heap and is discarded when popped.
        """
        if self.state is EventState.PENDING:
            self.state = EventState.CANCELLED
            if self._on_cancel is not None:
                self._on_cancel(self)
            return True
        return False

    def _mark_fired(self) -> None:
        self.state = EventState.FIRED
        self._entry = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EventHandle(t={self.time:.6f}, seq={self.seq}, "
            f"label={self.label!r}, state={self.state.value})"
        )
