"""Scheduled-event bookkeeping for the simulation kernel.

An :class:`EventHandle` is returned by
:meth:`repro.sim.engine.Simulation.schedule` and lets the caller cancel
the event or ask whether it already fired.  Handles sort by
``(time, seq)`` so the engine's heap pops events in deterministic
order: time first, then FIFO among events scheduled for the same
instant.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Tuple


class EventState(enum.Enum):
    """Lifecycle of a scheduled event."""

    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class EventHandle:
    """A cancellable reference to one scheduled callback.

    Instances are created by the engine; user code only cancels them or
    inspects their state.
    """

    __slots__ = ("time", "seq", "callback", "args", "label", "state", "_on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        label: str = "",
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label or getattr(callback, "__name__", "event")
        self.state = EventState.PENDING
        #: engine bookkeeping hook; lets the owning Simulation keep its
        #: cancelled-event counter exact without scanning the heap
        self._on_cancel: Any = None

    # Heap ordering ------------------------------------------------------

    def sort_key(self) -> Tuple[float, int]:
        """Key used by the engine's heap: time, then scheduling order."""
        return (self.time, self.seq)

    def __lt__(self, other: "EventHandle") -> bool:
        return self.sort_key() < other.sort_key()

    # State queries ------------------------------------------------------

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired/cancelled."""
        return self.state is EventState.PENDING

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` succeeded."""
        return self.state is EventState.CANCELLED

    @property
    def fired(self) -> bool:
        """True once the callback ran."""
        return self.state is EventState.FIRED

    def cancel(self) -> bool:
        """Cancel the event if it has not fired yet.

        Returns ``True`` if the event was pending and is now cancelled,
        ``False`` if it had already fired or was already cancelled.
        Cancellation is lazy: the handle stays in the engine's heap and
        is discarded when popped.
        """
        if self.state is EventState.PENDING:
            self.state = EventState.CANCELLED
            if self._on_cancel is not None:
                self._on_cancel(self)
            return True
        return False

    def _mark_fired(self) -> None:
        self.state = EventState.FIRED

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EventHandle(t={self.time:.6f}, seq={self.seq}, "
            f"label={self.label!r}, state={self.state.value})"
        )
