"""Simulation trace log.

A :class:`TraceLog` collects ``(time, label, fields)`` records.  The
engine records every fired event; model components append richer
records (task launched, signal delivered, pages swapped, ...).  The
experiment harness renders the Figure 1 style execution schedules from
these records, and tests assert on them.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    label: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def matches(self, label_prefix: str, **field_filters: Any) -> bool:
        """True when the label starts with ``label_prefix`` and every
        given field equals the filter value."""
        if not self.label.startswith(label_prefix):
            return False
        for key, expected in field_filters.items():
            if self.fields.get(key) != expected:
                return False
        return True

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:10.3f}] {self.label}" + (f" {extra}" if extra else "")


class TraceLog:
    """Append-only list of :class:`TraceRecord` with query helpers.

    The log can be disabled (the default for large runs) in which case
    :meth:`record` is a no-op; subscribers still fire, so live metric
    collectors work even with the log off.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        # A bounded deque evicts the oldest record in O(1) per append;
        # the list it replaced paid an O(capacity) front-deletion for
        # every record once full.
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    @property
    def capacity(self) -> Optional[int]:
        """Maximum records retained (``None`` = unbounded)."""
        return self._records.maxlen

    @capacity.setter
    def capacity(self, capacity: Optional[int]) -> None:
        """Rebound the log.  The deque is rebuilt with the new
        ``maxlen``, keeping the newest records that still fit."""
        if capacity == self._records.maxlen:
            return
        self._records = deque(self._records, maxlen=capacity)

    def record(self, time: float, label: str, **fields: Any) -> None:
        """Append a record (if enabled) and notify subscribers (always)."""
        rec = TraceRecord(time, label, fields)
        if self.enabled:
            self._records.append(rec)
        for subscriber in self._subscribers:
            subscriber(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every record, even when the
        stored log is disabled."""
        self._subscribers.append(callback)

    # Queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def find(self, label_prefix: str, **field_filters: Any) -> List[TraceRecord]:
        """All records matching the prefix and field filters, in order."""
        return [
            rec for rec in self._records if rec.matches(label_prefix, **field_filters)
        ]

    def first(self, label_prefix: str, **field_filters: Any) -> Optional[TraceRecord]:
        """First matching record or None."""
        for rec in self._records:
            if rec.matches(label_prefix, **field_filters):
                return rec
        return None

    def last(self, label_prefix: str, **field_filters: Any) -> Optional[TraceRecord]:
        """Last matching record or None."""
        for rec in reversed(self._records):
            if rec.matches(label_prefix, **field_filters):
                return rec
        return None

    def digest(self) -> str:
        """SHA-256 over every stored record (time, label, fields).

        ``repr(float)`` round-trips exactly in Python 3, so two logs
        digest equal iff their records are bit-identical -- the
        determinism tests compare whole runs through this one value.
        """
        h = hashlib.sha256()
        for rec in self._records:
            # Separator bytes between every component: without them
            # distinct records could concatenate to the same byte
            # stream (e.g. time '1.0' + label '5x' vs '1.05' + 'x').
            h.update(repr(rec.time).encode("utf-8"))
            h.update(b"\x1f")
            h.update(rec.label.encode("utf-8"))
            for key in sorted(rec.fields):
                h.update(b"\x1f")
                h.update(key.encode("utf-8"))
                h.update(b"\x1e")
                h.update(repr(rec.fields[key]).encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable dump of the last ``limit`` records."""
        if limit is None or limit >= len(self._records):
            records: Iterator[TraceRecord] = iter(self._records)
        else:
            records = islice(self._records, len(self._records) - limit, None)
        return "\n".join(str(rec) for rec in records)
