"""Named, seeded random-number streams.

Simulation components must not share one global RNG: adding a random
draw in one module would perturb every other module's sequence and
break run-to-run comparisons.  Instead each component asks the
:class:`RngRegistry` for a stream by name; the stream's seed is derived
deterministically from the master seed and the name, so streams are
independent and stable under code evolution.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


class RngStream:
    """A named wrapper around :class:`random.Random`.

    Exposes the handful of draw shapes the simulator needs; anything
    exotic can use :attr:`raw` directly.
    """

    def __init__(self, name: str, seed: int):
        self.name = name
        self.seed = seed
        self.raw = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self.raw.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (mean <= 0 returns 0)."""
        if mean <= 0:
            return 0.0
        return self.raw.expovariate(1.0 / mean)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian variate."""
        return self.raw.gauss(mean, stddev)

    def jitter(self, value: float, fraction: float) -> float:
        """``value`` perturbed by a uniform +/- ``fraction`` of itself.

        The paper averages 20 runs whose min/max stay within 5% of the
        mean; a small multiplicative jitter on service times reproduces
        that spread.
        """
        if fraction <= 0:
            return value
        return value * self.raw.uniform(1.0 - fraction, 1.0 + fraction)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self.raw.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self.raw.choice(seq)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self.raw.shuffle(items)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self.raw.random()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngStream(name={self.name!r}, seed={self.seed})"


class RngRegistry:
    """Factory and cache of named :class:`RngStream` objects.

    Stream seeds are ``sha256(master_seed || name)`` truncated to 64
    bits, so the mapping is stable across processes and Python
    versions (unlike ``hash()``).
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, RngStream] = {}

    def stream(self, name: str) -> RngStream:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        seed = int.from_bytes(digest[:8], "big")
        stream = RngStream(name, seed)
        self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
