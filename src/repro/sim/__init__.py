"""Discrete-event simulation kernel.

The kernel is deliberately small: a :class:`~repro.sim.engine.Simulation`
owns a virtual clock and a priority queue of scheduled callbacks.
Everything else in the simulator (the OS model, HDFS, the Hadoop
engine) is built out of entities that schedule callbacks on this loop.

Determinism guarantees:

* events fire in non-decreasing time order;
* events scheduled for the same instant fire in FIFO order of
  scheduling;
* all randomness flows through named, seeded
  :class:`~repro.sim.rng.RngStream` objects so that two runs with the
  same seed are bit-identical.
"""

from repro.sim.engine import Simulation
from repro.sim.events import EventHandle
from repro.sim.rng import RngRegistry, RngStream
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Simulation",
    "EventHandle",
    "RngRegistry",
    "RngStream",
    "TraceLog",
    "TraceRecord",
]
