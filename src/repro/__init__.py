"""repro: OS-assisted task preemption for Hadoop, reproduced.

A production-quality reproduction of Pastorelli, Dell'Amico &
Michiardi, *OS-Assisted Task Preemption for Hadoop* (ICDCS 2014):

* a deterministic discrete-event **Hadoop 1 cluster simulator**
  (JobTracker/TaskTracker heartbeats, HDFS, child-JVM processes) on
  top of an **OS model** with POSIX signals, LRU paging and swap;
* the paper's **suspend/resume preemption primitive** plus the
  ``wait``, ``kill`` and Natjam-style checkpointing baselines;
* **schedulers** (the paper's dummy trigger scheduler, FIFO, FAIR,
  Capacity, HFSP, deadline) with preemption hooks;
* a **real-process prototype** (:mod:`repro.posixrt`) that drives
  genuine worker processes with SIGTSTP/SIGCONT/SIGKILL;
* an **experiment harness** regenerating every figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro.experiments import TwoJobHarness

    harness = TwoJobHarness(primitive="suspend", progress_at_launch=0.5)
    result = harness.run()
    print(result.sojourn_th, result.makespan)
"""

from repro.errors import ReproError
from repro.hadoop.cluster import HadoopCluster
from repro.hadoop.config import HadoopConfig
from repro.osmodel.config import NodeConfig
from repro.preemption import (
    KillPrimitive,
    NatjamPrimitive,
    PreemptionAdvisor,
    SuspendResumePrimitive,
    WaitPrimitive,
    make_primitive,
)
from repro.schedulers import (
    CapacityScheduler,
    DeadlineScheduler,
    DummyScheduler,
    FairScheduler,
    FifoScheduler,
    HfspScheduler,
)
from repro.sim.engine import Simulation
from repro.units import GB, KB, MB, TB, format_duration, format_size, parse_size
from repro.workloads import (
    JobSpec,
    SwimGenerator,
    TaskSpec,
    heavy_task,
    light_task,
    make_job,
    two_job_microbenchmark,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "Simulation",
    "HadoopCluster",
    "HadoopConfig",
    "NodeConfig",
    "WaitPrimitive",
    "KillPrimitive",
    "SuspendResumePrimitive",
    "NatjamPrimitive",
    "PreemptionAdvisor",
    "make_primitive",
    "FifoScheduler",
    "DummyScheduler",
    "FairScheduler",
    "CapacityScheduler",
    "HfspScheduler",
    "DeadlineScheduler",
    "JobSpec",
    "TaskSpec",
    "SwimGenerator",
    "light_task",
    "heavy_task",
    "make_job",
    "two_job_microbenchmark",
    "KB",
    "MB",
    "GB",
    "TB",
    "parse_size",
    "format_size",
    "format_duration",
]
