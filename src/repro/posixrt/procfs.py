"""Reading process state and memory from ``/proc``.

The controller uses this to confirm that SIGTSTP really stopped the
worker (state ``T``) and to observe resident/swapped sizes -- the
real-world counterparts of the simulator's
:class:`~repro.osmodel.memory.MemoryImage` accounting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.units import KB


@dataclass(frozen=True)
class ProcStatus:
    """A snapshot of ``/proc/<pid>/status``."""

    pid: int
    state: str  # R, S, D, T, t, Z, X ...
    vm_rss_bytes: int
    vm_swap_bytes: int

    @property
    def stopped(self) -> bool:
        """True when the process is stopped by job control (T)."""
        return self.state.startswith("T")

    @property
    def alive(self) -> bool:
        """True unless the process is a zombie or gone."""
        return not self.state.startswith(("Z", "X"))


def read_proc_status(pid: int) -> Optional[ProcStatus]:
    """Parse ``/proc/<pid>/status``; None when the process is gone."""
    path = f"/proc/{pid}/status"
    try:
        with open(path, "r", encoding="ascii", errors="replace") as handle:
            text = handle.read()
    except (FileNotFoundError, ProcessLookupError, PermissionError):
        return None
    state = "?"
    rss = 0
    swap = 0
    for line in text.splitlines():
        if line.startswith("State:"):
            state = line.split(":", 1)[1].strip().split()[0]
        elif line.startswith("VmRSS:"):
            rss = _parse_kb(line)
        elif line.startswith("VmSwap:"):
            swap = _parse_kb(line)
    return ProcStatus(pid=pid, state=state, vm_rss_bytes=rss, vm_swap_bytes=swap)


def _parse_kb(line: str) -> int:
    parts = line.split(":", 1)[1].strip().split()
    if not parts:
        return 0
    try:
        return int(parts[0]) * KB
    except ValueError:
        return 0


def read_stat_state(pid: int) -> Optional[str]:
    """The single-letter state field from ``/proc/<pid>/stat``.

    ``/proc/<pid>/stat`` is updated synchronously with the scheduler's
    view, which makes it the authoritative place to observe a job-
    control stop (state ``T``).  The comm field may contain spaces and
    parentheses, so the state is parsed as the first token after the
    *last* ``)``.  Returns None when the process is gone.
    """
    try:
        with open(f"/proc/{pid}/stat", "r", encoding="ascii",
                  errors="replace") as handle:
            text = handle.read()
    except (FileNotFoundError, ProcessLookupError, PermissionError):
        return None
    _, _, rest = text.rpartition(")")
    fields = rest.split()
    return fields[0] if fields else None


def process_exists(pid: int) -> bool:
    """True when the pid names a live process we may signal."""
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - container quirk
        return True
