"""The two-job microbenchmark on real processes.

:class:`MiniExperiment` replays Section IV-A at laptop scale: a
low-priority worker ``tl`` runs; when it reaches r% progress a
high-priority worker ``th`` arrives and the chosen primitive decides
what happens to ``tl``.  Wall-clock sojourn and makespan come out the
other end -- the same metrics as the simulation, produced by genuine
SIGTSTP/SIGCONT/SIGKILL on live processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.errors import ConfigurationError, PosixRuntimeError
from repro.posixrt.controller import WorkerHandle, WorkerSpec
from repro.units import MB


@dataclass
class PrimitiveOutcome:
    """Wall-clock metrics of one primitive's run."""

    primitive: str
    sojourn_th: float
    makespan: float
    tl_was_stopped: bool = False
    tl_restarted: bool = False


class MiniExperiment:
    """Real-process comparison of wait / kill / suspend."""

    def __init__(
        self,
        input_mb: int = 16,
        rate_mb_per_sec: float = 16.0,
        progress_at_launch: float = 0.5,
        memory_mb: int = 0,
        timeout: float = 300.0,
    ):
        if not 0.0 < progress_at_launch < 1.0:
            raise ConfigurationError("progress_at_launch must be in (0, 1)")
        if input_mb <= 0 or rate_mb_per_sec <= 0:
            raise ConfigurationError("input and rate must be positive")
        self.input_bytes = input_mb * MB
        self.rate = rate_mb_per_sec * MB
        self.progress_at_launch = progress_at_launch
        self.memory_bytes = memory_mb * MB
        self.timeout = timeout

    def _spec(self, name: str) -> WorkerSpec:
        return WorkerSpec(
            input_bytes=self.input_bytes,
            chunk_bytes=max(64 * 1024, self.input_bytes // 64),
            memory_bytes=self.memory_bytes,
            rate_bytes_per_sec=self.rate,
            name=name,
        )

    # -- one run --------------------------------------------------------------

    def run_primitive(self, primitive: str) -> PrimitiveOutcome:
        """Run the microbenchmark once with one primitive."""
        if primitive not in ("wait", "kill", "suspend"):
            raise ConfigurationError(f"unknown primitive {primitive!r}")
        t_start = time.monotonic()
        tl = WorkerHandle(self._spec("tl"))
        outcome_stopped = False
        restarted = False
        try:
            if not tl.wait_progress(self.progress_at_launch, timeout=self.timeout):
                raise PosixRuntimeError(
                    f"tl never reached {self.progress_at_launch:.0%}"
                )
            t_submit_th = time.monotonic()

            if primitive == "suspend":
                tl.suspend()
                outcome_stopped = tl.wait_stopped(timeout=10.0)
            elif primitive == "kill":
                tl.kill()
            elif primitive == "wait":
                if not tl.wait_done(timeout=self.timeout):
                    raise PosixRuntimeError("tl did not finish under wait")

            th = WorkerHandle(self._spec("th"))
            try:
                if not th.wait_done(timeout=self.timeout):
                    raise PosixRuntimeError("th did not finish")
                t_th_done = time.monotonic()
            finally:
                th.close()

            if primitive == "suspend":
                tl.resume()
                if not tl.wait_done(timeout=self.timeout):
                    raise PosixRuntimeError("tl did not finish after resume")
            elif primitive == "kill":
                tl.close()
                tl = WorkerHandle(self._spec("tl"))  # restart from scratch
                restarted = True
                if not tl.wait_done(timeout=self.timeout):
                    raise PosixRuntimeError("tl restart did not finish")
            elif primitive == "wait":
                pass  # tl already finished

            t_end = time.monotonic()
            return PrimitiveOutcome(
                primitive=primitive,
                sojourn_th=t_th_done - t_submit_th,
                makespan=t_end - t_start,
                tl_was_stopped=outcome_stopped,
                tl_restarted=restarted,
            )
        finally:
            tl.close()

    def compare(
        self, primitives: Iterable[str] = ("wait", "kill", "suspend")
    ) -> Dict[str, PrimitiveOutcome]:
        """Run every primitive once, in order."""
        return {name: self.run_primitive(name) for name in primitives}
