"""Real-process prototype of the preemption primitive.

Everything else in this library simulates; this package actually does
it.  A :class:`~repro.posixrt.controller.WorkerHandle` spawns a real
worker process (:mod:`repro.posixrt.worker`) that parses synthetic
input and optionally allocates memory, and drives it with genuine
POSIX signals:

* ``SIGTSTP`` to suspend (the worker's handler tidies up and then
  stops itself, exactly the pattern the paper requires so external
  state can be managed; see :mod:`repro.posixrt.worker` for the
  orphaned-process-group portability detail);
* ``SIGCONT`` to resume;
* ``SIGKILL`` to kill.

Process state and memory are observed through ``/proc``
(:mod:`repro.posixrt.procfs`), and
:class:`~repro.posixrt.runner.MiniExperiment` replays the paper's
two-job microbenchmark on real processes at laptop scale.
"""

from repro.posixrt.controller import (
    WorkerHandle,
    WorkerSpec,
    sigtstp_stops_supported,
)
from repro.posixrt.procfs import ProcStatus, read_proc_status, read_stat_state
from repro.posixrt.runner import MiniExperiment, PrimitiveOutcome

__all__ = [
    "WorkerHandle",
    "WorkerSpec",
    "ProcStatus",
    "read_proc_status",
    "read_stat_state",
    "sigtstp_stops_supported",
    "MiniExperiment",
    "PrimitiveOutcome",
]
