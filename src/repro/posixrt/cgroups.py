"""Best-effort cgroup memory limiting.

The paper's testbed enforces task memory through Hadoop configuration;
modern deployments use cgroups.  This module provides a small helper
that puts a worker pid into a memory-limited cgroup when the cgroup
filesystem is writable, and degrades to a no-op (with a reason) when
it is not -- which is the norm inside unprivileged containers, where
the unit tests simply assert the graceful fallback.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

_CGROUP_V2_ROOT = "/sys/fs/cgroup"
_CGROUP_V1_MEMORY = "/sys/fs/cgroup/memory"


@dataclass
class CgroupResult:
    """Outcome of a cgroup operation."""

    applied: bool
    path: Optional[str] = None
    reason: str = ""


def detect_version() -> Optional[int]:
    """2 for unified hierarchy, 1 for legacy memory controller, None."""
    if os.path.isfile(os.path.join(_CGROUP_V2_ROOT, "cgroup.controllers")):
        return 2
    if os.path.isdir(_CGROUP_V1_MEMORY):
        return 1
    return None


def limit_memory(pid: int, limit_bytes: int, group_name: str = "repro") -> CgroupResult:
    """Place ``pid`` in a cgroup capped at ``limit_bytes``.

    Returns ``applied=False`` with a reason instead of raising when the
    cgroup fs is missing or read-only.
    """
    version = detect_version()
    if version is None:
        return CgroupResult(applied=False, reason="no cgroup filesystem")
    if version == 2:
        base = _CGROUP_V2_ROOT
        limit_file = "memory.max"
    else:
        base = _CGROUP_V1_MEMORY
        limit_file = "memory.limit_in_bytes"
    group_path = os.path.join(base, group_name)
    try:
        os.makedirs(group_path, exist_ok=True)
        with open(os.path.join(group_path, limit_file), "w") as handle:
            handle.write(str(limit_bytes))
        with open(os.path.join(group_path, "cgroup.procs"), "w") as handle:
            handle.write(str(pid))
    except OSError as exc:
        return CgroupResult(
            applied=False, path=group_path, reason=f"cgroup fs not writable: {exc}"
        )
    return CgroupResult(applied=True, path=group_path)
