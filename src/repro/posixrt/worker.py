"""The worker process: a real synthetic mapper.

Runs as ``python -m repro.posixrt.worker`` with a JSON spec on the
command line.  It emulates the paper's synthetic tasks:

* allocate ``memory_bytes`` and dirty every page (write random-ish
  values), like the stateful worst-case tasks;
* "parse" ``input_bytes`` of synthetic input in chunks, paced to
  ``rate_bytes_per_sec``, appending progress records to a status file;
* read the allocated memory back before exiting (finalisation).

Signal behaviour is the heart of the prototype: the ``SIGTSTP``
handler performs cleanup (flushes the status file -- standing in for
"closing and reopening network connections"), then self-delivers
``SIGSTOP`` to actually stop; on ``SIGCONT`` the handler is
reinstalled.  This is the canonical job-control dance the paper's
TaskTracker modification performs, with one portability twist: the
controller starts workers in their own session, which makes the
worker's process group *orphaned*, and POSIX discards the default
stop action of SIGTSTP/SIGTTIN/SIGTTOU in orphaned process groups
(the usual re-raise-SIGTSTP dance silently fails to stop).  SIGSTOP
is exempt from that rule, so the handler uses it for the actual stop
while SIGTSTP remains the external suspend request -- same observable
behaviour (state ``T`` in /proc, SIGCONT resumes), robust everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
import zlib


class WorkerMain:
    """State and main loop of one worker process."""

    def __init__(self, spec: dict):
        self.input_bytes = int(spec["input_bytes"])
        self.chunk_bytes = int(spec.get("chunk_bytes", 1 << 20))
        self.memory_bytes = int(spec.get("memory_bytes", 0))
        self.rate = float(spec.get("rate_bytes_per_sec", 8 << 20))
        self.status_path = spec["status_path"]
        self._memory = None
        self._status = open(self.status_path, "a", buffering=1)

    # -- status protocol ---------------------------------------------------

    def emit(self, kind: str, value: str = "") -> None:
        """Append one status record: '<kind> <value>' per line."""
        self._status.write(f"{kind} {value}\n".rstrip() + "\n")
        self._status.flush()

    # -- signal handling -------------------------------------------------------

    def install_sigtstp(self) -> None:
        """(Re)install the cleanup-then-stop handler."""
        signal.signal(signal.SIGTSTP, self._on_sigtstp)

    def _on_sigtstp(self, signum, frame) -> None:
        # Tidy external state, then actually stop.  SIGSTOP (not a
        # re-raised SIGTSTP) delivers the stop: this process group is
        # orphaned (the controller uses start_new_session), and POSIX
        # discards SIGTSTP's default stop action in orphaned groups.
        self.emit("SUSPENDING", f"{time.monotonic():.6f}")
        self._status.flush()
        signal.signal(signal.SIGCONT, self._on_sigcont)
        os.kill(os.getpid(), signal.SIGSTOP)

    def _on_sigcont(self, signum, frame) -> None:
        self.emit("RESUMED", f"{time.monotonic():.6f}")
        self.install_sigtstp()

    # -- work phases ------------------------------------------------------------

    def allocate_memory(self) -> None:
        """Dirty every page of the configured footprint."""
        if self.memory_bytes <= 0:
            return
        self.emit("ALLOCATING", str(self.memory_bytes))
        self._memory = bytearray(self.memory_bytes)
        page = 4096
        # Writing one word per page marks the page dirty without
        # burning excessive CPU.  Force the low bit so the pattern is
        # nonzero for every pid (pid % 256 == 0 would otherwise write
        # zeros and defeat checksum-based dirtying checks).
        pattern = (os.getpid() & 0xFF) | 1
        for offset in range(0, self.memory_bytes, page):
            self._memory[offset] = pattern
        self.emit("ALLOCATED", str(self.memory_bytes))

    def readback_memory(self) -> int:
        """Touch every page again (finalisation); returns a checksum."""
        if not self._memory:
            return 0
        total = 0
        for offset in range(0, len(self._memory), 4096):
            total = (total + self._memory[offset]) & 0xFFFFFFFF
        self.emit("READBACK", str(total))
        return total

    def parse_input(self) -> None:
        """Chunked CPU work paced to the configured rate."""
        processed = 0
        buffer = os.urandom(min(self.chunk_bytes, 1 << 16))
        self.emit("START", f"{time.monotonic():.6f}")
        while processed < self.input_bytes:
            chunk = min(self.chunk_bytes, self.input_bytes - processed)
            deadline = time.monotonic() + chunk / self.rate
            checksum = 0
            # Do real CPU work proportional to the chunk size.
            passes = max(1, chunk // len(buffer))
            for _ in range(passes):
                checksum = zlib.crc32(buffer, checksum)
            # Pace to the target rate (a fast CRC finishes early).
            remaining = deadline - time.monotonic()
            if remaining > 0:
                time.sleep(remaining)
            processed += chunk
            self.emit("PROGRESS", f"{processed / self.input_bytes:.6f}")
        self.emit("PARSED", str(processed))

    def run(self) -> int:
        """Full task: allocate, parse, read back, done."""
        self.install_sigtstp()
        self.emit("PID", str(os.getpid()))
        self.allocate_memory()
        self.parse_input()
        self.readback_memory()
        self.emit("DONE", f"{time.monotonic():.6f}")
        return 0


def main(argv=None) -> int:
    """Entry point: ``python -m repro.posixrt.worker --spec '<json>'``."""
    parser = argparse.ArgumentParser(prog="repro-worker")
    parser.add_argument("--spec", required=True, help="JSON task spec")
    args = parser.parse_args(argv)
    spec = json.loads(args.spec)
    worker = WorkerMain(spec)
    return worker.run()


if __name__ == "__main__":
    sys.exit(main())
