"""The controller: spawn and signal real worker processes.

This is the TaskTracker's job in miniature: fork a worker, watch its
progress through the status file, and deliver SIGTSTP / SIGCONT /
SIGKILL on request.  Used by the mini experiment runner, the posix
integration tests, and the ``repro real-demo`` CLI.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import WorkerProtocolError, WorkerSpawnError
from repro.posixrt.procfs import ProcStatus, read_proc_status, read_stat_state
from repro.units import MB


_STOP_PROBE_SOURCE = """
import os, signal, sys, time
def on_tstp(signum, frame):
    os.kill(os.getpid(), signal.SIGSTOP)
signal.signal(signal.SIGTSTP, on_tstp)
sys.stdout.write("R"); sys.stdout.flush()
while True:
    time.sleep(0.05)
"""

_sigtstp_probe_result: Optional[bool] = None


def sigtstp_stops_supported(timeout: float = 5.0) -> bool:
    """Probe whether this platform can deliver *and observe* a
    SIGTSTP-initiated job-control stop.

    Some sandboxes and exotic kernels swallow stop signals entirely or
    hide the ``T`` state; the posix integration tests skip rather than
    fail there.  The probe spawns a child performing the worker's
    handler-then-SIGSTOP dance and polls ``/proc/<pid>/stat`` for
    ``T``.  The (slow, subprocess-spawning) result is cached.
    """
    global _sigtstp_probe_result
    if _sigtstp_probe_result is not None:
        return _sigtstp_probe_result
    if not sys.platform.startswith("linux"):
        _sigtstp_probe_result = False
        return False
    proc = None
    supported = False
    try:
        proc = subprocess.Popen(
            [sys.executable, "-u", "-c", _STOP_PROBE_SOURCE],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        deadline = time.monotonic() + timeout
        # Wait (bounded) for the handler-installed readiness byte; a
        # blocking read here could hang the whole test session on the
        # very platforms this probe exists to detect.
        ready, _, _ = select.select(
            [proc.stdout], [], [], max(0.0, deadline - time.monotonic())
        )
        if not ready:
            raise OSError("probe child never became ready")
        proc.stdout.read(1)
        os.kill(proc.pid, signal.SIGTSTP)
        while time.monotonic() < deadline:
            state = read_stat_state(proc.pid)
            if state is None:
                break
            if state.startswith("T"):
                supported = True
                break
            time.sleep(0.02)
    except OSError:  # pragma: no cover - spawn failure
        supported = False
    finally:
        if proc is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - already gone
                pass
            proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
    _sigtstp_probe_result = supported
    return supported


@dataclass
class WorkerSpec:
    """Parameters of one real worker task."""

    input_bytes: int = 16 * MB
    chunk_bytes: int = 1 * MB
    memory_bytes: int = 0
    rate_bytes_per_sec: float = 8 * MB
    name: str = "worker"

    def to_json(self, status_path: str) -> str:
        """The --spec payload for the worker process."""
        return json.dumps(
            {
                "input_bytes": self.input_bytes,
                "chunk_bytes": self.chunk_bytes,
                "memory_bytes": self.memory_bytes,
                "rate_bytes_per_sec": self.rate_bytes_per_sec,
                "status_path": status_path,
            }
        )


@dataclass
class StatusRecord:
    """One parsed status line."""

    kind: str
    value: str


class WorkerHandle:
    """A live (or finished) worker process."""

    def __init__(self, spec: WorkerSpec, workdir: Optional[str] = None):
        self.spec = spec
        self._own_dir = workdir is None
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-worker-")
        self.status_path = os.path.join(self.workdir, f"{spec.name}.status")
        open(self.status_path, "w").close()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.suspended_spans: List[tuple] = []
        self._suspend_started: Optional[float] = None
        try:
            self.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.posixrt.worker",
                    "--spec",
                    spec.to_json(self.status_path),
                ],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                start_new_session=True,  # isolate from our terminal's job control
            )
        except OSError as exc:  # pragma: no cover - spawn failure
            raise WorkerSpawnError(f"could not spawn worker: {exc}")
        self.started_at = time.monotonic()

    # -- observation ----------------------------------------------------------

    @property
    def pid(self) -> int:
        """Worker process id."""
        return self.proc.pid

    def read_status(self) -> List[StatusRecord]:
        """All status records emitted so far."""
        records = []
        try:
            with open(self.status_path, "r", encoding="ascii", errors="replace") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    parts = line.split(" ", 1)
                    records.append(
                        StatusRecord(parts[0], parts[1] if len(parts) > 1 else "")
                    )
        except FileNotFoundError:  # pragma: no cover - race at teardown
            pass
        return records

    def progress(self) -> float:
        """Latest reported progress fraction."""
        latest = 0.0
        for record in self.read_status():
            if record.kind == "PROGRESS":
                try:
                    latest = float(record.value)
                except ValueError:
                    raise WorkerProtocolError(
                        f"malformed PROGRESS record: {record.value!r}"
                    )
            elif record.kind == "DONE":
                latest = 1.0
        return latest

    def done(self) -> bool:
        """True when the worker finished its plan."""
        return any(r.kind == "DONE" for r in self.read_status())

    def exited(self) -> bool:
        """True when the process is gone (any reason)."""
        return self.proc.poll() is not None

    def proc_status(self) -> Optional[ProcStatus]:
        """The /proc view of the worker."""
        return read_proc_status(self.pid)

    def is_stopped(self) -> bool:
        """True when ``/proc/<pid>/stat`` reports job-control stop (T).

        The stat file's state field tracks the scheduler synchronously;
        ``/proc/<pid>/status`` can lag it by a scheduling quantum.
        """
        state = read_stat_state(self.pid)
        return state is not None and state.startswith("T")

    # -- signals (the preemption primitive, for real) -----------------------------

    def suspend(self) -> None:
        """Deliver SIGTSTP."""
        os.kill(self.pid, signal.SIGTSTP)
        self._suspend_started = time.monotonic()

    def resume(self) -> None:
        """Deliver SIGCONT."""
        os.kill(self.pid, signal.SIGCONT)
        if self._suspend_started is not None:
            self.suspended_spans.append(
                (self._suspend_started, time.monotonic())
            )
            self._suspend_started = None

    def kill(self) -> None:
        """Deliver SIGKILL."""
        try:
            os.kill(self.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass

    # -- waiting -------------------------------------------------------------------

    def wait_progress(self, fraction: float, timeout: float = 60.0) -> bool:
        """Poll until progress >= fraction (True) or timeout (False)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.progress() >= fraction:
                return True
            if self.exited() and not self.done():
                return False
            time.sleep(0.02)
        return False

    def wait_stopped(self, timeout: float = 10.0) -> bool:
        """Poll until /proc shows the stop landed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.is_stopped():
                return True
            time.sleep(0.01)
        return False

    def wait_done(self, timeout: float = 120.0) -> bool:
        """Poll until the worker reports DONE and exits."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.exited():
                if self.done():
                    if self.finished_at is None:
                        self.finished_at = time.monotonic()
                    return True
                return False
            time.sleep(0.02)
        return False

    # -- cleanup ----------------------------------------------------------------------

    def close(self) -> None:
        """Kill (if needed) and reap the worker; remove temp files."""
        if not self.exited():
            self.kill()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            pass
        if self.proc.stderr is not None:
            self.proc.stderr.close()
        if self._own_dir:
            try:
                os.unlink(self.status_path)
                os.rmdir(self.workdir)
            except OSError:
                pass

    def __enter__(self) -> "WorkerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
