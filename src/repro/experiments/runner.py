"""Parallel experiment runner.

Every experiment in this repository is a grid of independent *cells*
-- one simulated run per (scenario x primitive x seed) point -- and
simulations share nothing, so the grid shards perfectly across worker
processes.  This module is the one place that fan-out lives:

* a :class:`Cell` names a top-level function by module path plus the
  keyword arguments of one run, so cells pickle as plain strings and
  survive any multiprocessing start method;
* :func:`derive_seed` hashes the cell's coordinates into its seed, so
  a cell's randomness depends only on *what* it is, never on *which
  worker* runs it or in what order;
* :func:`run_cells` executes a cell list either serially in-process
  (``workers=1``) or on a process pool, returning results in cell
  order either way.

Because cells are pure functions of their arguments and results are
re-assembled in grid order, a parallel run is **bit-identical** to the
serial run -- the determinism test suite asserts exactly that, and the
CLI exposes the knob as ``repro run <experiment> --workers N``.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError

#: hard cap so a typo'd ``--workers 4000`` does not fork-bomb the host
MAX_WORKERS = 64

#: live progress to stderr (module-level so the CLI can flip it once
#: for every study a command runs); stdout artifacts never change
_progress_enabled = False


def set_progress(enabled: bool) -> None:
    """Enable/disable per-cell progress lines on stderr.

    Off by default (library callers and tests see no output); the CLI
    turns it on for interactive runs and ``--quiet`` turns it back
    off.  Progress is *reporting only* -- cell results are identical
    either way.
    """
    global _progress_enabled
    _progress_enabled = bool(enabled)


def progress_enabled() -> bool:
    """Current progress-reporting state."""
    return _progress_enabled


#: params worth echoing in a progress line, in display order
_LABEL_KEYS = ("scenario", "mode", "primitive", "primitive_name",
               "trackers", "num_jobs", "seed")


def _cell_label(cell: "Cell") -> str:
    """Compact human label for one cell's progress lines."""
    params = cell.kwargs
    parts = [f"{key}={params[key]}" for key in _LABEL_KEYS if key in params]
    module = cell.module.rsplit(".", 1)[-1]
    return f"{module}.{cell.func}({', '.join(parts)})"


def _progress(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


def default_workers() -> int:
    """A sensible pool size: the machine's cores, capped."""
    return min(os.cpu_count() or 1, MAX_WORKERS)


def derive_seed(base_seed: int, *coordinates: Any) -> int:
    """A 63-bit seed derived from ``base_seed`` and cell coordinates.

    SHA-256 over the stringified coordinates, so the mapping is stable
    across processes, Python versions and platforms (unlike ``hash``).
    Worker count and execution order never enter the derivation --
    that is the whole trick behind serial/parallel equality.
    """
    payload = ":".join(str(part) for part in (base_seed, *coordinates))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Cell:
    """One executable grid point.

    ``module``/``func`` name a *top-level* function importable in any
    worker process; ``params`` are its keyword arguments as a sorted
    tuple of pairs (kept a tuple so cells stay hashable and pickle
    small).
    """

    module: str
    func: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, module: str, func: str, **params: Any) -> "Cell":
        return cls(module=module, func=func, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The cell's keyword arguments as a dict."""
        return dict(self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"Cell({self.module}.{self.func}({inner}))"


def execute_cell(cell: Cell) -> Any:
    """Run one cell in the current process."""
    fn = getattr(importlib.import_module(cell.module), cell.func)
    return fn(**cell.kwargs)


def run_cells(
    cells: Iterable[Cell],
    workers: int = 1,
    chunksize: int = 1,
) -> List[Any]:
    """Execute every cell; results come back in cell order.

    ``workers <= 1`` runs serially in-process (no pool, no pickling);
    more workers shard the list over a process pool.  Either way the
    returned list lines up index-for-index with the input cells, and
    because each cell's seed is derived from its coordinates (see
    :func:`derive_seed`) the values are identical for any ``workers``.
    """
    cell_list = list(cells)
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    workers = min(workers, MAX_WORKERS, max(len(cell_list), 1))
    total = len(cell_list)
    if workers <= 1 or total <= 1:
        if not _progress_enabled:
            return [execute_cell(cell) for cell in cell_list]
        results = []
        for index, cell in enumerate(cell_list, start=1):
            _progress(f"[{index}/{total}] start {_cell_label(cell)}")
            started = time.perf_counter()
            results.append(execute_cell(cell))
            _progress(
                f"[{index}/{total}] done in "
                f"{time.perf_counter() - started:.1f}s "
                f"({total - index} cells remaining)"
            )
        return results
    # Fork keeps the warm interpreter (and sys.path) on POSIX; spawn is
    # the portable fallback and works because cells carry module paths,
    # not closures.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    with context.Pool(processes=workers) as pool:
        if not _progress_enabled:
            return pool.map(execute_cell, cell_list, chunksize=chunksize)
        # imap preserves cell order but yields each result as soon as
        # its cell (and every earlier one) finished, so the parent can
        # narrate completions while the pool keeps working.
        results = []
        started = time.perf_counter()
        for index, result in enumerate(
            pool.imap(execute_cell, cell_list, chunksize=chunksize), start=1
        ):
            results.append(result)
            _progress(
                f"[{index}/{total}] {_cell_label(cell_list[index - 1])} "
                f"done at {time.perf_counter() - started:.1f}s elapsed "
                f"({total - index} cells remaining)"
            )
        return results
