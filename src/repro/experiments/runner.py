"""Parallel experiment runner.

Every experiment in this repository is a grid of independent *cells*
-- one simulated run per (scenario x primitive x seed) point -- and
simulations share nothing, so the grid shards perfectly across worker
processes.  This module is the one place that fan-out lives:

* a :class:`Cell` names a top-level function by module path plus the
  keyword arguments of one run, so cells pickle as plain strings and
  survive any multiprocessing start method;
* :func:`derive_seed` hashes the cell's coordinates into its seed, so
  a cell's randomness depends only on *what* it is, never on *which
  worker* runs it or in what order;
* :func:`run_cells` executes a cell list either serially in-process
  (``workers=1``) or on a process pool, returning results in cell
  order either way.

Because cells are pure functions of their arguments and results are
re-assembled in grid order, a parallel run is **bit-identical** to the
serial run -- the determinism test suite asserts exactly that, and the
CLI exposes the knob as ``repro run <experiment> --workers N``.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import multiprocessing
import os
import pickle
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: hard cap so a typo'd ``--workers 4000`` does not fork-bomb the host
MAX_WORKERS = 64

#: live progress to stderr (module-level so the CLI can flip it once
#: for every study a command runs); stdout artifacts never change
_progress_enabled = False

#: per-cell result cache directory (module-level for the same reason
#: as progress: the CLI flips it once per command); None = no caching
_cell_cache_dir: Optional[str] = None


def set_progress(enabled: bool) -> None:
    """Enable/disable per-cell progress lines on stderr.

    Off by default (library callers and tests see no output); the CLI
    turns it on for interactive runs and ``--quiet`` turns it back
    off.  Progress is *reporting only* -- cell results are identical
    either way.
    """
    global _progress_enabled
    _progress_enabled = bool(enabled)


def progress_enabled() -> bool:
    """Current progress-reporting state."""
    return _progress_enabled


def set_cell_cache(directory: Optional[str]) -> None:
    """Persist every finished cell's result under ``directory``.

    With a cache set, :func:`run_cells` writes each cell's result to
    ``<dir>/<cell_key>.pkl`` the moment it finishes and skips cells
    whose result file already exists -- so a killed ``--workers`` sweep
    restarted with the same cache directory re-runs only the missing
    cells, and the reassembled result list is identical to an
    uninterrupted run (cells are pure functions of their params).
    ``None`` disables caching.
    """
    global _cell_cache_dir
    _cell_cache_dir = directory


def cell_cache_dir() -> Optional[str]:
    """Current cell-cache directory (None = caching off)."""
    return _cell_cache_dir


def cell_key(cell: "Cell") -> str:
    """Stable content address of one cell: its module, function and
    params (the same coordinates that derive its seed)."""
    payload = repr((cell.module, cell.func, cell.params))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


#: params worth echoing in a progress line, in display order
_LABEL_KEYS = ("scenario", "mode", "primitive", "primitive_name",
               "progress_at_launch", "trackers", "num_jobs", "seed")


def _cell_label(cell: "Cell") -> str:
    """Compact human label for one cell's progress lines."""
    params = cell.kwargs
    parts = [f"{key}={params[key]}" for key in _LABEL_KEYS if key in params]
    module = cell.module.rsplit(".", 1)[-1]
    return f"{module}.{cell.func}({', '.join(parts)})"


def _progress(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


def default_workers() -> int:
    """A sensible pool size: the machine's cores, capped."""
    return min(os.cpu_count() or 1, MAX_WORKERS)


def derive_seed(base_seed: int, *coordinates: Any) -> int:
    """A 63-bit seed derived from ``base_seed`` and cell coordinates.

    SHA-256 over the stringified coordinates, so the mapping is stable
    across processes, Python versions and platforms (unlike ``hash``).
    Worker count and execution order never enter the derivation --
    that is the whole trick behind serial/parallel equality.
    """
    payload = ":".join(str(part) for part in (base_seed, *coordinates))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Cell:
    """One executable grid point.

    ``module``/``func`` name a *top-level* function importable in any
    worker process; ``params`` are its keyword arguments as a sorted
    tuple of pairs (kept a tuple so cells stay hashable and pickle
    small).
    """

    module: str
    func: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, module: str, func: str, **params: Any) -> "Cell":
        return cls(module=module, func=func, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The cell's keyword arguments as a dict."""
        return dict(self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"Cell({self.module}.{self.func}({inner}))"


def execute_cell(cell: Cell) -> Any:
    """Run one cell in the current process."""
    fn = getattr(importlib.import_module(cell.module), cell.func)
    return fn(**cell.kwargs)


def _cache_path(directory: str, cell: Cell) -> str:
    return os.path.join(directory, cell_key(cell) + ".pkl")


def _cache_read(directory: str, cell: Cell) -> Tuple[bool, Any]:
    """(hit, result) for one cell; unreadable files count as misses."""
    path = _cache_path(directory, cell)
    try:
        with open(path, "rb") as fh:
            return True, pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return False, None


def _cache_write(directory: str, cell: Cell, result: Any) -> None:
    """Atomic (tmp + rename) result write, so a kill mid-write never
    leaves a half-cached cell behind."""
    path = _cache_path(directory, cell)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _write_manifest(directory: str, cell_list: List[Cell]) -> None:
    """Human-readable sweep inventory: every cell's key, label and
    completion state (``repro resume <dir>`` reports from this)."""
    entries = []
    for cell in cell_list:
        entries.append({
            "key": cell_key(cell),
            "label": _cell_label(cell),
            "done": os.path.exists(_cache_path(directory, cell)),
        })
    manifest = {
        "total": len(entries),
        "done": sum(1 for e in entries if e["done"]),
        "cells": entries,
    }
    tmp = os.path.join(directory, f"manifest.json.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    os.replace(tmp, os.path.join(directory, "manifest.json"))


def run_cells(
    cells: Iterable[Cell],
    workers: int = 1,
    chunksize: int = 1,
    cache_dir: Optional[str] = None,
) -> List[Any]:
    """Execute every cell; results come back in cell order.

    ``workers <= 1`` runs serially in-process (no pool, no pickling);
    more workers shard the list over a process pool.  Either way the
    returned list lines up index-for-index with the input cells, and
    because each cell's seed is derived from its coordinates (see
    :func:`derive_seed`) the values are identical for any ``workers``.

    ``cache_dir`` (or the module-level :func:`set_cell_cache`) turns on
    per-cell checkpointing: finished results persist immediately and
    already-persisted cells are loaded instead of re-run, so a killed
    sweep resumed with the same directory completes with identical
    results.
    """
    cell_list = list(cells)
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    workers = min(workers, MAX_WORKERS, max(len(cell_list), 1))
    total = len(cell_list)
    directory = cache_dir if cache_dir is not None else _cell_cache_dir
    results: List[Any] = [None] * total
    todo = list(range(total))
    if directory:
        os.makedirs(directory, exist_ok=True)
        todo = []
        for index, cell in enumerate(cell_list):
            hit, value = _cache_read(directory, cell)
            if hit:
                results[index] = value
            else:
                todo.append(index)
        if _progress_enabled and len(todo) < total:
            _progress(
                f"[cache] {total - len(todo)}/{total} cells already "
                f"checkpointed in {directory}; running {len(todo)}"
            )
        # Written before running (not just after) so a sweep killed
        # mid-flight still leaves an inventory `repro resume <dir>`
        # can report from.
        _write_manifest(directory, cell_list)

    def finish(index: int, result: Any) -> None:
        results[index] = result
        if directory:
            _cache_write(directory, cell_list[index], result)

    if workers <= 1 or len(todo) <= 1:
        for position, index in enumerate(todo, start=1):
            cell = cell_list[index]
            if _progress_enabled:
                _progress(
                    f"[{position}/{len(todo)}] start {_cell_label(cell)}"
                )
            started = time.perf_counter()
            finish(index, execute_cell(cell))
            if _progress_enabled:
                _progress(
                    f"[{position}/{len(todo)}] done in "
                    f"{time.perf_counter() - started:.1f}s "
                    f"({len(todo) - position} cells remaining)"
                )
    else:
        # Fork keeps the warm interpreter (and sys.path) on POSIX;
        # spawn is the portable fallback and works because cells carry
        # module paths, not closures.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        pending = [cell_list[index] for index in todo]
        with context.Pool(processes=workers) as pool:
            # imap preserves cell order but yields each result as soon
            # as its cell (and every earlier one) finished, so the
            # parent can narrate completions -- and persist each result
            # the moment it exists -- while the pool keeps working.
            started = time.perf_counter()
            for position, result in enumerate(
                pool.imap(execute_cell, pending, chunksize=chunksize),
                start=1,
            ):
                finish(todo[position - 1], result)
                if _progress_enabled:
                    _progress(
                        f"[{position}/{len(pending)}] "
                        f"{_cell_label(pending[position - 1])} "
                        f"done at {time.perf_counter() - started:.1f}s "
                        f"elapsed ({len(pending) - position} cells "
                        f"remaining)"
                    )
    if directory:
        _write_manifest(directory, cell_list)
    return results
