"""Parallel experiment runner.

Every experiment in this repository is a grid of independent *cells*
-- one simulated run per (scenario x primitive x seed) point -- and
simulations share nothing, so the grid shards perfectly across worker
processes.  This module is the one place that fan-out lives:

* a :class:`Cell` names a top-level function by module path plus the
  keyword arguments of one run, so cells pickle as plain strings and
  survive any multiprocessing start method;
* :func:`derive_seed` hashes the cell's coordinates into its seed, so
  a cell's randomness depends only on *what* it is, never on *which
  worker* runs it or in what order;
* :func:`run_cells` executes a cell list either serially in-process
  (``workers=1``) or sharded over *supervised* worker processes
  (:mod:`repro.experiments.supervisor`), returning results in cell
  order either way.

Because cells are pure functions of their arguments and results are
re-assembled in grid order, a parallel run is **bit-identical** to the
serial run -- the determinism test suite asserts exactly that, and the
CLI exposes the knob as ``repro run <experiment> --workers N``.  The
supervised pool survives worker crashes, hangs and corrupt results:
failed cells are retried deterministically and poison cells are
quarantined instead of aborting the sweep (``--max-retries``,
``--cell-timeout``, ``--chaos``).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pickle
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, QuarantineError

#: hard cap so a typo'd ``--workers 4000`` does not fork-bomb the host
MAX_WORKERS = 64

#: live progress to stderr (module-level so the CLI can flip it once
#: for every study a command runs); stdout artifacts never change
_progress_enabled = False

#: per-cell result cache directory (module-level for the same reason
#: as progress: the CLI flips it once per command); None = no caching
_cell_cache_dir: Optional[str] = None


def set_progress(enabled: bool) -> None:
    """Enable/disable per-cell progress lines on stderr.

    Off by default (library callers and tests see no output); the CLI
    turns it on for interactive runs and ``--quiet`` turns it back
    off.  Progress is *reporting only* -- cell results are identical
    either way.
    """
    global _progress_enabled
    _progress_enabled = bool(enabled)


def progress_enabled() -> bool:
    """Current progress-reporting state."""
    return _progress_enabled


def set_cell_cache(directory: Optional[str]) -> None:
    """Persist every finished cell's result under ``directory``.

    With a cache set, :func:`run_cells` writes each cell's result to
    ``<dir>/<cell_key>.pkl`` the moment it finishes and skips cells
    whose result file already exists -- so a killed ``--workers`` sweep
    restarted with the same cache directory re-runs only the missing
    cells, and the reassembled result list is identical to an
    uninterrupted run (cells are pure functions of their params).
    ``None`` disables caching.
    """
    global _cell_cache_dir
    _cell_cache_dir = directory


#: explicit run-ledger file path; None = derive from the cache dir
#: (``<cache>/ledger.jsonl``) or no file at all
_ledger_path_override: Optional[str] = None


def set_ledger(path: Optional[str]) -> None:
    """Write the sweep's run ledger to an explicit file.

    Without an override the ledger rides the cell cache
    (``<checkpoint-dir>/ledger.jsonl``); this knob exists for sweeps
    that want live observation (``repro run --serve``) without result
    caching.  Like every observation hook, the ledger never alters
    results -- the differential suite pins ledger-on == ledger-off.
    """
    global _ledger_path_override
    _ledger_path_override = path


def ledger_override() -> Optional[str]:
    """The explicit ledger path (None = derive or disable)."""
    return _ledger_path_override


def cell_cache_dir() -> Optional[str]:
    """Current cell-cache directory (None = caching off)."""
    return _cell_cache_dir


#: sweep-supervision overrides (module-level for the same reason as
#: progress/cache: the CLI flips them once per command); empty = the
#: supervisor's defaults
_supervision: Dict[str, Any] = {}


def set_supervision(
    max_retries: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    chaos_seed: Optional[int] = None,
    snapshot_every: Optional[float] = None,
) -> None:
    """Configure how :func:`run_cells` supervises its worker shards.

    Only non-None knobs override the
    :class:`~repro.experiments.supervisor.SupervisorConfig` defaults;
    calling with no arguments resets to them.  ``chaos_seed`` arms the
    deterministic chaos harness: a seeded
    :class:`~repro.experiments.chaos.ChaosPlan` is built over the
    sweep's cell keys and injected into every worker (results are
    still byte-identical to an undisturbed run -- that is the point).
    """
    global _supervision
    knobs = {
        "max_retries": max_retries,
        "cell_timeout": cell_timeout,
        "chaos_seed": chaos_seed,
        "snapshot_every": snapshot_every,
    }
    _supervision = {k: v for k, v in knobs.items() if v is not None}


def supervision_overrides() -> Dict[str, Any]:
    """The active supervision overrides (empty = defaults)."""
    return dict(_supervision)


def cell_key(cell: "Cell") -> str:
    """Stable content address of one cell: its module, function and
    params (the same coordinates that derive its seed)."""
    payload = repr((cell.module, cell.func, cell.params))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


#: params worth echoing in a progress line, in display order
_LABEL_KEYS = ("scenario", "mode", "primitive", "primitive_name",
               "progress_at_launch", "trackers", "num_jobs", "seed")


def _cell_label(cell: "Cell") -> str:
    """Compact human label for one cell's progress lines."""
    params = cell.kwargs
    parts = [f"{key}={params[key]}" for key in _LABEL_KEYS if key in params]
    module = cell.module.rsplit(".", 1)[-1]
    return f"{module}.{cell.func}({', '.join(parts)})"


def _progress(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


def default_workers() -> int:
    """A sensible pool size: the machine's cores, capped."""
    return min(os.cpu_count() or 1, MAX_WORKERS)


def derive_seed(base_seed: int, *coordinates: Any) -> int:
    """A 63-bit seed derived from ``base_seed`` and cell coordinates.

    SHA-256 over the stringified coordinates, so the mapping is stable
    across processes, Python versions and platforms (unlike ``hash``).
    Worker count and execution order never enter the derivation --
    that is the whole trick behind serial/parallel equality.
    """
    payload = ":".join(str(part) for part in (base_seed, *coordinates))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Cell:
    """One executable grid point.

    ``module``/``func`` name a *top-level* function importable in any
    worker process; ``params`` are its keyword arguments as a sorted
    tuple of pairs (kept a tuple so cells stay hashable and pickle
    small).
    """

    module: str
    func: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, module: str, func: str, **params: Any) -> "Cell":
        return cls(module=module, func=func, params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The cell's keyword arguments as a dict."""
        return dict(self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"Cell({self.module}.{self.func}({inner}))"


def execute_cell(cell: Cell) -> Any:
    """Run one cell in the current process."""
    fn = getattr(importlib.import_module(cell.module), cell.func)
    return fn(**cell.kwargs)


def _cache_path(directory: str, cell: Cell) -> str:
    return os.path.join(directory, cell_key(cell) + ".pkl")


def _cache_read(directory: str, cell: Cell) -> Tuple[bool, Any]:
    """(hit, result) for one cell.

    A missing file is a plain miss; a file that *exists* but does not
    unpickle (truncated by a crash mid-write outside the atomic path,
    bit-rotted, wrong format) is quarantined to ``<key>.pkl.corrupt``
    with a stderr warning and treated as a miss -- the cell re-runs
    instead of the sweep crashing on its own cache.
    """
    path = _cache_path(directory, cell)
    try:
        fh = open(path, "rb")
    except OSError:
        return False, None
    try:
        with fh:
            return True, pickle.load(fh)
    except Exception as exc:
        quarantine = f"{path}.corrupt"
        try:
            os.replace(path, quarantine)
            where = f"; moved to {quarantine}"
        except OSError:
            where = ""
        print(
            f"warning: corrupt cell cache {path} ({exc!r}); treating as "
            f"a miss and re-running the cell{where}",
            file=sys.stderr,
        )
        return False, None


def _cache_write(directory: str, cell: Cell, result: Any) -> None:
    """Atomic (tmp + rename) result write, so a kill mid-write never
    leaves a half-cached cell behind."""
    path = _cache_path(directory, cell)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _write_manifest(
    directory: str,
    cell_list: List[Cell],
    quarantined: Optional[List[Any]] = None,
    stats: Optional[Dict[str, int]] = None,
) -> None:
    """Human-readable sweep inventory: every cell's key, label and
    completion state (``repro resume <dir>`` reports from this).

    A supervised sweep also records its quarantined poison cells (per
    cell: attempts and failure causes) and the supervisor's counters
    (retries, worker deaths, timeouts, ...), so a chaos or crash story
    is reconstructable from the manifest alone.
    """
    by_index = {
        record.index: record for record in (quarantined or [])
    }
    entries = []
    for index, cell in enumerate(cell_list):
        entry = {
            "key": cell_key(cell),
            "label": _cell_label(cell),
            "done": os.path.exists(_cache_path(directory, cell)),
        }
        record = by_index.get(index)
        if record is not None:
            entry["quarantined"] = True
            entry["attempts"] = record.attempts
            entry["causes"] = list(record.causes)
        entries.append(entry)
    manifest = {
        "total": len(entries),
        "done": sum(1 for e in entries if e["done"]),
        "quarantined": len(by_index),
        "cells": entries,
    }
    if stats is not None:
        manifest["supervisor"] = dict(stats)
    tmp = os.path.join(directory, f"manifest.json.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    os.replace(tmp, os.path.join(directory, "manifest.json"))


def _build_supervision(cell_list: List[Cell]):
    """The sweep's :class:`SupervisorConfig` from the module-level
    overrides (None when no override is active)."""
    if not _supervision:
        return None
    from repro.experiments.supervisor import SupervisorConfig

    kwargs: Dict[str, Any] = {
        key: _supervision[key]
        for key in ("max_retries", "cell_timeout", "snapshot_every")
        if key in _supervision
    }
    chaos_seed = _supervision.get("chaos_seed")
    if chaos_seed is not None:
        from repro.experiments.chaos import seeded_plan

        kwargs["chaos"] = seeded_plan(
            [cell_key(cell) for cell in cell_list], chaos_seed
        )
        # A seeded plan may hang workers; a hung cell needs a
        # wall-clock budget to be detectable at all.
        kwargs.setdefault("cell_timeout", 600.0)
    return SupervisorConfig(**kwargs)


def _grid_digest(cell_list: List[Cell]) -> str:
    """Content address of the whole grid (sweep-start identity)."""
    h = hashlib.sha256()
    for cell in cell_list:
        h.update(cell_key(cell).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()[:24]


def cell_cost(result: Any) -> float:
    """A cell's *virtual cost*: its simulation's fired-event count
    when the result reports one, else 1.0.  Weights the observatory's
    throughput/ETA math so heavy cells count for what they cost."""
    if isinstance(result, dict):
        try:
            cost = float(result.get("events", 1.0))
        except (TypeError, ValueError):
            return 1.0
        return cost if cost > 0 else 1.0
    return 1.0


def _open_ledger(directory: Optional[str]):
    """The sweep's :class:`~repro.obs.ledger.Ledger`, or None.

    A file sink is attached when an explicit path was set
    (:func:`set_ledger`) or a cache directory is active (the ledger
    then lives at ``<dir>/ledger.jsonl``); a console renderer is
    subscribed when progress is enabled.  With neither, there is no
    ledger at all -- zero overhead for bare library sweeps.
    """
    from repro.obs.ledger import ledger_path as _ledger_path

    path = _ledger_path_override or (
        _ledger_path(directory) if directory else None
    )
    if path is None and not _progress_enabled:
        return None
    from repro.obs.ledger import Ledger

    try:
        ledger = Ledger(path)
    except OSError as exc:
        print(
            f"warning: cannot open run ledger {path} ({exc}); "
            "running unobserved",
            file=sys.stderr,
        )
        if not _progress_enabled:
            return None
        ledger = Ledger(None)
    if _progress_enabled:
        from repro.obs.console import ConsoleRenderer

        ledger.subscribe(ConsoleRenderer())
    return ledger


def run_cells(
    cells: Iterable[Cell],
    workers: int = 1,
    chunksize: int = 1,  # kept for API compatibility; dispatch is
    #                      per-cell under supervision
    cache_dir: Optional[str] = None,
    supervise=None,
    on_quarantine: str = "raise",
) -> List[Any]:
    """Execute every cell; results come back in cell order.

    ``workers <= 1`` runs serially in-process (no pool, no pickling);
    more workers shard the list over *supervised* worker processes
    (:mod:`repro.experiments.supervisor`): crashed, hung or
    garbage-emitting workers are detected, their cells retried
    deterministically, and poison cells quarantined so the rest of the
    sweep still completes.  Either way the returned list lines up
    index-for-index with the input cells, and because each cell's seed
    is derived from its coordinates (see :func:`derive_seed`) the
    values are identical for any ``workers`` -- crashes, retries and
    chaos included.

    ``cache_dir`` (or the module-level :func:`set_cell_cache`) turns on
    per-cell checkpointing: finished results persist immediately and
    already-persisted cells are loaded instead of re-run, so a killed
    sweep resumed with the same directory completes with identical
    results.  A ``KeyboardInterrupt`` mid-sweep flushes the manifest
    before re-raising -- Ctrl-C never loses completed cells.

    ``supervise`` (a :class:`~repro.experiments.supervisor.\
SupervisorConfig`) overrides the module-level supervision knobs; with
    quarantined cells, ``on_quarantine="raise"`` (default) raises
    :class:`~repro.errors.QuarantineError` *after* the sweep completes
    and persists, while ``"keep"`` leaves ``None`` at their indices.
    """
    cell_list = list(cells)
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if on_quarantine not in ("raise", "keep"):
        raise ConfigurationError(
            f"on_quarantine must be 'raise' or 'keep', got {on_quarantine!r}"
        )
    total = len(cell_list)
    directory = cache_dir if cache_dir is not None else _cell_cache_dir
    results: List[Any] = [None] * total
    todo = list(range(total))
    if directory:
        os.makedirs(directory, exist_ok=True)
        todo = []
        for index, cell in enumerate(cell_list):
            hit, value = _cache_read(directory, cell)
            if hit:
                results[index] = value
            else:
                todo.append(index)
        # Written before running (not just after) so a sweep killed
        # mid-flight still leaves an inventory `repro resume <dir>`
        # can report from.
        _write_manifest(directory, cell_list)
    # A warm cache leaves fewer cells than the grid: size the pool by
    # the *remaining* work so a nearly finished sweep does not fork a
    # fleet of idle workers.
    workers = min(workers, MAX_WORKERS, max(len(todo), 1))
    config = supervise if supervise is not None else _build_supervision(
        cell_list
    )

    ledger = _open_ledger(directory)

    # Manifest freshness: quarantine records and supervisor counters
    # surface through ledger events *as they happen*, so the manifest
    # on disk is accurate after every cell -- a SIGKILLed parent can no
    # longer leave a stale inventory behind.
    live_quarantined: List[Any] = []
    live_stats: Dict[str, int] = {}

    def flush_manifest() -> None:
        if directory:
            _write_manifest(
                directory, cell_list,
                quarantined=live_quarantined,
                stats=live_stats or None,
            )

    if ledger is not None:

        def track(record: Dict[str, Any]) -> None:
            event = record.get("event")
            if event == "cell-quarantine":
                from repro.experiments.supervisor import QuarantineRecord

                live_quarantined.append(QuarantineRecord(
                    index=int(record["index"]),
                    key=record.get("key", ""),
                    label=record.get("label", ""),
                    attempts=int(record.get("attempts", 0)),
                    causes=list(record.get("causes", [])),
                ))
                flush_manifest()
            elif event == "counters":
                live_stats.update(record.get("counters") or {})

        ledger.subscribe(track)

    def emit(event: str, **fields: Any) -> None:
        if ledger is not None:
            ledger.emit(event, **fields)

    def finish(index: int, result: Any) -> None:
        results[index] = result
        if directory:
            _cache_write(directory, cell_list[index], result)
            flush_manifest()

    emit(
        "sweep-start",
        total=total,
        workers=workers,
        cached=total - len(todo),
        grid_digest=_grid_digest(cell_list),
        experiment=(
            f"{cell_list[0].module.rsplit('.', 1)[-1]}.{cell_list[0].func}"
            if cell_list else None
        ),
        ledger_path=ledger.path if ledger is not None else None,
        supervised=config is not None or (workers > 1 and len(todo) > 1),
        cells=[
            {"index": i, "key": cell_key(c), "label": _cell_label(c)}
            for i, c in enumerate(cell_list)
        ],
    )
    if directory:
        todo_set = set(todo)
        for index in range(total):
            if index not in todo_set:
                emit("cell-cached", index=index,
                     key=cell_key(cell_list[index]))

    quarantined: List[Any] = []
    stats: Optional[Dict[str, int]] = None
    try:
        if len(todo) <= 1 or (workers <= 1 and config is None):
            for index in todo:
                cell = cell_list[index]
                emit("cell-start", index=index, key=cell_key(cell),
                     label=_cell_label(cell), attempt=0)
                started = time.perf_counter()
                result = execute_cell(cell)
                finish(index, result)
                emit(
                    "cell-finish", index=index, key=cell_key(cell),
                    label=_cell_label(cell), attempt=0,
                    duration_s=round(time.perf_counter() - started, 3),
                    cost=cell_cost(result),
                    sketch=(
                        result.get("sketch")
                        if isinstance(result, dict) else None
                    ),
                )
        else:
            from repro.experiments.supervisor import (
                SupervisorConfig,
                supervise_cells,
            )

            sweep = supervise_cells(
                cell_list,
                todo,
                workers,
                config or SupervisorConfig(),
                cache_dir=directory,
                on_finish=finish,
                ledger=ledger,
            )
            quarantined = sweep.quarantined
            stats = sweep.stats
            live_stats.update(stats)
    except KeyboardInterrupt:
        # Every finished cell is already persisted (finish() writes
        # through); refresh the manifest so `repro resume <dir>` sees
        # the true completion state, then let the interrupt fly.
        if directory:
            flush_manifest()
            print(
                f"interrupted: completed cells are checkpointed in "
                f"{directory}; re-run with the same directory to finish",
                file=sys.stderr,
            )
        raise
    else:
        emit(
            "sweep-finish",
            done=sum(1 for r in results if r is not None),
            total=total,
            quarantined=len(quarantined),
            counters=stats,
        )
    finally:
        if ledger is not None:
            ledger.close()
    if directory:
        _write_manifest(directory, cell_list, quarantined=quarantined,
                        stats=stats)
    if quarantined and on_quarantine == "raise":
        names = "; ".join(
            f"{record.label} after {record.attempts} attempt(s): "
            f"{record.causes[-1] if record.causes else 'unknown'}"
            for record in quarantined
        )
        where = f" (manifest: {os.path.join(directory, 'manifest.json')})" \
            if directory else ""
        raise QuarantineError(
            f"{len(quarantined)} poison cell(s) quarantined after the "
            f"sweep completed{where}: {names}",
            records=quarantined,
        )
    return results
