"""Fault study: preemption primitives under failures.

The paper evaluates kill/wait/suspend on healthy clusters; this study
re-runs the two-job contention pattern under injected faults and asks
which primitive recovers wasted work best.  Grid:

* **scenarios** (:mod:`repro.faults.scenarios`): node-crash (with
  reboot), straggler (one node at 30% speed, speculative execution
  on), transient-failure (task errors with retries);
* **primitives**: kill, wait, suspend.

Per cell the study reports the urgent job's sojourn, the global
makespan and the wasted task-seconds from the JobTracker's ledger --
the recovered-vs-wasted-work framing of ATLAS and the OSG preemption
telemetry study.  Everything is seeded: same ``base_seed`` in, same
numbers out, which the test suite asserts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NotPreemptibleError
from repro.experiments import params as P
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Cell, run_cells
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import build_scenario
from repro.hadoop.cluster import HadoopCluster
from repro.metrics.series import Series
from repro.metrics.stats import summarize
from repro.metrics.wasted import PREEMPTION_KILL
from repro.preemption.base import make_primitive
from repro.preemption.eviction import (
    FurthestFromCompletionPolicy,
    collect_candidates,
)
from repro.schedulers.dummy import DummyScheduler
from repro.schedulers.failure_aware import FailureAwareMixin
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskKind, TaskSpec

DEFAULT_SCENARIOS = ["node-crash", "straggler", "transient-failure"]
DEFAULT_PRIMITIVES = ["kill", "wait", "suspend"]

#: urgent job arrival (seconds after the background job)
ARRIVAL = 30.0
#: victims preempted for the urgent job
VICTIMS = 2
NUM_NODES = 3


class FailureAwareDummyScheduler(FailureAwareMixin, DummyScheduler):
    """The study's scheduler: trigger-driven assignment with ATLAS-style
    failure awareness (blacklist avoidance, recovery-first)."""


def _background_job() -> JobSpec:
    """Six maps that fill the cluster's slots when the urgent job lands."""
    tasks = [
        TaskSpec(
            kind=TaskKind.MAP,
            input_bytes=300 * MB,
            parse_rate=P.PARSE_RATE,
            output_bytes=0,
            name=f"bg-{i}",
        )
        for i in range(6)
    ]
    return JobSpec(name="background", tasks=tasks, priority=0)


def _urgent_job() -> JobSpec:
    """Two high-priority maps that need preempted slots."""
    tasks = [
        TaskSpec(
            kind=TaskKind.MAP,
            input_bytes=150 * MB,
            parse_rate=P.PARSE_RATE,
            output_bytes=0,
            name=f"hi-{i}",
        )
        for i in range(2)
    ]
    return JobSpec(name="urgent", tasks=tasks, priority=10)


def _study_config():
    """Paper Hadoop config adapted for the fault grid: two map slots
    per node, snappy tracker expiry, speculation on."""
    return P.paper_hadoop_config().replace(
        map_slots=2,
        tracker_expiry_interval=20.0,
        speculative_execution=True,
        speculative_lag=20.0,
    )


def _run_once(scenario: str, primitive_name: str, seed: int) -> Dict[str, float]:
    scheduler = FailureAwareDummyScheduler()
    cluster = HadoopCluster(
        num_nodes=NUM_NODES,
        node_config=P.paper_node_config(),
        hadoop_config=_study_config(),
        scheduler=scheduler,
        seed=seed,
        trace=False,
    )
    primitive = make_primitive(primitive_name, cluster)
    policy = FurthestFromCompletionPolicy()
    background = cluster.submit_job(_background_job())
    victims: List = []

    def arrive() -> None:
        cluster.jobtracker.submit_job(_urgent_job())
        # The dummy scheduler's trigger semantics: while the urgent job
        # runs, preempted background work may not re-enter the freed
        # slots (otherwise a killed victim races the urgent job's setup
        # task for them and the primitives are not comparable).
        scheduler.freeze("background")
        candidates = collect_candidates(cluster, protect_jobs={"urgent"})
        for victim in policy.choose(candidates, VICTIMS):
            try:
                primitive.preempt(victim.tip)
                victims.append(victim.tip)
            except NotPreemptibleError:  # pragma: no cover - defensive
                continue

    cluster.sim.schedule(ARRIVAL, arrive, label="faults.arrival")

    def restore(job) -> None:
        if job.spec.name == "urgent":
            scheduler.unfreeze("background")
            for tip in victims:
                try:
                    primitive.restore(tip)
                except NotPreemptibleError:
                    # The fault (e.g. the victim's node crashing while
                    # suspended) already forced a restart from scratch.
                    continue

    cluster.jobtracker.on_job_complete(restore)

    injector = FaultInjector(
        cluster, build_scenario(scenario, sorted(cluster.trackers))
    )
    injector.install()

    cluster.run_until_jobs_complete(timeout=14_400.0)
    urgent = cluster.job_by_name("urgent")
    finish = max(
        j.finish_time for j in cluster.jobtracker.jobs.values() if j.finish_time
    )
    by_cause = cluster.jobtracker.wasted.by_cause()
    return {
        "sojourn": urgent.sojourn_time,
        "makespan": finish - background.submit_time,
        "wasted": cluster.jobtracker.wasted.total(),
        # The share caused by the preemption mechanism itself, as
        # opposed to fault damage and speculation losers: the cost a
        # primitive *chooses* to pay.
        "wasted_preemption": by_cause.get(PREEMPTION_KILL, 0.0),
    }


def run_faults_study(
    runs: int = 3,
    base_seed: int = 7000,
    scenarios: Optional[List[str]] = None,
    primitives: Optional[List[str]] = None,
    workers: int = 1,
) -> ExperimentReport:
    """Makespan and wasted work per fault scenario x preemption primitive.

    The (scenario x primitive x repetition) grid shards across
    ``workers`` processes; every cell's seed depends only on its
    repetition index, so the numbers are identical for any worker
    count.
    """
    chosen_scenarios = scenarios or list(DEFAULT_SCENARIOS)
    chosen_primitives = primitives or list(DEFAULT_PRIMITIVES)
    metrics: Dict[str, Dict[str, Dict[str, List[float]]]] = {
        s: {
            p: {"sojourn": [], "makespan": [], "wasted": [],
                "wasted_preemption": []}
            for p in chosen_primitives
        }
        for s in chosen_scenarios
    }
    coords = [
        (scenario, primitive, i)
        for scenario in chosen_scenarios
        for primitive in chosen_primitives
        for i in range(runs)
    ]
    cells = [
        Cell.make(
            "repro.experiments.faults_study",
            "_run_once",
            scenario=scenario,
            primitive_name=primitive,
            seed=base_seed + i,
        )
        for scenario, primitive, i in coords
    ]
    for (scenario, primitive, _), out in zip(
        coords, run_cells(cells, workers=workers)
    ):
        for key, value in out.items():
            metrics[scenario][primitive][key].append(value)

    report = ExperimentReport(
        experiment_id="faults",
        title="preemption primitives under injected faults",
        paper_expectation=(
            "suspend keeps wasted work near the fault-induced floor in every "
            "scenario (kill adds preemption waste on top); wait avoids waste "
            "but pays with the urgent job's sojourn"
        ),
    )
    for scenario in chosen_scenarios:
        series = Series(
            name=f"faults-{scenario}",
            x_label="primitive index",
            y_label="seconds",
            x_values=list(range(len(chosen_primitives))),
        )
        for key, label in (
            ("sojourn", "urgent sojourn (s)"),
            ("makespan", "makespan (s)"),
            ("wasted", "wasted work (s)"),
        ):
            series.add_curve(
                label,
                [
                    summarize(metrics[scenario][p][key]).mean
                    for p in chosen_primitives
                ],
            )
        report.add_series(series)
    for index, primitive in enumerate(chosen_primitives):
        report.add_note(f"primitive {index}: {primitive}")
    for scenario in chosen_scenarios:
        cells = metrics[scenario]
        if "kill" in cells and "suspend" in cells:
            kill_waste = summarize(cells["kill"]["wasted"]).mean
            susp_waste = summarize(cells["suspend"]["wasted"]).mean
            report.add_note(
                f"{scenario}: wasted work kill {kill_waste:.0f}s vs "
                f"suspend {susp_waste:.0f}s"
            )
    report.extras["metrics"] = metrics
    report.extras["scenarios"] = chosen_scenarios
    report.extras["primitives"] = chosen_primitives
    return report
