"""E5: the Natjam comparison.

"We note that the authors of Natjam measured an overhead of around 7%
in terms of makespan, in similar experimental settings as ours.  Our
findings suggest that the overhead in our case is negligible."

This experiment runs the light-task microbenchmark with the Natjam-
style checkpointing primitive and with the OS-assisted primitive, and
reports each one's makespan overhead relative to ``wait`` (the
no-redundant-work floor).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import params as P
from repro.experiments.harness import TwoJobHarness
from repro.experiments.report import ExperimentReport
from repro.metrics.series import Series


def run_natjam_overhead(
    runs: int = P.PAPER_RUNS,
    progress_points: Optional[List[float]] = None,
    base_seed: int = 4000,
) -> ExperimentReport:
    """Makespan overhead of checkpointing vs OS-assisted suspension."""
    points = progress_points or [0.25, 0.5, 0.75]

    overhead_natjam: List[float] = []
    overhead_suspend: List[float] = []
    sojourn_natjam: List[float] = []
    sojourn_suspend: List[float] = []
    for r in points:
        shared = dict(progress_at_launch=r, runs=runs, base_seed=base_seed)
        wait = TwoJobHarness(primitive="wait", **shared).run()
        susp = TwoJobHarness(primitive="suspend", **shared).run()
        natjam = TwoJobHarness(primitive="natjam", **shared).run()
        overhead_suspend.append(
            100.0 * (susp.makespan.mean - wait.makespan.mean) / wait.makespan.mean
        )
        overhead_natjam.append(
            100.0 * (natjam.makespan.mean - wait.makespan.mean) / wait.makespan.mean
        )
        sojourn_suspend.append(susp.sojourn_th.mean)
        sojourn_natjam.append(natjam.sojourn_th.mean)

    series = Series(
        name="natjam-makespan-overhead",
        x_label="tl progress at launch of th (%)",
        y_label="makespan overhead vs wait (%)",
        x_values=[p * 100 for p in points],
    )
    series.add_curve("suspend (OS-assisted)", overhead_suspend)
    series.add_curve("natjam (checkpointing)", overhead_natjam)

    sojourn = Series(
        name="natjam-sojourn",
        x_label="tl progress at launch of th (%)",
        y_label="sojourn time th (s)",
        x_values=[p * 100 for p in points],
    )
    sojourn.add_curve("suspend (OS-assisted)", sojourn_suspend)
    sojourn.add_curve("natjam (checkpointing)", sojourn_natjam)

    report = ExperimentReport(
        experiment_id="natjam",
        title="checkpointing (Natjam-style) vs OS-assisted suspension",
        paper_expectation=(
            "Natjam-style preemption costs ~7% makespan in this setting; "
            "the OS-assisted primitive's overhead is negligible"
        ),
    )
    report.add_series(series)
    report.add_series(sojourn)
    mean_natjam = sum(overhead_natjam) / len(overhead_natjam)
    mean_suspend = sum(overhead_suspend) / len(overhead_suspend)
    report.add_note(
        f"mean makespan overhead vs wait: natjam {mean_natjam:.1f}%, "
        f"suspend {mean_suspend:.1f}%"
    )
    report.extras["mean_overhead_natjam_pct"] = mean_natjam
    report.extras["mean_overhead_suspend_pct"] = mean_suspend
    return report
