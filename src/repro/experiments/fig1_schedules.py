"""Figure 1: task execution schedules.

The paper's Figure 1 sketches how tl and th share the slot under the
three primitives.  This experiment runs one traced simulation per
primitive at r=50% and renders the actual schedules as ASCII Gantt
charts -- the same picture, regenerated from the mechanism instead of
drawn by hand.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import params as P
from repro.experiments.harness import TwoJobHarness
from repro.experiments.report import ExperimentReport
from repro.metrics.timeline import extract_timeline, render_gantt


def _short_name(attempt_id: str) -> str:
    """attempt_task_0001_m_000000_0 -> readable label."""
    parts = attempt_id.split("_")
    if len(parts) >= 5:
        job, role, attempt_no = parts[2], parts[3], parts[-1]
        return f"job{job}-{role}{int(parts[4])}-a{attempt_no}"
    return attempt_id


def run_fig1(
    progress_at_launch: float = 0.5, base_seed: int = 500, **_ignored
) -> ExperimentReport:
    """Render the execution schedule of each primitive at r=50%."""
    report = ExperimentReport(
        experiment_id="fig1",
        title="task execution schedules (wait / kill / suspend)",
        paper_expectation=(
            "wait: th queues behind tl; kill: tl restarts from scratch "
            "after th; suspend: tl pauses (dotted) and continues where it "
            "stopped"
        ),
    )
    charts: Dict[str, str] = {}
    for primitive in ("wait", "kill", "suspend"):
        harness = TwoJobHarness(
            primitive=primitive,
            progress_at_launch=progress_at_launch,
            runs=1,
            base_seed=base_seed,
            keep_traces=True,
        )
        result = harness.run_once(base_seed)
        cluster = result.trace_cluster
        segments = [
            s
            for s in extract_timeline(cluster.sim.trace_log)
            if "_m_" in s.task  # work attempts only (skip setup/cleanup)
        ]
        for segment in segments:
            segment.task = _short_name(segment.task)
        chart = render_gantt(segments)
        charts[primitive] = chart
        report.add_note(
            f"[{primitive}] th sojourn {result.sojourn_th:.1f}s, "
            f"makespan {result.makespan:.1f}s"
        )
    body = "\n\n".join(
        f"--- {name} ---\n{chart}" for name, chart in charts.items()
    )
    report.extras["charts"] = charts
    report.extras["rendered"] = body
    report.add_note("schedules:\n" + body)
    return report
