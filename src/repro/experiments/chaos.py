"""Deterministic chaos harness for supervised sweeps.

The supervisor (:mod:`repro.experiments.supervisor`) claims that a
sweep whose workers are killed, hung or fed garbage still produces the
*byte-identical* result list a clean serial run produces.  This module
makes that claim testable: a :class:`ChaosPlan` is a seeded, fully
deterministic schedule of worker-level faults keyed on ``(cell_key,
attempt)`` pairs -- the same plan always injects the same faults at
the same cell boundaries, no matter which worker picks the cell up or
when.

Fault kinds (all injected *inside the worker process*, so the parent
supervisor only ever sees their symptoms):

``kill``
    The worker SIGKILLs itself at the cell boundary, before any work
    happens -- a segfault/OOM stand-in.
``kill-mid``
    A timer thread SIGKILLs the worker ``delay`` wall seconds after
    the cell starts -- lands mid-cell, exercising the mid-cell
    snapshot/resume path when one exists.
``hang``
    The worker sleeps ``hang_seconds`` at the cell boundary instead of
    working; its heartbeat thread keeps pinging, so only the per-cell
    wall-clock timeout can catch it.
``corrupt``
    The worker computes the cell *correctly* but garbles the pickled
    result payload on the wire; the supervisor's payload digest check
    rejects it and retries.

Faults never touch the simulation itself -- cells are pure functions
of their params, every injected failure is retried from the cell's
coordinates (or its mid-cell snapshot), and the differential suite
pins chaos-run == clean-run equality down to TraceLog and sketch
digests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: fault kinds a plan may carry, in the order the seeded builder
#: cycles through them
FAULT_KINDS = ("kill", "hang", "corrupt", "kill-mid")

#: fault kinds that end with the worker process dead
LETHAL_KINDS = frozenset({"kill", "kill-mid"})


@dataclass(frozen=True)
class ChaosFault:
    """One planned fault: what happens, and (for ``kill-mid``) when."""

    kind: str
    delay: float = 0.0  # wall seconds after cell start (kill-mid only)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown chaos fault kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.delay < 0:
            raise ConfigurationError("chaos fault delay must be >= 0")


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic schedule of faults for one sweep.

    ``faults`` maps ``(cell_key, attempt)`` to the fault injected when
    that attempt of that cell starts; attempts that are not in the map
    run clean.  The plan is immutable and picklable -- every worker
    process carries the same copy, so which worker runs a cell cannot
    change what happens to it.
    """

    faults: Tuple[Tuple[Tuple[str, int], ChaosFault], ...] = ()
    #: how long a ``hang`` fault sleeps; must exceed the supervisor's
    #: cell timeout for the hang to be observable as one
    hang_seconds: float = 3600.0

    def __post_init__(self):
        seen = set()
        for key, _fault in self.faults:
            if key in seen:
                raise ConfigurationError(
                    f"chaos plan repeats fault key {key!r}"
                )
            seen.add(key)

    @property
    def _index(self) -> Dict[Tuple[str, int], ChaosFault]:
        return dict(self.faults)

    def fault_for(self, cell_key: str, attempt: int) -> Optional[ChaosFault]:
        """The fault planned for this attempt of this cell, if any."""
        return self._index.get((cell_key, attempt))

    def requires_timeout(self) -> bool:
        """True when the plan hangs a worker (and therefore needs a
        per-cell wall-clock timeout to make progress)."""
        return any(f.kind == "hang" for _k, f in self.faults)

    def counts(self) -> Dict[str, int]:
        """Fault tally by kind (for manifests and smoke reports)."""
        out: Dict[str, int] = {}
        for _key, fault in self.faults:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return out

    def describe(self) -> str:
        tally = self.counts()
        if not tally:
            return "chaos plan: empty"
        inner = ", ".join(f"{k}={tally[k]}" for k in sorted(tally))
        return f"chaos plan: {inner}"


def make_plan(
    faults: Dict[Tuple[str, int], ChaosFault],
    hang_seconds: float = 3600.0,
) -> ChaosPlan:
    """Build a plan from an explicit ``(cell_key, attempt) -> fault``
    mapping (the tests' precision tool)."""
    ordered = tuple(sorted(faults.items()))
    return ChaosPlan(faults=ordered, hang_seconds=hang_seconds)


def seeded_plan(
    cell_keys: Iterable[str],
    seed: int,
    kinds: Sequence[str] = ("kill", "hang", "corrupt"),
    rate: float = 0.5,
    max_faulted_attempts: int = 1,
    hang_seconds: float = 3600.0,
    kill_mid_delay: float = 0.5,
) -> ChaosPlan:
    """A reproducible plan over a sweep's cells.

    Each cell draws from its own :class:`random.Random` seeded by
    ``(seed, cell_key)``, so the plan depends only on the seed and the
    cell's identity -- never on cell order, worker count, or wall
    time.  With probability ``rate`` a cell is faulted; the fault kind
    cycles deterministically through ``kinds`` and applies to attempts
    ``0..max_faulted_attempts-1`` (keep ``max_faulted_attempts`` at or
    below the supervisor's retry cap or the cell quarantines -- which
    is sometimes exactly the point).
    """
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"chaos rate must be in [0, 1], got {rate}")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown chaos fault kind {kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
    faults: Dict[Tuple[str, int], ChaosFault] = {}
    for cell_key in sorted(set(cell_keys)):
        rng = random.Random(f"{seed}:chaos:{cell_key}")
        if rng.random() >= rate:
            continue
        kind = kinds[rng.randrange(len(kinds))]
        for attempt in range(max_faulted_attempts):
            faults[(cell_key, attempt)] = ChaosFault(
                kind=kind,
                delay=kill_mid_delay if kind == "kill-mid" else 0.0,
            )
    return make_plan(faults, hang_seconds=hang_seconds)


def corrupt_payload(payload: bytes) -> bytes:
    """Deterministically garble a pickled result payload.

    Flips one byte near the middle and truncates the tail, so both the
    digest check and (if that were ever skipped) the unpickle itself
    fail loudly rather than yielding a plausible wrong value.
    """
    if not payload:
        return b"\xff"
    mid = len(payload) // 2
    flipped = bytes([payload[mid] ^ 0xFF])
    return payload[:mid] + flipped + payload[mid + 1:mid + 1 + max(
        0, len(payload) // 4
    )]
