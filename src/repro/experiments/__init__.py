"""Experiment harness: one module per figure of the paper.

========== ===================================== =============================
Experiment Paper artefact                        Module
========== ===================================== =============================
E1         Figure 1 (execution schedules)        :mod:`repro.experiments.fig1_schedules`
E2a/E2b    Figure 2 (baseline sojourn/makespan)  :mod:`repro.experiments.fig2_baseline`
E3a/E3b    Figure 3 (worst-case, memory-hungry)  :mod:`repro.experiments.fig3_worstcase`
E4         Figure 4 (paged bytes and overheads)  :mod:`repro.experiments.fig4_memory_sweep`
E5         Natjam ~7% makespan overhead claim    :mod:`repro.experiments.natjam_overhead`
E6         Eviction-policy ablation (Section V)  :mod:`repro.experiments.eviction_study`
E7         HFSP + suspend preliminary result     :mod:`repro.experiments.hfsp_study`
========== ===================================== =============================

All experiments build on :class:`~repro.experiments.harness.TwoJobHarness`
(the paper's Section IV-A microbenchmark) or on the multi-job cluster
builders, with calibration constants in
:mod:`repro.experiments.params`.
"""

from repro.experiments.harness import TwoJobHarness, TwoJobResult
from repro.experiments.params import (
    PAPER_PROGRESS_POINTS,
    paper_hadoop_config,
    paper_node_config,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = [
    "TwoJobHarness",
    "TwoJobResult",
    "paper_node_config",
    "paper_hadoop_config",
    "PAPER_PROGRESS_POINTS",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
]
