"""Calibration constants for the paper's experimental setup.

Absolute seconds in the paper come from the authors' physical testbed
(4 GB nodes, one disk, Hadoop 1).  Per DESIGN.md Section 5, four knobs
are calibrated so that the *baseline wait curve* of Figure 2a lands on
the paper's endpoints (~150 s at r=10%, ~95 s at r=90%), and then held
fixed for every other experiment:

* ``PARSE_RATE`` -- synthetic-mapper parse speed; sets the ~73 s task
  body that dominates every curve;
* ``HadoopConfig`` latency fields (heartbeats, JVM start-up, job
  setup/cleanup) -- set the ~8 s per-job framework overhead;
* disk bandwidths -- set the swap-out/swap-in costs of Figures 3-4;
* ``os_reserved_bytes`` -- positions the free-RAM threshold where
  Figure 4's paged-bytes curve leaves zero.

Everything else (who wins, crossovers, the super-linear swap growth)
is emergent from the mechanisms.
"""

from __future__ import annotations

from repro.hadoop.config import HadoopConfig
from repro.osmodel.config import NodeConfig
from repro.units import GB, MB

#: The x-axis of Figures 2 and 3: "tl progress at launch of th (%)".
PAPER_PROGRESS_POINTS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]

#: The x-axis of Figure 4: memory allocated by th.
PAPER_MEMORY_POINTS = [0, int(0.625 * GB), int(1.25 * GB), int(1.875 * GB), int(2.5 * GB)]

#: Figure 4's tl footprint ("tl allocates 2.5 GB of memory").
FIG4_TL_FOOTPRINT = int(2.5 * GB)

#: Worst-case footprint of Figure 3 ("2 GB in our case").
FIG3_FOOTPRINT = 2 * GB

#: Synthetic-mapper parse rate: 512 MB / 7 MBps ~= 73 s task body.
PARSE_RATE = 7 * MB

#: Input block size (Section IV-A).
INPUT_BYTES = 512 * MB

#: Number of averaged runs per data point (Section IV-C: 20).
PAPER_RUNS = 20


def paper_node_config() -> NodeConfig:
    """The testbed node: 4 GB RAM, one disk, swap on it, swappiness 0.

    ``os_reserved_bytes`` covers the OS services plus the TaskTracker
    and DataNode daemons ("the rest of the memory is needed by the
    Hadoop framework and by the operating system services").
    """
    return NodeConfig(
        ram_bytes=4 * GB,
        os_reserved_bytes=int(0.70 * GB),
        swap_bytes=8 * GB,
        cores=2,
        disk_read_bw=130 * MB,
        disk_write_bw=120 * MB,
        disk_seek_time=0.004,
        swap_cluster_bytes=2 * MB,
        mem_touch_bw=1200 * MB,
        mem_read_bw=2400 * MB,
        swappiness=0,
        page_cache_min_bytes=64 * MB,
        lru_overshoot=0.35,
        lru_scan_leak=0.9,
        working_set_protect_bytes=384 * MB,
        direct_reclaim_fraction=0.45,
        fault_in_sync_fraction=0.55,
        alloc_chunk_bytes=128 * MB,
        sigtstp_handler_latency=0.15,
    )


def paper_hadoop_config() -> HadoopConfig:
    """Hadoop 1 with one map slot per node (tl and th contend for it)."""
    return HadoopConfig(
        heartbeat_interval=3.0,
        oob_heartbeat_latency=0.1,
        rpc_latency=0.05,
        map_slots=1,
        reduce_slots=1,
        jvm_startup_time=1.2,
        jvm_base_memory=160 * MB,
        task_finalize_time=0.3,
        task_cleanup_duration=2.0,
        job_setup_duration=1.0,
        job_cleanup_duration=1.0,
        run_job_setup_cleanup=True,
        child_heap_limit=3 * GB,
        task_time_jitter=0.03,
    )
