"""E6: eviction-policy ablation (Section V-A).

The paper separates the preemption *mechanism* from the eviction
*policy* and sketches the trade-off: suspending tasks closest to
completion keeps job sojourn times tight (Cho et al.), while
suspending tasks with the smallest memory footprint minimises paging
overheads.  This study runs a mixed background job (tasks of varying
progress and footprint), preempts victims for a high-priority arrival
under each policy, and reports the high-priority sojourn, the overall
makespan, and the bytes that hit swap.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NotPreemptibleError
from repro.experiments import params as P
from repro.experiments.report import ExperimentReport
from repro.hadoop.cluster import HadoopCluster
from repro.metrics.series import Series
from repro.metrics.stats import summarize
from repro.preemption.base import make_primitive
from repro.preemption.eviction import (
    ClosestToCompletionPolicy,
    FurthestFromCompletionPolicy,
    LargestMemoryPolicy,
    RandomPolicy,
    SmallestMemoryPolicy,
    collect_candidates,
)
from repro.schedulers.dummy import DummyScheduler
from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec


def _background_job() -> JobSpec:
    """Four tasks with distinct sizes and footprints, so progress and
    memory differ at preemption time.

    Footprints are chosen so that *no* swapping happens while the
    background job runs alone; only the urgent arrival (plus the
    policy's choice of victims) creates memory pressure, which is what
    lets the smallest- vs largest-memory policies separate.
    """
    tasks = []
    sizes = [384 * MB, 512 * MB, 640 * MB, 768 * MB]
    footprints = [256 * MB, 640 * MB, 1 * GB, int(1.4 * GB)]
    for i, (size, footprint) in enumerate(zip(sizes, footprints)):
        tasks.append(
            TaskSpec(
                kind=TaskKind.MAP,
                input_bytes=size,
                parse_rate=P.PARSE_RATE,
                footprint_bytes=footprint,
                profile=MemoryProfile.STATEFUL,
                name=f"bg-{i}",
            )
        )
    return JobSpec(name="background", tasks=tasks, priority=0)


def _urgent_job() -> JobSpec:
    """Two stateful high-priority tasks big enough to squeeze the
    suspended victims' memory."""
    tasks = [
        TaskSpec(
            kind=TaskKind.MAP,
            input_bytes=256 * MB,
            parse_rate=P.PARSE_RATE,
            footprint_bytes=int(1.25 * GB),
            profile=MemoryProfile.STATEFUL,
            name=f"hi-{i}",
        )
        for i in range(2)
    ]
    return JobSpec(name="urgent", tasks=tasks, priority=10)


def _policies(cluster: HadoopCluster) -> Dict[str, object]:
    return {
        "closest-to-completion": ClosestToCompletionPolicy(),
        "furthest-from-completion": FurthestFromCompletionPolicy(),
        "smallest-memory": SmallestMemoryPolicy(),
        "largest-memory": LargestMemoryPolicy(),
        "random": RandomPolicy(cluster.sim.rng.stream("eviction")),
    }


def _run_once(policy_name: str, seed: int, arrival: float) -> Dict[str, float]:
    cluster = HadoopCluster(
        num_nodes=2,
        node_config=P.paper_node_config(),
        hadoop_config=P.paper_hadoop_config().replace(map_slots=2),
        scheduler=DummyScheduler(),
        seed=seed,
        trace=False,
    )
    primitive = make_primitive("suspend", cluster)
    policy = _policies(cluster)[policy_name]
    background = cluster.submit_job(_background_job())
    victims: List = []

    def arrive() -> None:
        cluster.jobtracker.submit_job(_urgent_job())
        candidates = collect_candidates(cluster, protect_jobs={"urgent"})
        for victim in policy.choose(candidates, 2):
            try:
                primitive.preempt(victim.tip)
                victims.append(victim.tip)
            except NotPreemptibleError:
                continue

    cluster.sim.schedule(arrival, arrive, label="eviction.arrival")

    def restore(job) -> None:
        if job.spec.name == "urgent":
            for tip in victims:
                primitive.restore(tip)

    cluster.jobtracker.on_job_complete(restore)
    cluster.run_until_jobs_complete(timeout=14_400.0)

    urgent = cluster.job_by_name("urgent")
    finish = max(
        j.finish_time for j in cluster.jobtracker.jobs.values() if j.finish_time
    )
    return {
        "sojourn": urgent.sojourn_time,
        "makespan": finish - background.submit_time,
        "swapped_mb": cluster.total_swapped_out_bytes() / MB,
    }


def run_eviction_study(
    runs: int = 5,
    arrival: float = 30.0,
    base_seed: int = 5000,
    policies: Optional[List[str]] = None,
) -> ExperimentReport:
    """Compare eviction policies under the suspend primitive."""
    chosen = policies or [
        "closest-to-completion",
        "furthest-from-completion",
        "smallest-memory",
        "largest-memory",
        "random",
    ]
    metrics: Dict[str, Dict[str, List[float]]] = {
        p: {"sojourn": [], "makespan": [], "swapped_mb": []} for p in chosen
    }
    for policy_name in chosen:
        for i in range(runs):
            out = _run_once(policy_name, base_seed + i, arrival)
            for key, value in out.items():
                metrics[policy_name][key].append(value)

    series = Series(
        name="eviction-policies",
        x_label="policy index",
        y_label="seconds / MB",
        x_values=list(range(len(chosen))),
    )
    series.add_curve(
        "urgent sojourn (s)",
        [summarize(metrics[p]["sojourn"]).mean for p in chosen],
    )
    series.add_curve(
        "makespan (s)", [summarize(metrics[p]["makespan"]).mean for p in chosen]
    )
    series.add_curve(
        "swapped (MB)",
        [summarize(metrics[p]["swapped_mb"]).mean for p in chosen],
    )

    report = ExperimentReport(
        experiment_id="eviction",
        title="eviction-policy study under the suspend primitive",
        paper_expectation=(
            "smallest-memory minimises swap traffic (paper's suggestion); "
            "closest-to-completion keeps sojourn competitive (Cho et al.)"
        ),
    )
    report.add_series(series)
    for index, policy_name in enumerate(chosen):
        report.add_note(f"policy {index}: {policy_name}")
    smallest = summarize(metrics["smallest-memory"]["swapped_mb"]).mean
    largest = summarize(metrics["largest-memory"]["swapped_mb"]).mean
    report.add_note(
        f"swap traffic: smallest-memory {smallest:.0f} MB vs "
        f"largest-memory {largest:.0f} MB"
    )
    report.extras["metrics"] = metrics
    report.extras["policies"] = chosen
    return report
