"""Figure 3: worst-case experiments with memory-hungry tasks.

"Both tl and th allocate a large amount of memory (2 GB in our case
...).  This value makes sure that, when running a single task the
system does not have to recur to swap; conversely, when the two tasks
are present in the system at the same time, one of them is forced to
page out memory. ... While our preemption primitive still outperforms
both alternatives with respect to both metrics, it is possible to
notice that the overheads related to paging are visible: with respect
to the sojourn time, the kill primitive achieves a slightly lower
value; similarly, the wait primitive achieves slightly smaller
makespan."

The sweep itself is Figure 2's with ``heavy=True``; this module exists
so the registry, CLI and benchmarks address it by its own id.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import params as P
from repro.experiments.fig2_baseline import run_fig2
from repro.experiments.report import ExperimentReport


def run_fig3(
    runs: int = P.PAPER_RUNS,
    progress_points: Optional[List[float]] = None,
    base_seed: int = 2000,
    workers: int = 1,
) -> ExperimentReport:
    """Regenerate Figure 3 (memory-hungry variant of the sweep)."""
    return run_fig2(
        runs=runs,
        progress_points=progress_points,
        base_seed=base_seed,
        heavy=True,
        workers=workers,
    )
