"""Memory-oversubscribed SWIM replay (the ``memscale`` experiment).

The paper's Section III-A safety constraint -- the aggregate memory of
running + suspended tasks must fit in RAM + swap -- is precisely the
regime the 25/100/400-tracker replays never exercised: their nodes
carry the paper's generous 8 GB swap and mostly stateless tasks.  This
study replays the SWIM FACEBOOK mix with *memory-hungry stateful
reduces* (``memory-heavy`` in :data:`repro.workloads.swim.MIXES`) on
**swap-constrained** nodes, and compares four management regimes:

* **kill** -- preempt by SIGKILL; no memory risk, maximal rework;
* **wait** -- never preempt; no memory risk, maximal queueing;
* **suspend-ungated** -- raw SIGTSTP with no admission control: the
  historical behaviour with the static capacity check switched off.
  Stacked suspensions oversubscribe RAM + swap and the OOM killer
  fires (or the swap device exhausts) -- the failure mode the paper's
  constraint warns about;
* **suspend-gated** -- SIGTSTP behind the
  :class:`~repro.preemption.admission.SuspendAdmissionGate`: each
  suspension is admitted only while the victim node's live headroom
  (free RAM + droppable cache + free swap) covers the victim's
  resident set plus the configured incoming-task reserve, with denied
  suspensions falling back to waiting.  Victims are ranked by the
  resident-footprint x progress cost model
  (:class:`~repro.preemption.eviction.SuspendCostPolicy`).

Per cell the study reports sojourn times, wasted task-seconds and
network bytes, swap traffic, OOM kills and admission decisions.  The
grid shards over worker processes exactly like ``scale``/``shuffle``:
cells derive their seeds from coordinates, so ``--workers N`` is
byte-identical to serial.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments import params as P
from repro.experiments.drive import (
    drive_to_completion,
    find_counter,
    install_counter,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Cell, derive_seed, run_cells
from repro.experiments.scale_study import metrics_digest
from repro.experiments.sketches import cell_sketch, merge_sketches
from repro.hadoop.cluster import HadoopCluster
from repro.metrics.series import Series
from repro.metrics.stats import percentile, summarize
from repro.netmodel.config import NetConfig
from repro.preemption.admission import AdmissionConfig
from repro.preemption.base import make_primitive
from repro.preemption.eviction import SuspendCostPolicy
from repro.schedulers.hfsp import HfspScheduler
from repro.units import GB, MB
from repro.workloads.swim import MIXES, ArrivalSpec, SwimGenerator

DEFAULT_CLUSTER_SIZES = (25, 100, 400)

#: the four management regimes compared per cell
MODES = ("kill", "wait", "suspend-gated", "suspend-ungated")

#: offered load per tracker (one arrival every LOAD_SECONDS / trackers
#: seconds); hotter than the shuffle study so slot pressure forces
#: preemption decisions while stateful task bodies hold their
#: footprints
LOAD_SECONDS = 100.0

#: hosts per rack of the simulated pod (shuffle-study convention)
HOSTS_PER_RACK = 5

#: swap per node: deliberately far below the paper's 8 GB -- a single
#: suspended stateful body overflows the device, so Section III-A's
#: constraint binds instead of being vacuous.  The running set alone
#: (2 map slots + 1 reduce slot at the memory-heavy class maxima)
#: still fits RAM + swap, so kill/wait replays never OOM.
SWAP_BYTES = 384 * MB

#: the memory-heavy mix's largest map/reduce footprints (swim.py);
#: admission arithmetic is derived from them
WORST_MAP_FOOTPRINT = 640 * MB
WORST_REDUCE_FOOTPRINT = 1408 * MB

#: admission reserve: the worst-case demand of one incoming task under
#: the memory-heavy mix (largest reduce footprint plus the execution
#: engine), so an admitted suspension always leaves room for the
#: high-priority arrival that motivated it
RESERVE_BYTES = WORST_REDUCE_FOOTPRINT + 192 * MB

#: per-tracker suspension cap for the study: generous on purpose, so
#: *ungated* SIGTSTP can stack deep enough to demonstrate the Section
#: III-A violation (the gate's byte budget, not the count cap, is what
#: keeps the gated regime safe)
MAX_SUSPENDED_PER_TRACKER = 8


def _suspended_budget(node_config, hadoop_config) -> int:
    """The standing per-node budget for suspended bytes.

    A node stays OOM-free at any future instant iff its suspended
    total never exceeds RAM + swap minus the worst-case *running* set
    the scheduler may later pack onto it (every slot filled with the
    mix's largest footprint plus the execution engine) minus the page
    cache floor the reclaimer will not cross.  This is the piece of
    Section III-A the instantaneous supply check cannot see: it
    guarantees the *next* task fits, while launches after it keep
    arriving slot by slot.
    """
    jvm = hadoop_config.jvm_base_memory
    worst_running = (
        hadoop_config.map_slots * (WORST_MAP_FOOTPRINT + jvm)
        + hadoop_config.reduce_slots * (WORST_REDUCE_FOOTPRINT + jvm)
    )
    return max(
        0,
        node_config.usable_ram_bytes
        + node_config.swap_bytes
        - worst_running
        - node_config.page_cache_min_bytes
        - 64 * MB,  # safety margin for alloc chunking and page rounding
    )

METRIC_KEYS = (
    "mean_sojourn",
    "p95_sojourn",
    "small_mean_sojourn",
    "makespan",
    "wasted",
    "wasted_net_mb",
    "swap_out_mb",
    "peak_suspended_mb",
    "oom_kills",
    "oom_raises",
    "suspend_denials",
    "preemptions",
    "jobs_failed",
)


def _make_scheduler(
    mode: str, reserve_bytes: int, node_config, hadoop_config
) -> HfspScheduler:
    if mode == "wait":
        return HfspScheduler(primitive_factory=None)
    if mode == "kill":
        return HfspScheduler(
            primitive_factory=functools.partial(make_primitive, "kill")
        )
    # Both suspend regimes run the raw primitive (the static capacity
    # check would deny *every* suspension against this study's small
    # swap device); they differ only in the admission gate.
    factory = functools.partial(
        make_primitive, "suspend", enforce_swap_capacity=False
    )
    if mode == "suspend-ungated":
        return HfspScheduler(
            primitive_factory=factory, eviction_policy=SuspendCostPolicy()
        )
    if mode == "suspend-gated":
        return HfspScheduler(
            primitive_factory=factory,
            admission_config=AdmissionConfig(
                reserve_bytes=reserve_bytes,
                fallback=("wait",),
                suspended_budget_bytes=_suspended_budget(
                    node_config, hadoop_config
                ),
            ),
            eviction_policy=SuspendCostPolicy(),
        )
    raise ConfigurationError(
        f"unknown memscale mode {mode!r}; known: {', '.join(MODES)}"
    )


def _run_once(
    mode: str,
    trackers: int,
    num_jobs: int,
    seed: int,
    swap_bytes: int = SWAP_BYTES,
    reserve_bytes: int = RESERVE_BYTES,
    trace: bool = False,
    collector=None,
    profile: bool = False,
    heartbeat_phases: int = 0,
    batch_heartbeats: bool = False,
) -> Dict[str, float]:
    """One replay cell: pure function of its arguments.

    ``trace`` / ``collector`` / ``profile`` are the telemetry hooks,
    ``heartbeat_phases`` / ``batch_heartbeats`` the batched-dispatch
    knobs (same contract as
    :func:`repro.experiments.scale_study._run_once`):
    observation only, pinned by the silence differential suite.
    """
    cluster, finished = _build_run(
        mode, trackers, num_jobs, seed, swap_bytes=swap_bytes,
        reserve_bytes=reserve_bytes, trace=trace, collector=collector,
        profile=profile, heartbeat_phases=heartbeat_phases,
        batch_heartbeats=batch_heartbeats,
    )
    drive_to_completion(
        cluster, finished, num_jobs,
        what=f"memscale cell {mode}/{trackers}",
    )
    return _collect_run(
        cluster, mode, trackers, num_jobs, finished, trace, profile
    )


def _build_run(
    mode: str,
    trackers: int,
    num_jobs: int,
    seed: int,
    swap_bytes: int = SWAP_BYTES,
    reserve_bytes: int = RESERVE_BYTES,
    trace: bool = False,
    collector=None,
    profile: bool = False,
    heartbeat_phases: int = 0,
    batch_heartbeats: bool = False,
):
    """Build one fully loaded (but not yet driven) memscale cell;
    returns ``(cluster, completion_counter)`` (see
    :func:`repro.experiments.scale_study._build_run`)."""
    node_config = P.paper_node_config().replace(swap_bytes=swap_bytes)
    hadoop_config = P.paper_hadoop_config().replace(
        map_slots=2,
        reduce_slots=1,
        max_suspended_per_tracker=MAX_SUSPENDED_PER_TRACKER,
        heartbeat_phases=heartbeat_phases,
        batch_heartbeats=batch_heartbeats,
    )
    scheduler = _make_scheduler(mode, reserve_bytes, node_config, hadoop_config)
    racks = max(1, (trackers + HOSTS_PER_RACK - 1) // HOSTS_PER_RACK)
    cluster = HadoopCluster(
        num_nodes=trackers,
        node_config=node_config,
        hadoop_config=hadoop_config,
        scheduler=scheduler,
        seed=seed,
        trace=trace,
        racks=racks,
        net_config=NetConfig.oversubscribed(
            hosts_per_rack=HOSTS_PER_RACK, oversubscription=2.0
        ),
        profile=profile,
    )
    scheduler.attach_cluster(cluster)
    if collector is not None:
        collector.attach(cluster.sim.trace_log)

    generator = SwimGenerator(
        cluster.sim.rng.stream("swim"),
        classes=MIXES["memory-heavy"],
        arrival=ArrivalSpec(
            kind="poisson", mean_interarrival=LOAD_SECONDS / trackers
        ),
    )
    specs = generator.generate_workload(num_jobs)
    for spec in specs:
        cluster.submit_job(spec)
    return cluster, install_counter(cluster)


def _finish_run(cluster, meta: Dict) -> Dict[str, float]:
    """Drive a (restored) memscale cell to completion and collect."""
    finished = find_counter(cluster)
    drive_to_completion(
        cluster, finished, int(meta["num_jobs"]),
        what=f"memscale cell {meta['mode']}/{meta['trackers']}",
    )
    return _collect_run(
        cluster, meta["mode"], int(meta["trackers"]),
        int(meta["num_jobs"]), finished,
        bool(meta.get("trace")), bool(meta.get("profile")),
    )


def _collect_run(
    cluster,
    mode: str,
    trackers: int,
    num_jobs: int,
    finished,
    trace: bool,
    profile: bool,
) -> Dict[str, float]:
    """The metric tail of :func:`_run_once`, recomputable after a
    checkpoint restore."""
    scheduler = cluster.scheduler
    jobs = list(cluster.jobtracker.jobs.values())
    small_names = {
        job.spec.name for job in jobs if len(job.spec.map_tasks) <= 3
    }
    sojourns = sorted(
        job.sojourn_time for job in jobs if job.sojourn_time is not None
    )
    if not sojourns:
        raise ConfigurationError(
            f"memscale cell {mode}/{trackers} drained its event queue "
            f"with 0/{num_jobs} jobs complete (scheduling deadlock?)"
        )
    small = [
        job.sojourn_time
        for job in jobs
        if job.spec.name in small_names and job.sojourn_time is not None
    ]
    finish = max(job.finish_time for job in jobs if job.finish_time is not None)
    failed = sum(1 for job in jobs if job.state.value == "FAILED")
    gate = scheduler.admission
    out = {
        "mean_sojourn": sum(sojourns) / len(sojourns),
        "p95_sojourn": percentile(sojourns, 95),
        "small_mean_sojourn": sum(small) / len(small) if small else 0.0,
        "makespan": finish,
        "wasted": cluster.jobtracker.wasted.total(),
        "wasted_net_mb": cluster.wasted_network_bytes() / MB,
        "swap_out_mb": cluster.total_swapped_out_bytes() / MB,
        # The heartbeat-reported view: the largest suspended total any
        # node ever carried, vs the swap the constraint allows it.
        "peak_suspended_mb": cluster.jobtracker.peak_suspended_bytes / MB,
        "oom_kills": float(
            sum(k.oom_kills for k in cluster.kernels.values())
        ),
        "oom_raises": float(
            sum(k.vmm.oom_events for k in cluster.kernels.values())
        ),
        "suspend_denials": float(gate.stats.denied if gate is not None else 0),
        "suspends_admitted": float(
            gate.stats.admitted if gate is not None else 0
        ),
        "preemptions": float(scheduler.preemptions),
        "jobs_failed": float(failed),
        "jobs_completed": float(finished.count),
        "events": float(cluster.sim.events_fired),
    }
    out["sketch"] = cell_sketch(f"{mode}/{trackers}/", sojourns, small, out)
    if trace:
        out["trace_digest"] = cluster.sim.trace_log.digest()
    if profile:
        from repro.telemetry.profiling import engine_stats

        out["engine"] = engine_stats(cluster.sim)
    return out


def _jobs_for(trackers: int, num_jobs: Optional[int]) -> int:
    if num_jobs is not None:
        return num_jobs
    return max(trackers, 10)


def run_memscale_study(
    runs: int = 1,
    base_seed: int = 12000,
    cluster_sizes: Optional[List[int]] = None,
    modes: Optional[List[str]] = None,
    num_jobs: Optional[int] = None,
    swap_bytes: int = SWAP_BYTES,
    reserve_bytes: int = RESERVE_BYTES,
    workers: int = 1,
) -> ExperimentReport:
    """Memory-heavy SWIM replay on swap-constrained nodes."""
    sizes = list(cluster_sizes or DEFAULT_CLUSTER_SIZES)
    chosen_modes = list(modes or MODES)
    if runs < 1:
        raise ConfigurationError("need at least one run")
    for mode in chosen_modes:
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown memscale mode {mode!r}; known: {', '.join(MODES)}"
            )

    cells: List[Cell] = []
    coords = []
    for size in sizes:
        for mode in chosen_modes:
            for rep in range(runs):
                coords.append((size, mode))
                cells.append(
                    Cell.make(
                        "repro.experiments.memscale_study",
                        "_run_once",
                        mode=mode,
                        trackers=size,
                        num_jobs=_jobs_for(size, num_jobs),
                        swap_bytes=swap_bytes,
                        reserve_bytes=reserve_bytes,
                        seed=derive_seed(
                            base_seed, "memscale", size, mode,
                            swap_bytes, reserve_bytes, rep,
                        ),
                    )
                )
    results = run_cells(cells, workers=workers)

    metrics: Dict = {
        size: {m: {k: [] for k in METRIC_KEYS} for m in chosen_modes}
        for size in sizes
    }
    for (size, mode), out in zip(coords, results):
        for key in METRIC_KEYS:
            metrics[size][mode][key].append(out[key])

    report = ExperimentReport(
        experiment_id="memscale",
        title=(
            "memory-oversubscribed SWIM replay "
            f"(memory-heavy mix, {swap_bytes / GB:.2g} GB swap/node)"
        ),
        paper_expectation=(
            "ungated suspension violates Section III-A under memory "
            "pressure -- swap exhausts and the OOM killer destroys work "
            "-- while admission-gated suspension keeps small-job "
            "sojourns competitive at zero OOM kills"
        ),
    )
    for key, y_label in (
        ("small_mean_sojourn", "small-job mean sojourn (s)"),
        ("wasted", "wasted work (s)"),
        ("swap_out_mb", "swap traffic (MB paged out)"),
        ("peak_suspended_mb", "peak per-node suspended (MB)"),
        ("oom_kills", "OOM kills"),
    ):
        series = Series(
            name=f"memscale-{key.replace('_', '-')}",
            x_label="trackers",
            y_label=y_label,
            x_values=[float(size) for size in sizes],
        )
        for mode in chosen_modes:
            series.add_curve(
                mode,
                [
                    summarize(metrics[size][mode][key]).mean
                    for size in sizes
                ],
            )
        report.add_series(series)
    flat = {
        f"{size}/{m}/{k}": tuple(metrics[size][m][k])
        for size in sizes
        for m in chosen_modes
        for k in METRIC_KEYS
    }
    report.add_note(
        f"nodes: {swap_bytes / GB:.2g} GB swap, admission reserve "
        f"{reserve_bytes / GB:.2g} GB, fallback ladder suspend->wait"
    )
    report.add_note(
        "memory pressure concentrates at small clusters: HFSP preempts "
        "only when no slot is free anywhere, and statistical "
        "multiplexing makes full saturation (hence suspend stacking) "
        "rarer per node as the cluster grows"
    )
    report.add_note(f"metrics digest: {metrics_digest(flat)}")
    sketch = merge_sketches(results)
    report.add_note(f"sketch digest: {sketch.digest()}")
    report.extras["metrics"] = metrics
    report.extras["digest"] = metrics_digest(flat)
    report.extras["sketch"] = sketch.to_dict()
    report.extras["sketch_digest"] = sketch.digest()
    report.extras["cluster_sizes"] = sizes
    report.extras["modes"] = chosen_modes
    report.extras["swap_bytes"] = swap_bytes
    report.extras["reserve_bytes"] = reserve_bytes
    return report
