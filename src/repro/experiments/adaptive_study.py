"""Advisor validation: choosing the primitive per victim (Section V-A).

"for freshly started tasks, it may be preferable to use the kill
primitive, and for tasks that are very close to completion it may be
better to simply wait for them to finish."

This study measures all three primitives across the progress axis and
checks the :class:`~repro.preemption.costs.PreemptionAdvisor` against
the simulated ground truth: at every point, the advisor's pick should
be (near-)optimal under a latency+makespan cost blend.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments import params as P
from repro.experiments.harness import TwoJobHarness
from repro.experiments.report import ExperimentReport
from repro.metrics.series import Series
from repro.preemption.costs import PreemptionAdvisor


def combined_cost(sojourn: float, makespan: float, latency_weight: float) -> float:
    """The blended objective a scheduler trades off (Section IV-B's two
    metrics, weighted)."""
    return latency_weight * sojourn + makespan


def run_adaptive_study(
    runs: int = 5,
    progress_points: Optional[List[float]] = None,
    latency_weight: float = 1.0,
    base_seed: int = 9000,
) -> ExperimentReport:
    """Measure each primitive across r; compare with the advisor."""
    points = progress_points or [0.02, 0.25, 0.5, 0.75, 0.98]
    advisor = PreemptionAdvisor(fresh_threshold=0.05, nearly_done_threshold=0.95)
    task_duration = P.INPUT_BYTES / P.PARSE_RATE

    per_primitive: Dict[str, List[float]] = {"wait": [], "kill": [], "suspend": []}
    advisor_picks: List[str] = []
    advisor_costs: List[float] = []
    best_costs: List[float] = []
    for r in points:
        costs: Dict[str, float] = {}
        for primitive in ("wait", "kill", "suspend"):
            result = TwoJobHarness(
                primitive=primitive,
                progress_at_launch=r,
                runs=runs,
                base_seed=base_seed,
            ).run()
            costs[primitive] = combined_cost(
                result.sojourn_th.mean, result.makespan.mean, latency_weight
            )
            per_primitive[primitive].append(costs[primitive])
        pick = advisor.recommend(r, task_duration).value
        advisor_picks.append(pick)
        advisor_costs.append(costs[pick])
        best_costs.append(min(costs.values()))

    series = Series(
        name="adaptive-costs",
        x_label="tl progress at launch of th (%)",
        y_label=f"{latency_weight}*sojourn + makespan (s)",
        x_values=[p * 100 for p in points],
    )
    for primitive, values in per_primitive.items():
        series.add_curve(primitive, values)
    series.add_curve("advisor pick", advisor_costs)

    report = ExperimentReport(
        experiment_id="adaptive",
        title="per-victim primitive selection (the Section V-A advisor)",
        paper_expectation=(
            "kill is competitive for freshly started victims, wait for "
            "nearly-done ones, suspend everywhere else; the advisor should "
            "track the per-point optimum"
        ),
    )
    report.add_series(series)
    regret = max(a - b for a, b in zip(advisor_costs, best_costs))
    report.add_note(
        "advisor picks: "
        + ", ".join(f"{p*100:.0f}%->{pick}" for p, pick in zip(points, advisor_picks))
    )
    report.add_note(f"worst-case advisor regret: {regret:.1f} s")
    report.extras["picks"] = advisor_picks
    report.extras["regret"] = regret
    report.extras["advisor_costs"] = advisor_costs
    report.extras["best_costs"] = best_costs
    return report
