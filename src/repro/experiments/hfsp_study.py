"""E7: the suspend primitive inside HFSP (conclusion's preliminary result).

"We have preliminary results showing that our preemption primitive
performs well in the context of HFSP, our size-based scheduler for
Hadoop."

A long job occupies the cluster; short jobs arrive while it runs.
HFSP (shortest-remaining-size-first) preempts the long job's tasks for
each arrival using wait, kill, or suspend, and the study reports the
short jobs' mean sojourn and the workload makespan per primitive --
the size-based analogue of Figures 2a/2b.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

from repro.experiments import params as P
from repro.experiments.report import ExperimentReport
from repro.hadoop.cluster import HadoopCluster
from repro.metrics.series import Series
from repro.metrics.stats import summarize
from repro.preemption.base import make_primitive
from repro.schedulers.hfsp import HfspScheduler
from repro.units import MB
from repro.workloads.jobspec import JobSpec, TaskKind, TaskSpec


def _long_job() -> JobSpec:
    tasks = [
        TaskSpec(
            kind=TaskKind.MAP,
            input_bytes=768 * MB,
            parse_rate=P.PARSE_RATE,
            name=f"long-{i}",
        )
        for i in range(2)
    ]
    return JobSpec(name="long", tasks=tasks)


def _short_job(index: int, offset: float) -> JobSpec:
    return JobSpec(
        name=f"short-{index}",
        tasks=[
            TaskSpec(
                kind=TaskKind.MAP,
                input_bytes=96 * MB,
                parse_rate=P.PARSE_RATE,
                name=f"short-{index}",
            )
        ],
        submit_offset=offset,
    )


def _run_once(
    primitive_name: str,
    seed: int,
    arrivals: List[float],
    admission=None,
    trace: bool = False,
) -> Dict[str, float]:
    """``admission``/``trace`` exist for the gated-vs-ungated
    differential tests and default to the historical behaviour."""
    if primitive_name == "wait":
        scheduler = HfspScheduler(primitive_factory=None)
    else:
        scheduler = HfspScheduler(
            primitive_factory=functools.partial(make_primitive, primitive_name),
            admission_config=admission,
        )
    cluster = HadoopCluster(
        num_nodes=1,
        node_config=P.paper_node_config(),
        hadoop_config=P.paper_hadoop_config().replace(map_slots=2),
        scheduler=scheduler,
        seed=seed,
        trace=trace,
    )
    scheduler.attach_cluster(cluster)
    long_job = cluster.submit_job(_long_job())
    for i, offset in enumerate(arrivals):
        cluster.submit_job(_short_job(i, offset))
    cluster.run_until_jobs_complete(timeout=28_800.0)

    shorts = [
        job
        for job in cluster.jobtracker.jobs.values()
        if job.spec.name.startswith("short-")
    ]
    finish = max(
        j.finish_time for j in cluster.jobtracker.jobs.values() if j.finish_time
    )
    out = {
        "short_sojourn": sum(j.sojourn_time for j in shorts) / len(shorts),
        "long_sojourn": long_job.sojourn_time,
        "makespan": finish - long_job.submit_time,
    }
    if trace:
        out["trace_digest"] = cluster.sim.trace_log.digest()
    return out


def run_hfsp_study(
    runs: int = 5,
    arrivals: Optional[List[float]] = None,
    base_seed: int = 6000,
) -> ExperimentReport:
    """Compare primitives inside the HFSP size-based scheduler."""
    arrival_times = arrivals or [20.0, 45.0]
    primitives = ["wait", "kill", "suspend"]
    metrics: Dict[str, Dict[str, List[float]]] = {
        p: {"short_sojourn": [], "long_sojourn": [], "makespan": []}
        for p in primitives
    }
    for primitive in primitives:
        for i in range(runs):
            out = _run_once(primitive, base_seed + i, arrival_times)
            for key, value in out.items():
                metrics[primitive][key].append(value)

    series = Series(
        name="hfsp-primitives",
        x_label="primitive index",
        y_label="seconds",
        x_values=list(range(len(primitives))),
    )
    for metric in ("short_sojourn", "long_sojourn", "makespan"):
        series.add_curve(
            metric, [summarize(metrics[p][metric]).mean for p in primitives]
        )

    report = ExperimentReport(
        experiment_id="hfsp",
        title="preemption primitives inside HFSP (size-based scheduling)",
        paper_expectation=(
            "suspend gives short jobs kill-like sojourns without kill's "
            "makespan penalty; wait delays short jobs the most"
        ),
    )
    report.add_series(series)
    for index, primitive in enumerate(primitives):
        report.add_note(f"primitive {index}: {primitive}")
    report.extras["metrics"] = metrics
    report.extras["primitives"] = primitives
    return report
