"""Network-contention preemption study (the ``shuffle`` experiment).

The paper's microbenchmarks preempt CPU- and memory-bound tasks; real
Hadoop clusters mostly fight over the *network* during shuffle-heavy
phases.  This study replays the SWIM shuffle-heavy mix on clusters
whose rack uplinks are oversubscribed (>= 2x by default), with every
reduce fetching its map outputs as real flows through the
:mod:`repro.netmodel` fabric, and compares the preemption primitives
where it hurts:

* **wait** never discards traffic but lets big jobs hold the links;
* **kill** frees slots fast but throws away every shuffle byte the
  victim already moved across the contended uplinks (the new
  wasted-network-bytes ledger column);
* **suspend** frees slots *and* link capacity -- paused fetches keep
  their bytes and resume where they stopped, so its wasted network
  traffic stays at wait's floor.

Per cell the study reports sojourn times, wasted work, wasted network
traffic, and fabric utilization (mean core / uplink occupancy,
off-rack flow counts).  The grid shards over worker processes exactly
like the scale study -- cells derive their seeds from coordinates, so
``--workers N`` is byte-identical to serial.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments import params as P
from repro.experiments.drive import drive_to_completion, install_counter
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Cell, derive_seed, run_cells
from repro.experiments.scale_study import metrics_digest
from repro.experiments.sketches import cell_sketch, merge_sketches
from repro.hadoop.cluster import HadoopCluster
from repro.metrics.series import Series
from repro.metrics.stats import percentile, summarize
from repro.netmodel.config import NetConfig
from repro.preemption.base import make_primitive
from repro.schedulers.hfsp import HfspScheduler
from repro.units import MB
from repro.workloads.swim import MIXES, ArrivalSpec, SwimGenerator

DEFAULT_CLUSTER_SIZES = (25, 100)
DEFAULT_PRIMITIVES = ("wait", "kill", "suspend")

#: offered load per tracker (scale study's methodology: one arrival
#: every LOAD_SECONDS / trackers seconds keeps utilisation constant);
#: hotter than the scale study's 240 s so slot pressure forces
#: preemption of in-flight shuffles at every default cluster size
LOAD_SECONDS = 150.0

#: hosts per rack of the simulated pod
HOSTS_PER_RACK = 5

METRIC_KEYS = (
    "mean_sojourn",
    "p95_sojourn",
    "small_mean_sojourn",
    "makespan",
    "wasted",
    "wasted_net_mb",
    "preemptions",
    "uplink_util",
    "core_util",
    "offrack_flows",
)


def _run_once(
    primitive_name: str,
    trackers: int,
    num_jobs: int,
    oversubscription: float,
    seed: int,
    locality_wait: float = 0.0,
    trace: bool = False,
    collector=None,
    profile: bool = False,
    heartbeat_phases: int = 0,
    batch_heartbeats: bool = False,
) -> Dict[str, float]:
    """One replay cell: pure function of its arguments.

    ``trace`` / ``collector`` / ``profile`` are the telemetry hooks,
    ``heartbeat_phases`` / ``batch_heartbeats`` the batched-dispatch
    knobs (same contract as
    :func:`repro.experiments.scale_study._run_once`).
    """
    if oversubscription <= 0:
        raise ConfigurationError("oversubscription must be positive")
    if primitive_name == "wait":
        scheduler = HfspScheduler(
            primitive_factory=None, locality_wait_seconds=locality_wait
        )
    else:
        scheduler = HfspScheduler(
            primitive_factory=functools.partial(make_primitive, primitive_name),
            locality_wait_seconds=locality_wait,
        )
    racks = max(1, (trackers + HOSTS_PER_RACK - 1) // HOSTS_PER_RACK)
    net = NetConfig.oversubscribed(
        hosts_per_rack=HOSTS_PER_RACK, oversubscription=oversubscription
    )
    cluster = HadoopCluster(
        num_nodes=trackers,
        node_config=P.paper_node_config(),
        hadoop_config=P.paper_hadoop_config().replace(
            map_slots=2,
            reduce_slots=1,
            heartbeat_phases=heartbeat_phases,
            batch_heartbeats=batch_heartbeats,
        ),
        scheduler=scheduler,
        seed=seed,
        trace=trace,
        racks=racks,
        net_config=net,
        profile=profile,
    )
    scheduler.attach_cluster(cluster)
    if collector is not None:
        collector.attach(cluster.sim.trace_log)

    generator = SwimGenerator(
        cluster.sim.rng.stream("swim"),
        classes=MIXES["shuffle-heavy"],
        arrival=ArrivalSpec(
            kind="poisson", mean_interarrival=LOAD_SECONDS / trackers
        ),
    )
    specs = generator.generate_workload(num_jobs)
    small_names = {spec.name for spec in specs if len(spec.map_tasks) <= 3}
    for spec in specs:
        cluster.submit_job(spec)

    finished = install_counter(cluster)
    drive_to_completion(
        cluster, finished, num_jobs,
        what=f"shuffle cell {primitive_name}/{trackers}",
    )

    jobs = list(cluster.jobtracker.jobs.values())
    sojourns = sorted(
        job.sojourn_time for job in jobs if job.sojourn_time is not None
    )
    if not sojourns:
        # Name the stall instead of dividing by an empty job list.
        raise ConfigurationError(
            f"shuffle cell {primitive_name}/{trackers} drained its event "
            f"queue with 0/{num_jobs} jobs complete (scheduling deadlock?)"
        )
    small = [
        job.sojourn_time
        for job in jobs
        if job.spec.name in small_names and job.sojourn_time is not None
    ]
    finish = max(job.finish_time for job in jobs if job.finish_time is not None)
    fabric = cluster.fabric
    out = {
        "mean_sojourn": sum(sojourns) / len(sojourns),
        "p95_sojourn": percentile(sojourns, 95),
        "small_mean_sojourn": sum(small) / len(small) if small else 0.0,
        "makespan": finish,
        "wasted": cluster.jobtracker.wasted.total(),
        "wasted_net_mb": cluster.wasted_network_bytes() / MB,
        "preemptions": float(scheduler.preemptions),
        "uplink_util": fabric.mean_uplink_utilization(),
        "core_util": fabric.core.mean_utilization(cluster.sim.now),
        "offrack_flows": float(fabric.offrack_flows),
        "flows_completed": float(fabric.flows_completed),
        "jobs_completed": float(finished.count),
        "events": float(cluster.sim.events_fired),
    }
    out["sketch"] = cell_sketch(
        f"{primitive_name}/{trackers}/{oversubscription:g}/",
        sojourns, small, out,
    )
    if trace:
        out["trace_digest"] = cluster.sim.trace_log.digest()
    if profile:
        from repro.telemetry.profiling import engine_stats

        out["engine"] = engine_stats(cluster.sim)
    return out


def _jobs_for(trackers: int, num_jobs: Optional[int]) -> int:
    if num_jobs is not None:
        return num_jobs
    return max(trackers, 10)


def run_shuffle_study(
    runs: int = 1,
    base_seed: int = 11000,
    cluster_sizes: Optional[List[int]] = None,
    primitives: Optional[List[str]] = None,
    num_jobs: Optional[int] = None,
    oversubscription: float = 2.5,
    locality_wait: float = 0.0,
    workers: int = 1,
) -> ExperimentReport:
    """Shuffle-heavy SWIM replay on an oversubscribed fabric."""
    sizes = list(cluster_sizes or DEFAULT_CLUSTER_SIZES)
    chosen_primitives = list(primitives or DEFAULT_PRIMITIVES)
    if runs < 1:
        raise ConfigurationError("need at least one run")

    cells: List[Cell] = []
    coords = []
    for size in sizes:
        for primitive in chosen_primitives:
            for rep in range(runs):
                coords.append((size, primitive))
                cells.append(
                    Cell.make(
                        "repro.experiments.shuffle_study",
                        "_run_once",
                        primitive_name=primitive,
                        trackers=size,
                        num_jobs=_jobs_for(size, num_jobs),
                        oversubscription=oversubscription,
                        locality_wait=locality_wait,
                        seed=derive_seed(
                            base_seed,
                            "shuffle",
                            size,
                            primitive,
                            oversubscription,
                            locality_wait,
                            rep,
                        ),
                    )
                )
    results = run_cells(cells, workers=workers)

    metrics: Dict = {
        size: {p: {k: [] for k in METRIC_KEYS} for p in chosen_primitives}
        for size in sizes
    }
    for (size, primitive), out in zip(coords, results):
        for key in METRIC_KEYS:
            metrics[size][primitive][key].append(out[key])

    report = ExperimentReport(
        experiment_id="shuffle",
        title=(
            "network-contention preemption study "
            f"(shuffle-heavy SWIM, {oversubscription:g}x oversubscribed uplinks)"
        ),
        paper_expectation=(
            "suspend matches kill on small-job sojourns while wasting no "
            "shuffle traffic: paused fetches keep their bytes, killed ones "
            "recross the oversubscribed uplinks from scratch"
        ),
    )
    for key, y_label in (
        ("mean_sojourn", "mean job sojourn (s)"),
        ("small_mean_sojourn", "small-job mean sojourn (s)"),
        ("wasted_net_mb", "wasted network traffic (MB)"),
        ("uplink_util", "mean uplink utilization"),
    ):
        series = Series(
            name=f"shuffle-{key.replace('_', '-')}",
            x_label="trackers",
            y_label=y_label,
            x_values=[float(size) for size in sizes],
        )
        for primitive in chosen_primitives:
            series.add_curve(
                primitive,
                [
                    summarize(metrics[size][primitive][key]).mean
                    for size in sizes
                ],
            )
        report.add_series(series)
    flat = {
        f"{size}/{p}/{k}": tuple(metrics[size][p][k])
        for size in sizes
        for p in chosen_primitives
        for k in METRIC_KEYS
    }
    report.add_note(
        f"fabric: {HOSTS_PER_RACK} hosts/rack, uplinks "
        f"{oversubscription:g}x oversubscribed, "
        f"locality wait {locality_wait:g}s"
    )
    report.add_note(f"metrics digest: {metrics_digest(flat)}")
    sketch = merge_sketches(results)
    report.add_note(f"sketch digest: {sketch.digest()}")
    report.extras["metrics"] = metrics
    report.extras["digest"] = metrics_digest(flat)
    report.extras["sketch"] = sketch.to_dict()
    report.extras["sketch_digest"] = sketch.digest()
    report.extras["cluster_sizes"] = sizes
    report.extras["primitives"] = chosen_primitives
    report.extras["oversubscription"] = oversubscription
    return report
