"""Figure 2: baseline experiments with light-weight tasks.

"Figure 2a illustrates the sojourn time of th: the arrival rate of h
is a parameter defined as a function of tl progress ... The kill and
our suspend/resume primitives achieve small sojourn times, as opposed
to wait ... [Figure 2b] the wait policy, at the cost of delaying th,
avoids supplementary work and achieves a small makespan; the kill
primitive, instead, wastes all the work done by tl before preemption.
Finally, our preemption primitive behaves similarly to the wait
policy."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments import params as P
from repro.experiments.harness import TwoJobResult, sweep_grid
from repro.experiments.report import ExperimentReport
from repro.metrics.series import Series

PRIMITIVES = ("wait", "kill", "suspend")


def build_series(
    results: Dict[str, Dict[float, TwoJobResult]],
    points: List[float],
    heavy: bool,
) -> List[Series]:
    """Sojourn and makespan series from per-primitive sweeps."""
    flavour = "worst-case" if heavy else "baseline"
    sojourn = Series(
        name=f"{flavour}-sojourn",
        x_label="tl progress at launch of th (%)",
        y_label="sojourn time th (s)",
        x_values=[p * 100 for p in points],
    )
    makespan = Series(
        name=f"{flavour}-makespan",
        x_label="tl progress at launch of th (%)",
        y_label="makespan (s)",
        x_values=[p * 100 for p in points],
    )
    for primitive in PRIMITIVES:
        sweep = results[primitive]
        sojourn.add_curve(primitive, [sweep[p].sojourn_th.mean for p in points])
        makespan.add_curve(primitive, [sweep[p].makespan.mean for p in points])
    return [sojourn, makespan]


def run_fig2(
    runs: int = P.PAPER_RUNS,
    progress_points: Optional[List[float]] = None,
    base_seed: int = 1000,
    heavy: bool = False,
    workers: int = 1,
) -> ExperimentReport:
    """Regenerate Figure 2 (or Figure 3 when ``heavy=True``).

    ``workers`` shards the repetitions of every (primitive, progress)
    point over processes; results are identical for any value.
    """
    points = progress_points or P.PAPER_PROGRESS_POINTS
    # One flat cell grid for every worker count: with workers=1 the
    # cells run serially in-process, so there is a single data path to
    # keep correct (the determinism suite pins it against the
    # per-primitive sweep_progress helper).
    results = sweep_grid(
        PRIMITIVES,
        progress_points=points,
        heavy=heavy,
        runs=runs,
        base_seed=base_seed,
        workers=workers,
    )
    figure = "fig3" if heavy else "fig2"
    title = (
        "worst-case experiments (memory-hungry tasks)"
        if heavy
        else "baseline experiments (light-weight tasks)"
    )
    report = ExperimentReport(
        experiment_id=figure,
        title=title,
        paper_expectation=(
            "sojourn: kill ~= susp << wait (wait decays linearly in r); "
            "makespan: wait ~= susp << kill (kill grows linearly in r)"
            + (
                "; in the worst case kill edges susp on sojourn and wait "
                "edges susp on makespan, both marginally"
                if heavy
                else ""
            )
        ),
    )
    for series in build_series(results, points, heavy):
        report.add_series(series)

    # Spread check: the paper reports min/max within 5% of the mean.
    worst_dev = max(
        res.sojourn_th.max_relative_deviation
        for sweep in results.values()
        for res in sweep.values()
    )
    report.add_note(
        f"max relative deviation across {runs} runs: {worst_dev * 100:.1f}% "
        f"(paper: within 5%)"
    )
    if heavy:
        paged = results["suspend"][points[len(points) // 2]].tl_paged_bytes.mean
        report.add_note(
            f"tl paged to swap under suspension: {paged / (1024 ** 2):.0f} MB"
        )
    report.extras["results"] = results
    return report
