"""The paper's two-job microbenchmark harness (Section IV-A).

One :class:`TwoJobHarness` run reproduces one data point of Figures
2-4: the dummy scheduler runs low-priority ``tl``; at the instant
``tl`` reaches r% progress the high-priority ``th`` is submitted and
``tl`` is preempted with the chosen primitive (or not, for ``wait``);
when ``th`` completes, ``tl`` is restored.  The harness measures the
sojourn time of ``th``, the makespan, and the bytes ``tl`` paged to
swap, averaging over seeded repetitions exactly as the paper averages
20 runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments import params as P
from repro.experiments.runner import Cell, run_cells
from repro.hadoop.cluster import HadoopCluster
from repro.metrics.stats import RunStats, summarize
from repro.preemption.base import make_primitive
from repro.schedulers.dummy import DummyScheduler
from repro.workloads.synthetic import two_job_microbenchmark


@dataclass
class SingleRunResult:
    """Raw metrics of one simulated run."""

    sojourn_th: float
    makespan: float
    tl_paged_bytes: int
    th_paged_bytes: int
    tl_wasted_seconds: float
    suspend_count: int
    trace_cluster: Optional[HadoopCluster] = None


@dataclass
class TwoJobResult:
    """Aggregated metrics over the harness's repetitions."""

    primitive: str
    progress_at_launch: float
    sojourn_th: RunStats
    makespan: RunStats
    tl_paged_bytes: RunStats
    tl_wasted_seconds: RunStats
    runs: List[SingleRunResult] = field(default_factory=list)

    def as_row(self) -> List[float]:
        """Table row: r%, sojourn, makespan, paged MB."""
        return [
            self.progress_at_launch * 100,
            self.sojourn_th.mean,
            self.makespan.mean,
            self.tl_paged_bytes.mean / (1024 * 1024),
        ]


class _PreemptAndSubmit:
    """Progress-watch callback: submit ``th`` and preempt ``tl`` the
    instant ``tl`` crosses the launch threshold (picklable replacement
    for a closure, so mid-run clusters survive checkpointing)."""

    __slots__ = ("cluster", "gate", "primitive", "job_tl", "th_spec")

    def __init__(self, cluster, gate, primitive, job_tl, th_spec):
        self.cluster = cluster
        self.gate = gate
        self.primitive = primitive
        self.job_tl = job_tl
        self.th_spec = th_spec

    def __call__(self) -> None:
        from repro.preemption.admission import admit_and_preempt

        self.cluster.jobtracker.submit_job(self.th_spec)
        tip = self.job_tl.tips[0]
        if tip.state.value == "RUNNING":
            admit_and_preempt(self.gate, self.primitive, tip)


class _RestoreTl:
    """Job-completion callback: restore ``tl`` when ``th`` finishes."""

    __slots__ = ("primitive", "job_tl")

    def __init__(self, primitive, job_tl):
        self.primitive = primitive
        self.job_tl = job_tl

    def __call__(self, job) -> None:
        if job.spec.name == "th":
            tip = self.job_tl.tips[0]
            self.primitive.restore(tip)


def measure_two_job(
    cluster: HadoopCluster, keep_trace: Optional[bool] = None
) -> SingleRunResult:
    """Metrics of one finished two-job run.

    Module-level (rather than only a harness method) so the checkpoint
    resume path can measure a restored cluster without rebuilding the
    harness that created it.  ``keep_trace`` defaults to whether the
    cluster records traces at all.
    """
    if keep_trace is None:
        keep_trace = cluster.sim.trace_log.enabled
    job_tl = cluster.job_by_name("tl")
    job_th = cluster.job_by_name("th")
    finish = max(job_tl.finish_time, job_th.finish_time)
    tl_paged = max(
        (a.lifetime_swapped_bytes() for a in cluster.attempts_of("tl")),
        default=0,
    )
    th_paged = max(
        (a.lifetime_swapped_bytes() for a in cluster.attempts_of("th")),
        default=0,
    )
    suspends = sum(a.suspend_count for a in cluster.attempts_of("tl"))
    return SingleRunResult(
        sojourn_th=job_th.sojourn_time,
        makespan=finish - job_tl.submit_time,
        tl_paged_bytes=tl_paged,
        th_paged_bytes=th_paged,
        tl_wasted_seconds=job_tl.wasted_seconds,
        suspend_count=suspends,
        trace_cluster=cluster if keep_trace else None,
    )


class TwoJobHarness:
    """Builds, runs and measures the two-job microbenchmark."""

    def __init__(
        self,
        primitive: str = "suspend",
        progress_at_launch: float = 0.5,
        heavy: bool = False,
        tl_footprint: int = P.FIG3_FOOTPRINT,
        th_footprint: int = P.FIG3_FOOTPRINT,
        runs: int = P.PAPER_RUNS,
        base_seed: int = 1000,
        keep_traces: bool = False,
        node_config=None,
        hadoop_config=None,
        workers: int = 1,
        admission=None,
        collector=None,
        profile: bool = False,
    ):
        if not 0.0 < progress_at_launch < 1.0:
            raise ConfigurationError("progress_at_launch must be in (0, 1)")
        if runs < 1:
            raise ConfigurationError("need at least one run")
        self.primitive_name = primitive
        self.progress_at_launch = progress_at_launch
        self.heavy = heavy
        self.tl_footprint = tl_footprint
        self.th_footprint = th_footprint
        self.runs = runs
        self.base_seed = base_seed
        self.keep_traces = keep_traces
        self.node_config = node_config
        self.hadoop_config = hadoop_config
        self.workers = workers
        #: optional AdmissionConfig routing suspend requests through
        #: the swap-aware admission gate (fig2's gated variant)
        self.admission = admission
        #: optional telemetry SpanCollector subscribed to each run's
        #: TraceLog (observation only -- the silence differential pins
        #: that runs are identical with or without it); like kept
        #: traces, collectors are in-process state and pin runs serial
        self.collector = collector
        #: when true, each run's engine attributes fired events to
        #: their labels (repro profile --engine / bench_guard)
        self.profile = profile
        # Overridable for the GC ablation (see experiments.gc_study).
        from repro.hadoop.jvm import GcPolicy

        self.gc_policy = GcPolicy.HOARD

    # -- single run ---------------------------------------------------------------

    def run_once(self, seed: int) -> SingleRunResult:
        """One simulated run with one seed."""
        cluster = self.build_cluster(seed)
        cluster.run_until_jobs_complete(timeout=14_400.0)
        return self.measure(cluster)

    def build_cluster(self, seed: int) -> HadoopCluster:
        """Build one fully wired (but not yet driven) benchmark run.

        Split from :meth:`run_once` so checkpoint tooling can snapshot
        the cluster mid-flight and finish it later with
        ``run_until_jobs_complete`` + :meth:`measure`.
        """
        cluster = HadoopCluster(
            num_nodes=1,
            node_config=self.node_config or P.paper_node_config(),
            hadoop_config=self.hadoop_config or P.paper_hadoop_config(),
            scheduler=DummyScheduler(),
            seed=seed,
            trace=self.keep_traces,
            gc_policy=self.gc_policy,
            profile=self.profile,
        )
        if self.collector is not None:
            self.collector.attach(cluster.sim.trace_log)
        tl_spec, th_spec = two_job_microbenchmark(
            heavy=self.heavy,
            tl_footprint=self.tl_footprint,
            th_footprint=self.th_footprint,
            input_bytes=P.INPUT_BYTES,
            parse_rate=P.PARSE_RATE,
        )
        primitive = make_primitive(self.primitive_name, cluster)
        gate = None
        if self.admission is not None:
            from repro.preemption.admission import SuspendAdmissionGate

            gate = SuspendAdmissionGate(cluster, self.admission)
        job_tl = cluster.submit_job(tl_spec)
        cluster.when_job_progress(
            "tl",
            self.progress_at_launch,
            _PreemptAndSubmit(cluster, gate, primitive, job_tl, th_spec),
        )
        cluster.jobtracker.on_job_complete(_RestoreTl(primitive, job_tl))
        return cluster

    def measure(self, cluster: HadoopCluster) -> SingleRunResult:
        """Extract the run's metrics from a finished cluster."""
        return measure_two_job(cluster, keep_trace=self.keep_traces)

    # -- aggregation ---------------------------------------------------------------------

    def _cell_params(self) -> dict:
        """Constructor arguments a worker needs to rebuild this harness
        (minus seed plumbing; traces cannot cross process boundaries)."""
        return dict(
            primitive=self.primitive_name,
            progress_at_launch=self.progress_at_launch,
            heavy=self.heavy,
            tl_footprint=self.tl_footprint,
            th_footprint=self.th_footprint,
            node_config=self.node_config,
            hadoop_config=self.hadoop_config,
            gc_policy_name=self.gc_policy.name,
            admission=self.admission,
        )

    def run(self) -> TwoJobResult:
        """Average the configured number of seeded repetitions.

        With ``workers > 1`` the repetitions shard across processes
        (identical numbers to the serial path: each repetition is a
        pure function of its seed).  Kept traces and attached
        collectors pin the run serial -- they are in-process state
        that a worker pool cannot share.
        """
        if self.workers > 1 and not self.keep_traces and self.collector is None:
            params = self._cell_params()
            cells = [
                Cell.make(
                    "repro.experiments.harness",
                    "_harness_cell",
                    seed=self.base_seed + i,
                    **params,
                )
                for i in range(self.runs)
            ]
            results = run_cells(cells, workers=self.workers)
        else:
            results = [self.run_once(self.base_seed + i) for i in range(self.runs)]
        return TwoJobResult(
            primitive=self.primitive_name,
            progress_at_launch=self.progress_at_launch,
            sojourn_th=summarize([r.sojourn_th for r in results]),
            makespan=summarize([r.makespan for r in results]),
            tl_paged_bytes=summarize([r.tl_paged_bytes for r in results]),
            tl_wasted_seconds=summarize([r.tl_wasted_seconds for r in results]),
            runs=results,
        )


def _harness_cell(
    seed: int,
    primitive: str,
    progress_at_launch: float,
    heavy: bool,
    tl_footprint: int,
    th_footprint: int,
    node_config,
    hadoop_config,
    gc_policy_name: str,
    admission=None,
) -> SingleRunResult:
    """One repetition, rebuilt from plain arguments in a worker."""
    from repro.hadoop.jvm import GcPolicy

    harness = TwoJobHarness(
        primitive=primitive,
        progress_at_launch=progress_at_launch,
        heavy=heavy,
        tl_footprint=tl_footprint,
        th_footprint=th_footprint,
        runs=1,
        base_seed=seed,
        node_config=node_config,
        hadoop_config=hadoop_config,
        admission=admission,
    )
    harness.gc_policy = GcPolicy[gc_policy_name]
    return harness.run_once(seed)


def sweep_grid(
    primitives,
    progress_points: List[float],
    heavy: bool = False,
    runs: int = P.PAPER_RUNS,
    base_seed: int = 1000,
    workers: int = 1,
) -> Dict[str, Dict[float, TwoJobResult]]:
    """The whole (primitive x progress x repetition) microbenchmark
    grid as ONE flat cell list through ONE worker pool.

    Numerically identical to per-primitive :func:`sweep_progress` calls
    (each cell is the same pure function of its seed), but the pool is
    created once and late points of one primitive overlap with early
    points of the next instead of pausing at every axis boundary.
    """
    coords = [(prim, r) for prim in primitives for r in progress_points]
    cells: List[Cell] = []
    for prim, r in coords:
        params = TwoJobHarness(
            primitive=prim,
            progress_at_launch=r,
            heavy=heavy,
            runs=runs,
            base_seed=base_seed,
        )._cell_params()
        for i in range(runs):
            cells.append(
                Cell.make(
                    "repro.experiments.harness",
                    "_harness_cell",
                    seed=base_seed + i,
                    **params,
                )
            )
    flat = run_cells(cells, workers=workers)
    out: Dict[str, Dict[float, TwoJobResult]] = {prim: {} for prim in primitives}
    for index, (prim, r) in enumerate(coords):
        chunk = flat[index * runs:(index + 1) * runs]
        out[prim][r] = TwoJobResult(
            primitive=prim,
            progress_at_launch=r,
            sojourn_th=summarize([c.sojourn_th for c in chunk]),
            makespan=summarize([c.makespan for c in chunk]),
            tl_paged_bytes=summarize([c.tl_paged_bytes for c in chunk]),
            tl_wasted_seconds=summarize([c.tl_wasted_seconds for c in chunk]),
            runs=list(chunk),
        )
    return out


def sweep_progress(
    primitive: str,
    progress_points: Optional[List[float]] = None,
    heavy: bool = False,
    runs: int = P.PAPER_RUNS,
    base_seed: int = 1000,
    workers: int = 1,
) -> Dict[float, TwoJobResult]:
    """Run the harness across the paper's r-axis for one primitive."""
    points = progress_points or P.PAPER_PROGRESS_POINTS
    out: Dict[float, TwoJobResult] = {}
    for r in points:
        harness = TwoJobHarness(
            primitive=primitive,
            progress_at_launch=r,
            heavy=heavy,
            runs=runs,
            base_seed=base_seed,
            workers=workers,
        )
        out[r] = harness.run()
    return out
