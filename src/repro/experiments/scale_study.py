"""Cluster-at-scale SWIM replay (the "does it hold at scale" study).

The paper's claims are demonstrated on a handful of nodes with two
jobs; this study replays SWIM-style heavy-tailed workloads -- the
trace-calibrated mixes and arrival processes of
:mod:`repro.workloads.swim` -- on simulated clusters of 25, 100 and
400 TaskTrackers, with the HFSP size-based scheduler preempting via
wait, kill or suspend (the deployment the authors name in their
conclusion, at the scale of the Facebook traces SWIM was built from).

Grid: **scenario** (workload mix x arrival process) x **cluster
size** x **primitive** x seeded repetition.  Every cell is an
independent simulation whose seed is derived from the cell's
coordinates (:func:`repro.experiments.runner.derive_seed`), so the
grid shards across worker processes with bit-identical results --
``repro run scale --workers 4`` equals ``--workers 1`` byte for byte.

Per cell the study reports job sojourn times (mean, p95, and the
small-job mean that size-based scheduling is supposed to protect),
makespan, wasted work and preemption counts.
"""

from __future__ import annotations

import functools
import hashlib
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments import params as P
from repro.experiments.drive import (
    drive_to_completion,
    find_counter,
    install_counter,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import Cell, derive_seed, run_cells
from repro.experiments.sketches import cell_sketch, merge_sketches
from repro.hadoop.cluster import HadoopCluster
from repro.metrics.series import Series
from repro.metrics.stats import percentile, summarize
from repro.preemption.base import make_primitive
from repro.schedulers.hfsp import HfspScheduler
from repro.workloads.swim import MIXES, ArrivalSpec, SwimGenerator

#: scenario name -> (mix key, arrival process); the arrival's mean is
#: rescaled per cluster size in :func:`_run_once`
SCENARIOS: Dict[str, Dict[str, str]] = {
    "baseline": {"mix": "facebook", "arrival": "poisson"},
    "shuffle-heavy": {"mix": "shuffle-heavy", "arrival": "poisson"},
    "burst": {"mix": "facebook", "arrival": "bursty"},
    "diurnal": {"mix": "facebook", "arrival": "diurnal"},
    # Homogeneous long jobs: the whole workload stays live at once, the
    # many-live-jobs regime the batched heartbeat dispatch amortizes
    # (bench_guard's 2000/5000-tracker cells replay this scenario).
    "steady": {"mix": "steady", "arrival": "poisson"},
}

DEFAULT_CLUSTER_SIZES = (25, 100, 400)
DEFAULT_PRIMITIVES = ("wait", "kill", "suspend")

#: offered load per tracker: one job arrives every LOAD_SECONDS /
#: trackers seconds, so utilisation stays roughly constant across the
#: cluster-size sweep (SWIM's scale-the-arrival-rate methodology)
LOAD_SECONDS = 240.0

METRIC_KEYS = (
    "mean_sojourn",
    "p95_sojourn",
    "small_mean_sojourn",
    "makespan",
    "wasted",
    "preemptions",
)


def _arrival_spec(kind: str, mean_interarrival: float) -> ArrivalSpec:
    if kind == "bursty":
        return ArrivalSpec(
            kind="bursty",
            mean_interarrival=mean_interarrival,
            burst_size=range(3, 9),
            burst_spread=max(mean_interarrival / 10.0, 0.1),
        )
    if kind == "diurnal":
        return ArrivalSpec(
            kind="diurnal",
            mean_interarrival=mean_interarrival,
            period=300.0,
            amplitude=0.8,
        )
    return ArrivalSpec(kind="poisson", mean_interarrival=mean_interarrival)


def _run_once(
    scenario: str,
    primitive_name: str,
    trackers: int,
    num_jobs: int,
    seed: int,
    admission=None,
    trace: bool = False,
    collector=None,
    profile: bool = False,
    heartbeat_phases: int = 0,
    batch_heartbeats: bool = False,
) -> Dict[str, float]:
    """One replay cell: pure function of its arguments.

    ``admission`` (an
    :class:`~repro.preemption.admission.AdmissionConfig`) routes
    suspensions through the swap-aware gate; ``trace`` keeps the
    TraceLog and adds its digest to the result -- both exist for the
    gated-vs-ungated differential tests and default to the historical
    behaviour.  ``collector`` (a telemetry
    :class:`~repro.telemetry.spans.SpanCollector`) subscribes to the
    cell's TraceLog -- observation only, and in-process only (never a
    Cell param); ``profile`` turns on the engine's per-label
    attribution and adds its stats under ``"engine"``.
    ``heartbeat_phases`` locks tracker heartbeats onto that many shared
    phase offsets and ``batch_heartbeats`` amortizes the JobTracker's
    scheduling passes across each resulting same-instant batch; the
    batched-vs-unbatched differential suites hold runs differing only
    in ``batch_heartbeats`` digest-identical.
    """
    cluster, finished = _build_run(
        scenario, primitive_name, trackers, num_jobs, seed,
        admission=admission, trace=trace, collector=collector,
        profile=profile, heartbeat_phases=heartbeat_phases,
        batch_heartbeats=batch_heartbeats,
    )
    drive_to_completion(
        cluster, finished, num_jobs,
        what=f"scale cell {scenario}/{primitive_name}/{trackers}",
    )
    return _collect_run(
        cluster, scenario, primitive_name, trackers, finished, trace, profile
    )


def _build_run(
    scenario: str,
    primitive_name: str,
    trackers: int,
    num_jobs: int,
    seed: int,
    admission=None,
    trace: bool = False,
    collector=None,
    profile: bool = False,
    heartbeat_phases: int = 0,
    batch_heartbeats: bool = False,
):
    """Build one fully loaded (but not yet driven) replay cell.

    Split from :func:`_run_once` so checkpoint tooling can snapshot
    the cluster mid-flight and finish it later with
    :func:`_finish_run`.  Returns ``(cluster, completion_counter)``.
    """
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {scenario!r}; known: {', '.join(sorted(SCENARIOS))}"
        )
    shape = SCENARIOS[scenario]
    if primitive_name == "wait":
        scheduler = HfspScheduler(primitive_factory=None)
    else:
        scheduler = HfspScheduler(
            primitive_factory=functools.partial(make_primitive, primitive_name),
            admission_config=admission,
        )
    cluster = HadoopCluster(
        num_nodes=trackers,
        node_config=P.paper_node_config(),
        hadoop_config=P.paper_hadoop_config().replace(
            map_slots=2,
            reduce_slots=1,
            heartbeat_phases=heartbeat_phases,
            batch_heartbeats=batch_heartbeats,
        ),
        scheduler=scheduler,
        seed=seed,
        trace=trace,
        profile=profile,
    )
    scheduler.attach_cluster(cluster)
    if collector is not None:
        collector.attach(cluster.sim.trace_log)

    mean_interarrival = LOAD_SECONDS / trackers
    generator = SwimGenerator(
        cluster.sim.rng.stream("swim"),
        classes=MIXES[shape["mix"]],
        arrival=_arrival_spec(shape["arrival"], mean_interarrival),
    )
    specs = generator.generate_workload(num_jobs)
    for spec in specs:
        cluster.submit_job(spec)
    return cluster, install_counter(cluster)


def _finish_run(cluster, meta: Dict) -> Dict[str, float]:
    """Drive a (restored) cell to completion and collect its metrics.

    ``meta`` is the checkpoint meta written by
    :mod:`repro.checkpoint.cells` -- the cell coordinates needed to
    recompute the sketch prefix and deadlock message.
    """
    finished = find_counter(cluster)
    drive_to_completion(
        cluster, finished, int(meta["num_jobs"]),
        what=(
            f"scale cell {meta['scenario']}/{meta['primitive_name']}"
            f"/{meta['trackers']}"
        ),
    )
    return _collect_run(
        cluster, meta["scenario"], meta["primitive_name"],
        int(meta["trackers"]), finished,
        bool(meta.get("trace")), bool(meta.get("profile")),
    )


def _collect_run(
    cluster,
    scenario: str,
    primitive_name: str,
    trackers: int,
    finished,
    trace: bool,
    profile: bool,
) -> Dict[str, float]:
    """The metric tail of :func:`_run_once`, recomputable after a
    checkpoint restore (small jobs are re-identified from the submitted
    specs, which ride inside the checkpoint)."""
    scheduler = cluster.scheduler
    jobs = list(cluster.jobtracker.jobs.values())
    small_names = {
        job.spec.name for job in jobs if len(job.spec.map_tasks) <= 3
    }
    sojourns = sorted(
        job.sojourn_time for job in jobs if job.sojourn_time is not None
    )
    small = [
        job.sojourn_time
        for job in jobs
        if job.spec.name in small_names and job.sojourn_time is not None
    ]
    finish = max(job.finish_time for job in jobs if job.finish_time is not None)
    out = {
        "mean_sojourn": sum(sojourns) / len(sojourns),
        "p95_sojourn": percentile(sojourns, 95),
        "small_mean_sojourn": sum(small) / len(small) if small else 0.0,
        "makespan": finish,
        "wasted": cluster.jobtracker.wasted.total(),
        "preemptions": float(scheduler.preemptions),
        "jobs_completed": float(finished.count),
        "events": float(cluster.sim.events_fired),
    }
    out["sketch"] = cell_sketch(
        f"{scenario}/{trackers}/{primitive_name}/", sojourns, small, out
    )
    if trace:
        out["trace_digest"] = cluster.sim.trace_log.digest()
    if profile:
        from repro.telemetry.profiling import engine_stats

        out["engine"] = engine_stats(cluster.sim)
    return out


def _jobs_for(trackers: int, num_jobs: Optional[int]) -> int:
    """Workload length per cluster size: jobs scale with trackers (the
    SWIM day-in-the-life replay grows with the cluster it feeds)."""
    if num_jobs is not None:
        return num_jobs
    return max(trackers, 10)


def metrics_digest(metrics: Dict) -> str:
    """SHA-256 of the full nested metric structure.

    ``repr`` round-trips floats exactly, so two digests match iff
    every metric of every cell is bit-identical -- the value the
    serial-vs-parallel acceptance test compares.
    """
    return hashlib.sha256(repr(sorted(metrics.items())).encode("utf-8")).hexdigest()


def run_scale_study(
    runs: int = 1,
    base_seed: int = 9000,
    cluster_sizes: Optional[List[int]] = None,
    scenarios: Optional[List[str]] = None,
    primitives: Optional[List[str]] = None,
    num_jobs: Optional[int] = None,
    workers: int = 1,
) -> ExperimentReport:
    """SWIM replay across cluster sizes, sharded over ``workers``."""
    sizes = list(cluster_sizes or DEFAULT_CLUSTER_SIZES)
    chosen_scenarios = list(scenarios or SCENARIOS)
    chosen_primitives = list(primitives or DEFAULT_PRIMITIVES)
    if runs < 1:
        raise ConfigurationError("need at least one run")

    cells: List[Cell] = []
    coords = []
    for scenario in chosen_scenarios:
        for size in sizes:
            for primitive in chosen_primitives:
                for rep in range(runs):
                    coords.append((scenario, size, primitive))
                    cells.append(
                        Cell.make(
                            "repro.experiments.scale_study",
                            "_run_once",
                            scenario=scenario,
                            primitive_name=primitive,
                            trackers=size,
                            num_jobs=_jobs_for(size, num_jobs),
                            seed=derive_seed(
                                base_seed, "scale", scenario, size, primitive, rep
                            ),
                        )
                    )
    results = run_cells(cells, workers=workers)

    metrics: Dict = {
        s: {
            size: {p: {k: [] for k in METRIC_KEYS} for p in chosen_primitives}
            for size in sizes
        }
        for s in chosen_scenarios
    }
    for (scenario, size, primitive), out in zip(coords, results):
        for key in METRIC_KEYS:
            metrics[scenario][size][primitive][key].append(out[key])

    report = ExperimentReport(
        experiment_id="scale",
        title="cluster-at-scale SWIM replay (HFSP x preemption primitives)",
        paper_expectation=(
            "suspend holds small-job sojourns near kill's while keeping "
            "wasted work near wait's floor, at every cluster size; the "
            "gap widens with shuffle-heavy mixes and bursty arrivals"
        ),
    )
    for scenario in chosen_scenarios:
        for key, y_label in (
            ("mean_sojourn", "mean job sojourn (s)"),
            ("small_mean_sojourn", "small-job mean sojourn (s)"),
            ("wasted", "wasted work (s)"),
        ):
            series = Series(
                name=f"scale-{scenario}-{key.replace('_', '-')}",
                x_label="trackers",
                y_label=y_label,
                x_values=[float(size) for size in sizes],
            )
            for primitive in chosen_primitives:
                series.add_curve(
                    primitive,
                    [
                        summarize(metrics[scenario][size][primitive][key]).mean
                        for size in sizes
                    ],
                )
            report.add_series(series)
    for scenario in chosen_scenarios:
        shape = SCENARIOS[scenario]
        report.add_note(
            f"{scenario}: mix={shape['mix']} arrivals={shape['arrival']}"
        )
    flat = {
        f"{s}/{size}/{p}/{k}": tuple(metrics[s][size][p][k])
        for s in chosen_scenarios
        for size in sizes
        for p in chosen_primitives
        for k in METRIC_KEYS
    }
    report.add_note(f"metrics digest: {metrics_digest(flat)}")
    sketch = merge_sketches(results)
    report.add_note(f"sketch digest: {sketch.digest()}")
    report.extras["metrics"] = metrics
    report.extras["digest"] = metrics_digest(flat)
    report.extras["sketch"] = sketch.to_dict()
    report.extras["sketch_digest"] = sketch.digest()
    report.extras["scenarios"] = chosen_scenarios
    report.extras["cluster_sizes"] = sizes
    report.extras["primitives"] = chosen_primitives
    return report
