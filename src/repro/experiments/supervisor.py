"""Supervised, crash-tolerant execution of experiment cell sweeps.

The plain pool runner treats worker death as fatal: one segfault, OOM
kill or hang inside ``Pool.imap`` and the whole sweep stalls or dies,
losing every uncached cell.  Real clusters treat worker churn as
routine, and the harness holds itself to the same standard the
simulator models.  This module replaces the pool with one supervised
worker process per shard and a parent-side watchdog:

* **liveness heartbeats** -- a daemon thread in every worker pings the
  parent over its duplex result channel; a silent worker is declared
  dead and replaced;
* **per-cell wall-clock timeouts** -- a cell running past the budget
  gets its worker SIGKILLed and the cell retried;
* **crash detection** -- a worker that exits nonzero or dies to a
  signal (its pipe EOFs, its sentinel fires) forfeits its in-flight
  cell back to the queue;
* **deterministic retries** -- a failed cell is retried up to
  ``max_retries`` times with exponential backoff whose length is
  derived from the *cell key and attempt number*, never from wall
  time; cells are pure functions of their params, so a retried sweep
  is byte-identical to a clean one;
* **poison-cell quarantine** -- a cell that exhausts its retries is
  quarantined (reported, not fatal): the sweep completes and the
  manifest names the poison cells;
* **graceful pool degradation** -- a slot that keeps dying without
  completing anything is retired; the remaining shards steal its
  share of the queue (dispatch is pull-based, so stealing is free);
* **mid-cell auto-snapshot** -- resumable cells (the long replay
  studies) persist a checkpoint every N *virtual* seconds via the
  drive-loop hook, so a crashed shard restores mid-cell instead of
  restarting from zero.

Chaos faults (:mod:`repro.experiments.chaos`) are injected worker-side
at cell boundaries; the differential suite pins that a chaos-ridden
sweep's results -- TraceLog and sketch digests included -- are
byte-identical to an undisturbed serial run.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, QuarantineError, SupervisorError
from repro.experiments.chaos import ChaosPlan, corrupt_payload

#: (module, func) -> checkpoint-cell kind: cells whose module exposes
#: the PR 7 build/finish split and can therefore resume mid-cell via
#: ``repro.checkpoint.cells.finish_cell``
RESUMABLE_CELLS: Dict[Tuple[str, str], str] = {
    ("repro.experiments.scale_study", "_run_once"): "scale",
    ("repro.experiments.memscale_study", "_run_once"): "memscale",
}

#: watchdog poll tick (wall seconds); only latency, never results,
#: depends on it
_TICK = 0.05

#: the supervisor's telemetry counters (``sweep.<name>`` in the
#: registry, bare names in manifests and :class:`SweepResult.stats`)
_COUNTER_NAMES = (
    "retries", "quarantines", "worker_deaths", "timeouts",
    "corrupt_results", "worker_restarts", "heartbeats_lost",
    "cells_completed",
)


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of one supervised sweep."""

    max_retries: int = 2          # attempts per cell = max_retries + 1
    cell_timeout: Optional[float] = None   # wall seconds per attempt
    heartbeat_interval: float = 0.5        # worker ping period
    heartbeat_timeout: float = 30.0        # silence => worker is dead
    backoff_base: float = 0.05             # virtual attempt-space unit
    backoff_cap: float = 2.0               # wall-sleep ceiling
    worker_death_cap: int = 3     # consecutive deaths before slot retires
    snapshot_every: Optional[float] = 900.0  # virtual s between mid-cell
    #                                          snapshots (None = off)
    chaos: Optional[ChaosPlan] = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError("cell_timeout must be > 0 seconds")
        if self.chaos is not None and self.chaos.requires_timeout() and (
            self.cell_timeout is None
        ):
            raise ConfigurationError(
                "chaos plan hangs workers but no cell_timeout is set; "
                "a hung cell would stall the sweep forever"
            )


@dataclass
class QuarantineRecord:
    """One poison cell: where it sat, what it was, how it died."""

    index: int
    key: str
    label: str
    attempts: int
    causes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "attempts": self.attempts,
            "causes": list(self.causes),
        }


@dataclass
class SweepResult:
    """What a supervised sweep produced."""

    results: List[Any]
    quarantined: List[QuarantineRecord]
    stats: Dict[str, int]


def retry_backoff(
    cell_key: str, attempt: int, base: float = 0.05, cap: float = 2.0
) -> float:
    """Deterministic exponential backoff in virtual attempt-space.

    ``base * 2**attempt`` with a jitter fraction drawn from SHA-256 of
    ``(cell_key, attempt)`` -- a pure function of *what failed and how
    many times*, never of wall time or worker identity, so two runs of
    the same sweep back off identically.  The value only paces
    redispatch; results cannot depend on it.
    """
    digest = hashlib.sha256(f"{cell_key}:{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2**32  # [0, 1)
    return min(base * (2.0 ** attempt) * (1.0 + jitter), cap)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _heartbeat_loop(conn, lock: threading.Lock, interval: float) -> None:
    seq = 0
    while True:
        time.sleep(interval)
        seq += 1
        try:
            with lock:
                conn.send(("ping", seq))
        except (OSError, ValueError):  # parent gone; die quietly
            return


class _MidcellKiller(threading.Thread):
    """The ``kill-mid`` chaos fault: SIGKILL ourselves after a delay."""

    def __init__(self, delay: float):
        super().__init__(daemon=True)
        self.delay = delay

    def run(self) -> None:  # pragma: no cover - dies with the process
        time.sleep(self.delay)
        os.kill(os.getpid(), signal.SIGKILL)


def execute_cell_resumable(
    cell,
    cache_dir: Optional[str],
    snapshot_every: Optional[float],
) -> Any:
    """Run one cell, resuming from (and refreshing) its mid-cell
    checkpoint when the cell supports it.

    Non-resumable cells, or runs without a cache directory or snapshot
    interval, fall through to the plain
    :func:`repro.experiments.runner.execute_cell`.  On success any
    mid-cell checkpoint is deleted -- the finished result supersedes
    it.
    """
    from repro.experiments import drive
    from repro.experiments.runner import cell_key, execute_cell

    kind = RESUMABLE_CELLS.get((cell.module, cell.func))
    if kind is None or cache_dir is None or not snapshot_every:
        return execute_cell(cell)

    midck = os.path.join(cache_dir, cell_key(cell) + ".midck")
    meta = {"kind": kind, **cell.kwargs}
    if os.path.exists(midck):
        result = _resume_midcell(midck, snapshot_every)
        if result is not None:
            return result
    drive.set_autosnapshot(midck, snapshot_every, meta)
    try:
        result = execute_cell(cell)
    finally:
        drive.set_autosnapshot(None)
    _remove_quietly(midck)
    return result


def _resume_midcell(midck: str, snapshot_every: float) -> Optional[Any]:
    """Finish a cell from its mid-cell checkpoint; None = unusable
    (corrupt, stale schema) and the caller should run from zero."""
    from repro.checkpoint.cells import finish_cell
    from repro.checkpoint.core import load, restore
    from repro.errors import SnapshotError
    from repro.experiments import drive

    try:
        checkpoint = load(midck)
        cluster = restore(checkpoint)
    except SnapshotError as exc:
        print(
            f"warning: mid-cell checkpoint {midck} unusable ({exc}); "
            "re-running the cell from zero",
            file=sys.stderr,
        )
        _remove_quietly(midck)
        return None
    meta = dict(checkpoint.meta)
    drive.set_autosnapshot(midck, snapshot_every, meta)
    try:
        result = finish_cell(cluster, meta)
    finally:
        drive.set_autosnapshot(None)
    _remove_quietly(midck)
    return result


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass


def _worker_main(
    wid: int,
    conn,
    cache_dir: Optional[str],
    snapshot_every: Optional[float],
    chaos: Optional[ChaosPlan],
    heartbeat_interval: float,
    ledger_path: Optional[str] = None,
) -> None:
    """One supervised shard: pull a cell, run it, push the result.

    Every outbound message is guarded by a lock shared with the
    heartbeat thread so pings never interleave with result frames.
    When the sweep has a file ledger, the worker opens its own
    ``O_APPEND`` handle on it (line appends are atomic, so parent and
    worker records interleave only at line boundaries) and arms it as
    the process ledger -- which is how mid-cell snapshot writes inside
    the drive loop get narrated.
    """
    from repro.experiments.runner import cell_key

    if ledger_path is not None:
        from repro.obs.ledger import Ledger, set_process_ledger

        try:
            set_process_ledger(Ledger(ledger_path))
        except OSError:
            pass  # observation never takes down the shard

    lock = threading.Lock()
    threading.Thread(
        target=_heartbeat_loop,
        args=(conn, lock, heartbeat_interval),
        daemon=True,
    ).start()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _tag, index, cell, attempt = message
        fault = (
            chaos.fault_for(cell_key(cell), attempt)
            if chaos is not None else None
        )
        with lock:
            conn.send(("start", index, attempt))
        if fault is not None and fault.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault is not None and fault.kind == "hang":
            time.sleep(chaos.hang_seconds)
            # Unreachable under a sane config: the parent's cell
            # timeout SIGKILLs us first.  If it ever is reached, fall
            # through and run the cell -- determinism is preserved.
        if fault is not None and fault.kind == "kill-mid":
            _MidcellKiller(fault.delay).start()
        try:
            result = execute_cell_resumable(cell, cache_dir, snapshot_every)
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(payload).hexdigest()
            if fault is not None and fault.kind == "corrupt":
                payload = corrupt_payload(payload)
            with lock:
                conn.send(("done", index, attempt, payload, digest))
        except BaseException as exc:  # noqa: BLE001 - forwarded verbatim
            try:
                exc_bytes = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                exc_bytes = None
            with lock:
                conn.send((
                    "error", index, attempt, exc_bytes,
                    "".join(traceback.format_exception(exc)),
                ))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _Slot:
    """One supervised worker slot (survives its workers' deaths)."""

    __slots__ = (
        "slot_id", "process", "conn", "inflight", "deadline",
        "last_ping", "deaths", "kill_cause", "retired", "started",
    )

    def __init__(self, slot_id: int):
        self.slot_id = slot_id
        self.process = None
        self.conn = None
        self.inflight: Optional[Tuple[int, int]] = None  # (index, attempt)
        self.deadline: Optional[float] = None
        self.last_ping: float = 0.0
        self.deaths = 0          # consecutive, reset by any completion
        self.kill_cause: Optional[str] = None  # set when *we* kill it
        self.retired = False
        self.started: Optional[float] = None  # dispatch time of inflight

    @property
    def live(self) -> bool:
        return (
            not self.retired
            and self.process is not None
            and self.process.is_alive()
        )


class Supervisor:
    """Parent-side watchdog driving one sweep to completion."""

    def __init__(
        self,
        cell_list: List[Any],
        todo: List[int],
        workers: int,
        config: SupervisorConfig,
        cache_dir: Optional[str] = None,
        on_finish: Optional[Callable[[int, Any], None]] = None,
        progress: Optional[Callable[[str], None]] = None,
        ledger=None,
    ):
        if workers < 1:
            raise ConfigurationError("supervisor needs at least one worker")
        self.cells = cell_list
        self.todo = list(todo)
        self.config = config
        self.cache_dir = cache_dir
        self.on_finish = on_finish
        self.progress = progress or (lambda message: None)
        self.ledger = ledger
        self._next_counters = 0.0  # next periodic counters emission
        self.workers = min(workers, max(len(self.todo), 1))

        self.results: Dict[int, Any] = {}
        self.quarantined: List[QuarantineRecord] = []
        self.pending: List[int] = list(self.todo)
        self.not_before: Dict[int, float] = {}
        self.attempts: Dict[int, int] = {index: 0 for index in self.todo}
        self.causes: Dict[int, List[str]] = {index: [] for index in self.todo}
        self.slots: List[_Slot] = []
        self._context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        # Telemetry counters ride the standard registry so a service
        # layer can merge per-sweep stats the same way it merges cell
        # sketches (counter merge = sum, order-insensitive).
        from repro.telemetry.registry import MetricRegistry

        self.metrics = MetricRegistry()
        for name in _COUNTER_NAMES:
            self.metrics.counter(f"sweep.{name}")

    # -- lifecycle -----------------------------------------------------

    def _inc(self, name: str) -> None:
        self.metrics.counter(f"sweep.{name}").inc()

    def _stats(self) -> Dict[str, int]:
        return {
            name: self.metrics.counter(f"sweep.{name}").value
            for name in _COUNTER_NAMES
        }

    def _emit(self, event: str, **fields: Any) -> None:
        if self.ledger is not None:
            self.ledger.emit(event, **fields)

    def run(self) -> SweepResult:
        if not self.todo:
            return SweepResult([], [], self._stats())
        try:
            for slot_id in range(self.workers):
                slot = _Slot(slot_id)
                self._spawn(slot)
                self.slots.append(slot)
            self._loop()
        finally:
            self._shutdown()
        results = [self.results.get(index) for index in self.todo]
        return SweepResult(
            results=results,
            quarantined=list(self.quarantined),
            stats=self._stats(),
        )

    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(
                slot.slot_id, child_conn, self.cache_dir,
                self.config.snapshot_every, self.config.chaos,
                self.config.heartbeat_interval,
                self.ledger.path if self.ledger is not None else None,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.inflight = None
        slot.deadline = None
        slot.kill_cause = None
        slot.started = None
        slot.last_ping = time.monotonic()
        self._emit("worker-spawn", slot=slot.slot_id, worker_pid=process.pid)

    def _shutdown(self) -> None:
        for slot in self.slots:
            if slot.live and slot.conn is not None:
                try:
                    slot.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
        for slot in self.slots:
            if slot.process is not None:
                slot.process.join(timeout=1.0)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=5.0)
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None

    # -- main loop -----------------------------------------------------

    def _outstanding(self) -> int:
        done = len(self.results) + len(self.quarantined)
        return len(self.todo) - done

    #: wall seconds between periodic supervisor-counter snapshots in
    #: the ledger (observation cadence only; results never depend on it)
    COUNTERS_EVERY = 2.0

    def _loop(self) -> None:
        while self._outstanding() > 0:
            self._reap_dead()
            self._check_watchdog()
            self._dispatch()
            if self._outstanding() == 0:
                break
            now = time.monotonic()
            if self.ledger is not None and now >= self._next_counters:
                self._next_counters = now + self.COUNTERS_EVERY
                self._emit("counters", counters=self._stats())
            self._drain(timeout=_TICK)

    def _live_slots(self) -> List[_Slot]:
        return [slot for slot in self.slots if slot.live]

    def _dispatch(self) -> None:
        now = time.monotonic()
        for slot in self._live_slots():
            if slot.inflight is not None or not self.pending:
                continue
            position = next(
                (
                    i for i, index in enumerate(self.pending)
                    if self.not_before.get(index, 0.0) <= now
                ),
                None,
            )
            if position is None:
                continue
            index = self.pending.pop(position)
            attempt = self.attempts[index]
            self.attempts[index] = attempt + 1
            cell = self.cells[index]
            try:
                slot.conn.send(("run", index, cell, attempt))
            except (OSError, ValueError):
                # Died between liveness check and send; requeue
                # without charging an attempt and let _reap_dead
                # handle the corpse.
                self.attempts[index] = attempt
                self.pending.insert(0, index)
                continue
            slot.inflight = (index, attempt)
            slot.started = now
            slot.deadline = (
                now + self.config.cell_timeout
                if self.config.cell_timeout is not None else None
            )
            self._emit(
                "cell-start", index=index, key=_key_of(cell),
                label=_label_of(cell), attempt=attempt,
                slot=slot.slot_id,
            )

    def _drain(self, timeout: float) -> None:
        connections = {
            slot.conn: slot for slot in self._live_slots()
            if slot.conn is not None
        }
        sentinels = {
            slot.process.sentinel: slot for slot in self._live_slots()
        }
        waitables = list(connections) + list(sentinels)
        if not waitables:
            return
        ready = multiprocessing.connection.wait(waitables, timeout=timeout)
        for item in ready:
            slot = connections.get(item)
            if slot is None:
                continue  # sentinel: _reap_dead picks it up next tick
            self._drain_slot(slot)

    def _drain_slot(self, slot: _Slot) -> None:
        while slot.conn is not None:
            try:
                if not slot.conn.poll():
                    return
                message = slot.conn.recv()
            except (EOFError, OSError):
                return  # dead; the sentinel path reaps it
            self._handle(slot, message)

    def _handle(self, slot: _Slot, message: Tuple) -> None:
        tag = message[0]
        if tag == "ping":
            slot.last_ping = time.monotonic()
        elif tag == "start":
            _tag, index, _attempt = message
            if self.config.cell_timeout is not None:
                slot.deadline = time.monotonic() + self.config.cell_timeout
        elif tag == "done":
            self._handle_done(slot, message)
        elif tag == "error":
            self._handle_error(slot, message)
        else:
            raise SupervisorError(
                f"worker {slot.slot_id} sent malformed message {tag!r}"
            )

    def _handle_done(self, slot: _Slot, message: Tuple) -> None:
        _tag, index, attempt, payload, digest = message
        slot.inflight = None
        slot.deadline = None
        started = slot.started
        slot.started = None
        if hashlib.sha256(payload).hexdigest() != digest:
            self._inc("corrupt_results")
            self._fail(index, "corrupt result payload (digest mismatch)")
            return
        try:
            result = pickle.loads(payload)
        except Exception as exc:
            self._inc("corrupt_results")
            self._fail(index, f"corrupt result payload (unpickle: {exc!r})")
            return
        slot.deaths = 0
        self._inc("cells_completed")
        self.results[index] = result
        # Cache write first, ledger second: a cell-finish record must
        # never precede the result file it announces (the manifest
        # flush that rides the ledger relies on this ordering).
        if self.on_finish is not None:
            self.on_finish(index, result)
        from repro.experiments.runner import cell_cost

        cell = self.cells[index]
        self._emit(
            "cell-finish", index=index, key=_key_of(cell),
            label=_label_of(cell), attempt=attempt,
            duration_s=(
                round(time.monotonic() - started, 3)
                if started is not None else None
            ),
            cost=cell_cost(result),
            sketch=result.get("sketch") if isinstance(result, dict) else None,
            slot=slot.slot_id,
        )

    def _handle_error(self, slot: _Slot, message: Tuple) -> None:
        """A Python exception inside a cell: deterministic (cells are
        pure), so retrying is futile -- propagate like the pool did."""
        _tag, _index, _attempt, exc_bytes, tb_text = message
        slot.inflight = None
        exc: BaseException
        if exc_bytes is not None:
            try:
                exc = pickle.loads(exc_bytes)
            except Exception:
                exc = SupervisorError(f"worker raised:\n{tb_text}")
        else:
            exc = SupervisorError(f"worker raised:\n{tb_text}")
        if isinstance(exc, KeyboardInterrupt):
            raise KeyboardInterrupt from None
        raise exc from SupervisorError(
            f"worker {slot.slot_id} traceback:\n{tb_text}"
        )

    # -- watchdog ------------------------------------------------------

    def _check_watchdog(self) -> None:
        now = time.monotonic()
        for slot in self._live_slots():
            if slot.kill_cause is not None:
                continue  # already killed; waiting for the reaper
            if (
                slot.inflight is not None
                and slot.deadline is not None
                and now > slot.deadline
            ):
                self._inc("timeouts")
                slot.kill_cause = (
                    f"cell timeout after {self.config.cell_timeout:g}s"
                )
                slot.process.kill()
            elif (
                now - slot.last_ping > self.config.heartbeat_timeout
            ):
                self._inc("heartbeats_lost")
                slot.kill_cause = (
                    f"heartbeat lost for {self.config.heartbeat_timeout:g}s"
                )
                slot.process.kill()

    def _reap_dead(self) -> None:
        for slot in self.slots:
            if slot.retired or slot.process is None:
                continue
            if slot.process.is_alive():
                continue
            # Drain any result that raced the death before declaring
            # the in-flight cell lost.
            self._drain_slot(slot)
            exitcode = slot.process.exitcode
            cause = slot.kill_cause or f"worker died (exitcode {exitcode})"
            if slot.kill_cause is None:
                self._inc("worker_deaths")
            slot.deaths += 1
            self._emit(
                "worker-death", slot=slot.slot_id, cause=cause,
                exitcode=exitcode, deaths=slot.deaths,
                death_cap=self.config.worker_death_cap,
            )
            if slot.inflight is not None:
                index, _attempt = slot.inflight
                slot.inflight = None
                slot.deadline = None
                slot.started = None
                self._fail(index, cause)
            if slot.conn is not None:
                slot.conn.close()
                slot.conn = None
            if slot.deaths > self.config.worker_death_cap:
                slot.retired = True
                slot.process = None
                remaining = len(self._live_slots())
                self._emit(
                    "worker-retire", slot=slot.slot_id,
                    deaths=slot.deaths, remaining=remaining,
                )
                if remaining == 0 and self._outstanding() > 0:
                    raise SupervisorError(
                        "every worker slot is permanently dead with "
                        f"{self._outstanding()} cell(s) outstanding"
                    )
            else:
                self._inc("worker_restarts")
                self._spawn(slot)

    def _fail(self, index: int, cause: str) -> None:
        self.causes[index].append(cause)
        used = self.attempts[index]  # attempts already started
        if used <= self.config.max_retries:
            self._inc("retries")
            key = _key_of(self.cells[index])
            self.not_before[index] = time.monotonic() + retry_backoff(
                key, used - 1,
                base=self.config.backoff_base,
                cap=self.config.backoff_cap,
            )
            self.pending.insert(0, index)
            self._emit(
                "cell-retry", index=index, key=key,
                cause=cause, attempt=used,
                max_retries=self.config.max_retries,
            )
        else:
            self._inc("quarantines")
            record = QuarantineRecord(
                index=index,
                key=_key_of(self.cells[index]),
                label=_label_of(self.cells[index]),
                attempts=used,
                causes=list(self.causes[index]),
            )
            self.quarantined.append(record)
            self._emit(
                "cell-quarantine", index=index, key=record.key,
                label=record.label, attempts=used, cause=cause,
                causes=list(record.causes),
            )


def _key_of(cell) -> str:
    from repro.experiments.runner import cell_key

    return cell_key(cell)


def _label_of(cell) -> str:
    from repro.experiments.runner import _cell_label

    return _cell_label(cell)


def supervise_cells(
    cell_list: List[Any],
    todo: List[int],
    workers: int,
    config: Optional[SupervisorConfig] = None,
    cache_dir: Optional[str] = None,
    on_finish: Optional[Callable[[int, Any], None]] = None,
    progress: Optional[Callable[[str], None]] = None,
    ledger=None,
) -> SweepResult:
    """Run ``cell_list[i] for i in todo`` under supervision.

    Returns a :class:`SweepResult` whose ``results`` list lines up
    with ``todo`` (quarantined cells hold ``None``).  This is the
    non-raising API; :func:`repro.experiments.runner.run_cells` wraps
    it and raises :class:`~repro.errors.QuarantineError` by default.
    Pass a :class:`~repro.obs.ledger.Ledger` to narrate every
    lifecycle event (``progress`` is kept for API compatibility; the
    ledger's console renderer supersedes it).
    """
    supervisor = Supervisor(
        cell_list, todo, workers,
        config or SupervisorConfig(),
        cache_dir=cache_dir, on_finish=on_finish, progress=progress,
        ledger=ledger,
    )
    return supervisor.run()
