"""Registry mapping experiment ids to their runner functions.

Each runner takes keyword arguments (``runs``, ``seed``, scaled-down
axes for quick checks) and returns a report object with a
``render()`` method; the CLI and the benchmark suite both go through
this table.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError


def _fig1(**kwargs):
    from repro.experiments.fig1_schedules import run_fig1

    return run_fig1(**kwargs)


def _fig2(**kwargs):
    from repro.experiments.fig2_baseline import run_fig2

    return run_fig2(**kwargs)


def _fig3(**kwargs):
    from repro.experiments.fig3_worstcase import run_fig3

    return run_fig3(**kwargs)


def _fig4(**kwargs):
    from repro.experiments.fig4_memory_sweep import run_fig4

    return run_fig4(**kwargs)


def _natjam(**kwargs):
    from repro.experiments.natjam_overhead import run_natjam_overhead

    return run_natjam_overhead(**kwargs)


def _eviction(**kwargs):
    from repro.experiments.eviction_study import run_eviction_study

    return run_eviction_study(**kwargs)


def _hfsp(**kwargs):
    from repro.experiments.hfsp_study import run_hfsp_study

    return run_hfsp_study(**kwargs)


def _swappiness(**kwargs):
    from repro.experiments.swappiness_study import run_swappiness_study

    return run_swappiness_study(**kwargs)


def _gc(**kwargs):
    from repro.experiments.gc_study import run_gc_study

    return run_gc_study(**kwargs)


def _adaptive(**kwargs):
    from repro.experiments.adaptive_study import run_adaptive_study

    return run_adaptive_study(**kwargs)


EXPERIMENTS: Dict[str, Callable] = {
    "fig1": _fig1,
    "fig2": _fig2,
    "fig3": _fig3,
    "fig4": _fig4,
    "natjam": _natjam,
    "eviction": _eviction,
    "hfsp": _hfsp,
    "swappiness": _swappiness,
    "gc": _gc,
    "adaptive": _adaptive,
}

#: aliases accepted by the CLI
ALIASES = {
    "1": "fig1",
    "2": "fig2",
    "2a": "fig2",
    "2b": "fig2",
    "3": "fig3",
    "3a": "fig3",
    "3b": "fig3",
    "4": "fig4",
    "e5": "natjam",
    "e6": "eviction",
    "e7": "hfsp",
}


def get_experiment(name: str) -> Callable:
    """Resolve an experiment id or alias to its runner."""
    key = ALIASES.get(name.lower(), name.lower())
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def list_experiments() -> List[str]:
    """Registered experiment ids."""
    return sorted(EXPERIMENTS)
