"""Registry mapping experiment ids to their runner functions.

Each runner takes keyword arguments (``runs``, ``seed``, scaled-down
axes for quick checks) and returns a report object with a
``render()`` method; the CLI and the benchmark suite both go through
this table.  Runners are held as :class:`LazyRunner` proxies so the
experiment modules import only when actually executed, while callers
(the CLI's ``--seed`` plumbing) can still inspect the real signature
via :meth:`LazyRunner.resolve`.
"""

from __future__ import annotations

import importlib
from typing import Dict, List

from repro.errors import ConfigurationError


class LazyRunner:
    """A callable proxy that imports its experiment module on demand."""

    def __init__(self, module: str, attr: str):
        self.module = module
        self.attr = attr

    def resolve(self):
        """The real runner function (imports the module on first use)."""
        return getattr(importlib.import_module(self.module), self.attr)

    def __call__(self, **kwargs):
        return self.resolve()(**kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LazyRunner({self.module}.{self.attr})"


EXPERIMENTS: Dict[str, LazyRunner] = {
    "fig1": LazyRunner("repro.experiments.fig1_schedules", "run_fig1"),
    "fig2": LazyRunner("repro.experiments.fig2_baseline", "run_fig2"),
    "fig3": LazyRunner("repro.experiments.fig3_worstcase", "run_fig3"),
    "fig4": LazyRunner("repro.experiments.fig4_memory_sweep", "run_fig4"),
    "natjam": LazyRunner(
        "repro.experiments.natjam_overhead", "run_natjam_overhead"
    ),
    "eviction": LazyRunner(
        "repro.experiments.eviction_study", "run_eviction_study"
    ),
    "hfsp": LazyRunner("repro.experiments.hfsp_study", "run_hfsp_study"),
    "swappiness": LazyRunner(
        "repro.experiments.swappiness_study", "run_swappiness_study"
    ),
    "gc": LazyRunner("repro.experiments.gc_study", "run_gc_study"),
    "adaptive": LazyRunner(
        "repro.experiments.adaptive_study", "run_adaptive_study"
    ),
    "faults": LazyRunner("repro.experiments.faults_study", "run_faults_study"),
    "scale": LazyRunner("repro.experiments.scale_study", "run_scale_study"),
    "shuffle": LazyRunner(
        "repro.experiments.shuffle_study", "run_shuffle_study"
    ),
    "memscale": LazyRunner(
        "repro.experiments.memscale_study", "run_memscale_study"
    ),
}

#: one-line summaries printed by ``repro list`` (kept here, next to
#: the registry, so adding an experiment without a description is a
#: visible omission rather than a silent one)
DESCRIPTIONS: Dict[str, str] = {
    "fig1": "Gantt charts of the two-job microbenchmark schedules (Figure 1)",
    "fig2": "baseline two-job sweep: th sojourn and makespan vs tl progress (Figure 2)",
    "fig3": "worst-case sweep with 2 GB memory-hungry tasks (Figure 3)",
    "fig4": "suspended-footprint memory sweep: bytes paged to swap (Figure 4)",
    "natjam": "checkpoint-based (Natjam-style) preemption overhead comparison",
    "eviction": "eviction-policy study: which running task to preempt",
    "hfsp": "HFSP size-based scheduling with each preemption primitive",
    "swappiness": "vm.swappiness sensitivity of the suspend primitive",
    "gc": "GC policy (hoarding vs releasing collector) suspended-footprint study",
    "adaptive": "adaptive primitive selection by task progress",
    "faults": "fault injection and recovery: crashes, slow nodes, task failures",
    "scale": "cluster-at-scale SWIM replay (25/100/400 trackers, HFSP)",
    "shuffle": "network-contention study: shuffle flows on oversubscribed uplinks",
    "memscale": (
        "memory-oversubscription study: swap-aware suspend admission "
        "vs ungated SIGTSTP"
    ),
}

#: aliases accepted by the CLI
ALIASES = {
    "1": "fig1",
    "2": "fig2",
    "2a": "fig2",
    "2b": "fig2",
    "3": "fig3",
    "3a": "fig3",
    "3b": "fig3",
    "4": "fig4",
    "e5": "natjam",
    "e6": "eviction",
    "e7": "hfsp",
    "e8": "faults",
    "faults_study": "faults",
    "e9": "scale",
    "scale_study": "scale",
    "e10": "shuffle",
    "shuffle_study": "shuffle",
    "netmodel": "shuffle",
    "e11": "memscale",
    "memscale_study": "memscale",
    "memory": "memscale",
}


def resolve_name(name: str) -> str:
    """Canonical experiment id for a name or alias."""
    key = ALIASES.get(name.lower(), name.lower())
    if key not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return key


def get_experiment(name: str) -> LazyRunner:
    """Resolve an experiment id or alias to its runner."""
    return EXPERIMENTS[resolve_name(name)]


def list_experiments() -> List[str]:
    """Registered experiment ids."""
    return sorted(EXPERIMENTS)


def describe_experiment(name: str) -> str:
    """One-line description of an experiment id."""
    return DESCRIPTIONS.get(resolve_name(name), "")
