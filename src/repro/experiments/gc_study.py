"""GC-policy ablation (Section V-B, "Controlling Memory Footprint").

"Java garbage collectors differ in the way they are implemented: some
of them release memory to the OS when they stop using it, others do
not.  It is therefore a good idea to configure Java to use a garbage
collector that does release memory, such as the new G1
implementation."

The ablation compares a hoarding collector (ParallelOld-style: the
heap keeps ``jvm_heap_slack`` of garbage on top of the live state)
with a releasing collector (G1-style: garbage is returned to the OS)
under the worst-case suspension benchmark.  The smaller suspended
footprint of the releasing collector translates directly into fewer
paged bytes and lower overheads.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import params as P
from repro.experiments.harness import TwoJobHarness
from repro.experiments.report import ExperimentReport
from repro.hadoop.jvm import GcPolicy
from repro.metrics.series import Series
from repro.units import MB


def run_gc_study(
    runs: int = 5,
    heap_slack: float = 0.25,
    progress_at_launch: float = 0.5,
    base_seed: int = 8000,
) -> ExperimentReport:
    """Heavy two-job benchmark under both collector behaviours."""
    paged: List[float] = []
    makespans: List[float] = []
    labels: List[str] = []
    for policy, slack in ((GcPolicy.HOARD, heap_slack), (GcPolicy.RELEASE, 0.0)):
        hadoop_config = P.paper_hadoop_config().replace(jvm_heap_slack=slack)
        harness = TwoJobHarness(
            primitive="suspend",
            progress_at_launch=progress_at_launch,
            heavy=True,
            runs=runs,
            base_seed=base_seed,
            hadoop_config=hadoop_config,
        )
        harness.gc_policy = policy
        result = harness.run()
        paged.append(result.tl_paged_bytes.mean / MB)
        makespans.append(result.makespan.mean)
        labels.append(policy.value)

    series = Series(
        name="gc-study",
        x_label="collector index",
        y_label="seconds / MB",
        x_values=[0.0, 1.0],
    )
    series.add_curve("tl paged (MB)", paged)
    series.add_curve("makespan (s)", makespans)

    report = ExperimentReport(
        experiment_id="gc",
        title="garbage-collector ablation: hoarding vs releasing heap",
        paper_expectation=(
            "a collector that releases memory (G1-style) keeps the "
            "suspended footprint smaller, so less is paged and the "
            "makespan overhead shrinks"
        ),
    )
    report.add_series(series)
    for index, label in enumerate(labels):
        report.add_note(f"collector {index}: {label}")
    report.add_note(
        f"paged: hoard {paged[0]:.0f} MB vs release {paged[1]:.0f} MB"
    )
    report.extras["paged_mb"] = dict(zip(labels, paged))
    report.extras["makespans"] = dict(zip(labels, makespans))
    return report
