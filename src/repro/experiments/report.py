"""Experiment report container.

Every experiment returns an :class:`ExperimentReport`: the series
behind the figure, rendered tables/plots, free-text notes, and the
paper's expected shape so EXPERIMENTS.md can juxtapose them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.report import ascii_plot, series_table, series_to_csv
from repro.metrics.series import Series


@dataclass
class ExperimentReport:
    """The output of one experiment run."""

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_expectation: str = ""
    extras: Dict[str, object] = field(default_factory=dict)

    def add_series(self, series: Series) -> None:
        """Attach one figure's curves."""
        self.series.append(series)

    def add_note(self, note: str) -> None:
        """Attach a free-text observation."""
        self.notes.append(note)

    def render(self, plots: bool = True) -> str:
        """Human-readable report: tables, optional ASCII plots, notes."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.paper_expectation:
            parts.append(f"paper expectation: {self.paper_expectation}")
        for series in self.series:
            parts.append("")
            parts.append(f"-- {series.name} ({series.y_label} vs {series.x_label}) --")
            parts.append(series_table(series))
            if plots:
                parts.append(ascii_plot(series))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def to_csv(self) -> Dict[str, str]:
        """CSV text per series, keyed by series name."""
        return {series.name: series_to_csv(series) for series in self.series}

    def find_series(self, name: str) -> Optional[Series]:
        """Look up a series by name."""
        for series in self.series:
            if series.name == name:
                return series
        return None
