"""Shared drive-loop helpers for the replay studies.

Every study drives its cluster the same way: register a completion
tally with the jobtracker, then step the simulation until every
generated job is terminal (the generic run-until helper would stop
early if the cluster drained while a late arrival was still on the
event heap).  The tally is a module-level class rather than a closure
so a mid-run cluster pickles for checkpointing, and the loop itself is
reused by the checkpoint continuation path (``repro resume``).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class CompletionCounter:
    """Picklable job-completion tally registered with the jobtracker."""

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def __call__(self, job) -> None:
        self.count += 1


def install_counter(cluster) -> CompletionCounter:
    """Create a counter and register it for job completions."""
    counter = CompletionCounter()
    cluster.jobtracker.on_job_complete(counter)
    return counter


def find_counter(cluster) -> CompletionCounter:
    """The counter a (restored) cluster carries.

    Raises :class:`ConfigurationError` when the cluster was not driven
    through :func:`install_counter` -- the continuation path needs the
    tally to know when to stop.
    """
    for callback in cluster.jobtracker._completion_callbacks:
        if isinstance(callback, CompletionCounter):
            return callback
    raise ConfigurationError(
        "cluster carries no CompletionCounter; it was not built by a "
        "study drive loop"
    )


def drive_to_completion(
    cluster,
    counter: CompletionCounter,
    num_jobs: int,
    what: str,
    deadline_seconds: float = 86_400.0,
) -> None:
    """Step the simulation until ``num_jobs`` completions are tallied.

    Raises :class:`ConfigurationError` when more than
    ``deadline_seconds`` of simulated time pass first (a deadlock
    guard, identical to the studies' historical inline loops).
    """
    cluster.start()
    deadline = cluster.sim.now + deadline_seconds
    while counter.count < num_jobs:
        if cluster.sim.now >= deadline:
            raise ConfigurationError(
                f"{what} still running after "
                f"{deadline_seconds:.0f}s of simulated time"
            )
        if not cluster.sim.step():
            break
