"""Shared drive-loop helpers for the replay studies.

Every study drives its cluster the same way: register a completion
tally with the jobtracker, then step the simulation until every
generated job is terminal (the generic run-until helper would stop
early if the cluster drained while a late arrival was still on the
event heap).  The tally is a module-level class rather than a closure
so a mid-run cluster pickles for checkpointing, and the loop itself is
reused by the checkpoint continuation path (``repro resume``).

The loop is also where supervised sweeps auto-snapshot long cells:
:func:`set_autosnapshot` arms a per-process hook that persists the
whole cluster every ``every`` *virtual* seconds.  The snapshot happens
**between** engine steps -- never as a scheduled event -- because a
snapshot event would bump ``events_fired`` and write a TraceLog
record, and then a resumed or chaos-disturbed run could no longer be
byte-identical to an undisturbed one.  Observation stays outside the
event heap; that is the determinism rule.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import ConfigurationError


class CompletionCounter:
    """Picklable job-completion tally registered with the jobtracker."""

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def __call__(self, job) -> None:
        self.count += 1


def install_counter(cluster) -> CompletionCounter:
    """Create a counter and register it for job completions."""
    counter = CompletionCounter()
    cluster.jobtracker.on_job_complete(counter)
    return counter


def find_counter(cluster) -> CompletionCounter:
    """The counter a (restored) cluster carries.

    Raises :class:`ConfigurationError` when the cluster was not driven
    through :func:`install_counter` -- the continuation path needs the
    tally to know when to stop.
    """
    for callback in cluster.jobtracker._completion_callbacks:
        if isinstance(callback, CompletionCounter):
            return callback
    raise ConfigurationError(
        "cluster carries no CompletionCounter; it was not built by a "
        "study drive loop"
    )


# ----------------------------------------------------------------------
# Mid-cell auto-snapshot (armed per worker process by the supervisor)
# ----------------------------------------------------------------------

#: ``(path, every_virtual_seconds, meta)`` or None; module-level like
#: the runner's progress/cache state so the worker arms it once per
#: cell without threading a parameter through every study signature
_autosnapshot: Optional[Dict[str, Any]] = None


def set_autosnapshot(
    path: Optional[str],
    every: float = 0.0,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Arm (or, with ``path=None``, disarm) mid-cell auto-snapshots.

    While armed, :func:`drive_to_completion` atomically rewrites
    ``path`` with a full checkpoint of the cluster every ``every``
    virtual seconds; ``meta`` must be a continuation recipe
    :func:`repro.checkpoint.cells.finish_cell` understands, so a
    crashed shard can restore the file and finish the cell instead of
    re-running it from zero.
    """
    global _autosnapshot
    if path is None:
        _autosnapshot = None
        return
    if every <= 0:
        raise ConfigurationError(
            f"autosnapshot interval must be > 0 virtual seconds, got {every}"
        )
    _autosnapshot = {"path": path, "every": float(every),
                     "meta": dict(meta or {})}


def autosnapshot_state() -> Optional[Dict[str, Any]]:
    """The armed auto-snapshot hook (None when disarmed)."""
    return _autosnapshot


def _write_midcell_snapshot(cluster, state: Dict[str, Any]) -> None:
    """Persist one mid-cell checkpoint (atomic via checkpoint.core)."""
    from repro.checkpoint.core import save

    meta = dict(state["meta"])
    meta["midcell_now"] = cluster.sim.now
    save(cluster, state["path"], meta=meta)
    # Narrate the write to the sweep ledger (armed per worker process
    # by the supervisor).  Ledger appends happen *between* engine
    # steps, exactly like the snapshot itself -- trace-silent.
    from repro.obs.ledger import process_ledger

    ledger = process_ledger()
    if ledger is not None:
        ledger.emit(
            "snapshot", path=state["path"],
            virtual_now=round(cluster.sim.now, 6),
        )


def drive_to_completion(
    cluster,
    counter: CompletionCounter,
    num_jobs: int,
    what: str,
    deadline_seconds: float = 86_400.0,
) -> None:
    """Step the simulation until ``num_jobs`` completions are tallied.

    Raises :class:`ConfigurationError` when more than
    ``deadline_seconds`` of simulated time pass first (a deadlock
    guard, identical to the studies' historical inline loops).

    When an auto-snapshot hook is armed (:func:`set_autosnapshot`) the
    loop persists the cluster between steps whenever the clock crosses
    the next interval boundary -- trace- and event-silent, so the
    driven run is byte-identical with the hook on or off.
    """
    cluster.start()
    deadline = cluster.sim.now + deadline_seconds
    snap = _autosnapshot
    next_due = (
        cluster.sim.now + snap["every"] if snap is not None else float("inf")
    )
    while counter.count < num_jobs:
        if cluster.sim.now >= deadline:
            raise ConfigurationError(
                f"{what} still running after "
                f"{deadline_seconds:.0f}s of simulated time"
            )
        if snap is not None and cluster.sim.now >= next_due:
            _write_midcell_snapshot(cluster, snap)
            next_due = cluster.sim.now + snap["every"]
        if not cluster.sim.step():
            break
