"""Swappiness ablation (Section III-A / IV-A configuration note).

The paper configures the kernel the Hadoop way: "we prioritize runtime
memory over disk cache and therefore limit swapping ... by setting the
Linux swappiness parameter to 0".  This ablation quantifies why: with
a higher swappiness the reclaimer takes process pages while file-cache
pages remain, so the suspended task (and even the running one) hits
swap sooner, inflating exactly the overheads Figures 3-4 measure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import params as P
from repro.experiments.harness import TwoJobHarness
from repro.experiments.report import ExperimentReport
from repro.metrics.series import Series
from repro.units import MB


def run_swappiness_study(
    runs: int = 5,
    swappiness_values: Optional[List[int]] = None,
    progress_at_launch: float = 0.5,
    base_seed: int = 7000,
) -> ExperimentReport:
    """Two-job benchmark swept over the swappiness knob.

    The scenario is chosen so the page cache *could* absorb the
    pressure entirely: tl allocates 2.5 GB (suspended), th allocates
    only 512 MB.  At swappiness 0 the cache gives way and tl stays in
    RAM; at higher values the reclaimer protects cache pages and takes
    tl's memory instead -- the failure mode the Hadoop best practice
    avoids.
    """
    values = swappiness_values or [0, 30, 60, 90]
    paged: List[float] = []
    makespans: List[float] = []
    sojourns: List[float] = []
    for swappiness in values:
        node_config = P.paper_node_config().replace(swappiness=swappiness)
        harness = TwoJobHarness(
            primitive="suspend",
            progress_at_launch=progress_at_launch,
            heavy=True,
            tl_footprint=P.FIG4_TL_FOOTPRINT,
            th_footprint=512 * MB,
            runs=runs,
            base_seed=base_seed,
            node_config=node_config,
        )
        result = harness.run()
        paged.append(result.tl_paged_bytes.mean / MB)
        makespans.append(result.makespan.mean)
        sojourns.append(result.sojourn_th.mean)

    series = Series(
        name="swappiness-study",
        x_label="swappiness",
        y_label="seconds / MB",
        x_values=[float(v) for v in values],
    )
    series.add_curve("tl paged (MB)", paged)
    series.add_curve("makespan (s)", makespans)
    series.add_curve("th sojourn (s)", sojourns)

    report = ExperimentReport(
        experiment_id="swappiness",
        title="swappiness ablation under suspension (heavy tasks)",
        paper_expectation=(
            "swappiness 0 (the paper's setting) minimises paging: higher "
            "values evict process pages while cache remains, inflating "
            "swap volume and both overheads"
        ),
    )
    report.add_series(series)
    report.add_note(
        f"paged bytes at swappiness {values[0]}: {paged[0]:.0f} MB vs "
        f"{values[-1]}: {paged[-1]:.0f} MB"
    )
    report.extras["values"] = values
    report.extras["paged_mb"] = paged
    report.extras["makespans"] = makespans
    return report
