"""Per-cell metric sketches for the replay studies.

Every replay cell (``scale`` / ``shuffle`` / ``memscale``) streams its
per-job sojourns and scalar outcomes into a
:class:`~repro.telemetry.registry.MetricRegistry` and ships the
JSON-able snapshot back in its result dict under ``"sketch"``.  The
parent folds the shard sketches into one registry --
:func:`merge_sketches` -- whose digest is byte-identical for any
``--workers`` count or merge order (the registry's exact-arithmetic
guarantee), giving the sweeps distribution-level reporting (p50/p95
over *jobs*, not just per-cell means) without materialising a sojourn
list per cell.

The sketch rides alongside the historical scalar metrics; it never
feeds them, so every pre-existing metrics digest is unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.telemetry.registry import MetricRegistry

#: scalar outcomes recorded as one histogram sample per cell (floats;
#: the exact histogram sum reconstructs the sweep total)
FLOAT_KEYS = (
    "makespan",
    "wasted",
    "wasted_net_mb",
    "swap_out_mb",
    "peak_suspended_mb",
)

#: scalar outcomes recorded as counters (integer totals across cells)
COUNT_KEYS = (
    "preemptions",
    "jobs_completed",
    "events",
    "oom_kills",
    "suspend_denials",
    "jobs_failed",
)


def cell_sketch(
    prefix: str,
    sojourns: Iterable[float],
    small_sojourns: Iterable[float],
    out: Dict[str, float],
) -> Dict:
    """Sketch one cell's outcomes under ``prefix`` (the cell's
    coordinate path, e.g. ``baseline/50/suspend/``)."""
    registry = MetricRegistry()
    sojourn_hist = registry.histogram(prefix + "sojourn")
    for value in sojourns:
        sojourn_hist.observe(value)
    small_hist = registry.histogram(prefix + "small_sojourn")
    for value in small_sojourns:
        small_hist.observe(value)
    for key in FLOAT_KEYS:
        if key in out:
            registry.observe(prefix + key, float(out[key]))
    for key in COUNT_KEYS:
        if key in out:
            registry.counter(prefix + key).inc(int(out[key]))
    return registry.to_dict()


def merge_sketches(results: Iterable[Dict]) -> MetricRegistry:
    """Fold the ``"sketch"`` payloads of a result list into one
    registry (order-insensitive by construction)."""
    merged = MetricRegistry()
    for out in results:
        payload = out.get("sketch")
        if payload:
            merged.merge(MetricRegistry.from_dict(payload))
    return merged


def sweep_sojourns(registry: MetricRegistry) -> List[str]:
    """Human-readable p50/p95 lines for every ``*/sojourn`` histogram
    in a merged sweep registry."""
    lines = []
    for name in registry.names():
        if not name.endswith("/sojourn"):
            continue
        hist = registry.histogram(name)
        if hist.count == 0:
            continue
        lines.append(
            f"{name[:-len('/sojourn')]}: n={hist.count} "
            f"mean={hist.mean():.1f}s p50={hist.quantile(0.5):.1f}s "
            f"p95={hist.quantile(0.95):.1f}s"
        )
    return lines
