"""Figure 4: paging overheads as a function of memory footprint.

"In our experiments tl allocates 2.5 GB of memory, and we parametrize
over the amount of memory th allocates.  For each experimental run, we
measure the number of bytes swapped by the process executing tl, and
compute the degradation of sojourn time and makespan compared to the
kill and wait primitives, respectively.  Figure 4 indicates that the
overheads due to paging are roughly linearly correlated to the amount
of data swapped to disk ... we note that swapped data grows more than
linearly because of an approximate implementation of the page
replacement algorithm."
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import params as P
from repro.experiments.harness import TwoJobHarness
from repro.experiments.report import ExperimentReport
from repro.metrics.series import Series
from repro.units import MB


def run_fig4(
    runs: int = P.PAPER_RUNS,
    memory_points: Optional[List[int]] = None,
    tl_footprint: int = P.FIG4_TL_FOOTPRINT,
    progress_at_launch: float = 0.5,
    base_seed: int = 3000,
) -> ExperimentReport:
    """Regenerate Figure 4: swap volume and overheads vs th's memory."""
    points = memory_points if memory_points is not None else P.PAPER_MEMORY_POINTS

    paged_mb: List[float] = []
    sojourn_overhead: List[float] = []
    makespan_overhead: List[float] = []
    for th_footprint in points:
        shared = dict(
            progress_at_launch=progress_at_launch,
            heavy=True,
            tl_footprint=tl_footprint,
            th_footprint=th_footprint,
            runs=runs,
            base_seed=base_seed,
        )
        suspend = TwoJobHarness(primitive="suspend", **shared).run()
        kill = TwoJobHarness(primitive="kill", **shared).run()
        wait = TwoJobHarness(primitive="wait", **shared).run()
        paged_mb.append(suspend.tl_paged_bytes.mean / MB)
        sojourn_overhead.append(suspend.sojourn_th.mean - kill.sojourn_th.mean)
        makespan_overhead.append(suspend.makespan.mean - wait.makespan.mean)

    x_mb = [p / MB for p in points]
    swap_series = Series(
        name="fig4-paged-bytes",
        x_label="memory allocated by th (MB)",
        y_label="paged bytes (MB)",
        x_values=x_mb,
    )
    swap_series.add_curve("swap", paged_mb)

    overhead_series = Series(
        name="fig4-overheads",
        x_label="memory allocated by th (MB)",
        y_label="overhead (s)",
        x_values=x_mb,
    )
    overhead_series.add_curve("th sojourn time", sojourn_overhead)
    overhead_series.add_curve("makespan", makespan_overhead)

    report = ExperimentReport(
        experiment_id="fig4",
        title="overheads when varying memory usage",
        paper_expectation=(
            "swap grows more than linearly with th's allocation (up to "
            "~1.6 GB); overheads grow roughly linearly with swapped bytes "
            "(worst case ~20% sojourn vs kill, ~12% makespan vs wait)"
        ),
    )
    report.add_series(swap_series)
    report.add_series(overhead_series)

    if len(points) >= 2 and paged_mb[-1] > 0:
        # Linearity note: overhead per swapped MB at the two largest points.
        per_mb = [
            makespan_overhead[i] / paged_mb[i]
            for i in range(len(points))
            if paged_mb[i] > 100
        ]
        if per_mb:
            spread = (max(per_mb) - min(per_mb)) / max(per_mb)
            report.add_note(
                f"makespan overhead per swapped MB varies by "
                f"{spread * 100:.0f}% across the sweep (roughly linear)"
            )
    report.extras["paged_mb"] = paged_mb
    report.extras["sojourn_overhead"] = sojourn_overhead
    report.extras["makespan_overhead"] = makespan_overhead
    return report
