"""SWIM-like synthetic workload generation.

The paper references the SWIM workload generator (Chen et al.,
MASCOTS 2011) as the model for its synthetic jobs.  SWIM derives job
mixes from production traces: many small jobs, a long tail of large
ones, Poisson-ish arrivals.  This module generates such mixes for the
scheduler-level experiments (eviction-policy study, HFSP study, the
cluster-at-scale study); the two-job microbenchmark in
:mod:`repro.workloads.synthetic` covers the paper's own figures.

Beyond the original small-study mix, the module carries a
trace-calibrated Facebook-style mix (heavy-tailed job sizes with
shuffle-heavy reduce phases on the large bins, after the binning used
by Pastorelli et al. for HFSP) and non-Poisson arrival processes:
bursty compound arrivals and diurnal rate modulation, both fully
seeded through the simulation's :class:`~repro.sim.rng.RngStream`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.rng import RngStream
from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec


@dataclass
class SwimJobClass:
    """One bin of the job-size histogram.

    ``weight`` is the class's share of generated jobs; task counts and
    sizes are drawn uniformly from the given ranges, mirroring how
    SWIM bins Facebook trace jobs.  ``num_reduces`` and
    ``shuffle_fraction`` describe the class's reduce phase: each job
    shuffles ``shuffle_fraction`` of its total map input, split evenly
    over its reduce tasks (zero reduces = a map-only bin).
    ``reduce_footprint_bytes`` makes the reduces *stateful*: each
    draws that much anonymous memory (aggregation state held across
    the whole reduce), which is what puts a class's reduces in play
    for the memory-oversubscription study.
    """

    name: str
    weight: float
    num_tasks: range = field(default_factory=lambda: range(1, 3))
    input_bytes: tuple = (64 * MB, 512 * MB)
    footprint_bytes: tuple = (0, 0)
    parse_rate: tuple = (6 * MB, 9 * MB)
    num_reduces: range = field(default_factory=lambda: range(0, 1))
    shuffle_fraction: tuple = (0.0, 0.0)
    reduce_footprint_bytes: tuple = (0, 0)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("class weight must be positive")
        if self.num_reduces.start < 0:
            raise ConfigurationError("num_reduces may not be negative")
        lo, hi = self.shuffle_fraction
        if not 0.0 <= lo <= hi <= 1.0:
            raise ConfigurationError(
                "shuffle_fraction must be an ordered pair within [0, 1]"
            )
        lo, hi = self.reduce_footprint_bytes
        if not 0 <= lo <= hi:
            raise ConfigurationError(
                "reduce_footprint_bytes must be an ordered non-negative pair"
            )

    @property
    def max_reduces(self) -> int:
        """Largest reduce count the class can draw."""
        return max(self.num_reduces.stop - 1, 0)


#: A small default mix: mostly tiny jobs, some medium, few large --
#: the canonical heavy-tailed MapReduce mix SWIM reports.
DEFAULT_CLASSES: List[SwimJobClass] = [
    SwimJobClass("small", weight=0.6, num_tasks=range(1, 3),
                 input_bytes=(64 * MB, 256 * MB)),
    SwimJobClass("medium", weight=0.3, num_tasks=range(2, 6),
                 input_bytes=(256 * MB, 512 * MB)),
    SwimJobClass("large", weight=0.1, num_tasks=range(4, 10),
                 input_bytes=(512 * MB, 1024 * MB),
                 footprint_bytes=(0, int(1.5 * GB))),
]

#: Facebook-2009-flavoured bins for cluster-scale replays: the tiny
#: map-only majority, a shuffle-bearing middle, and a long tail of
#: large shuffle-heavy jobs (binning after Pastorelli et al.'s SWIM
#: treatment; absolute sizes scaled to this simulator's task bodies).
FACEBOOK_CLASSES: List[SwimJobClass] = [
    SwimJobClass("tiny", weight=0.55, num_tasks=range(1, 3),
                 input_bytes=(32 * MB, 128 * MB)),
    SwimJobClass("small", weight=0.25, num_tasks=range(2, 8),
                 input_bytes=(64 * MB, 256 * MB),
                 num_reduces=range(0, 2), shuffle_fraction=(0.1, 0.3)),
    SwimJobClass("medium", weight=0.12, num_tasks=range(8, 24),
                 input_bytes=(128 * MB, 512 * MB),
                 num_reduces=range(1, 4), shuffle_fraction=(0.2, 0.5)),
    SwimJobClass("large", weight=0.06, num_tasks=range(24, 64),
                 input_bytes=(256 * MB, 768 * MB),
                 num_reduces=range(2, 8), shuffle_fraction=(0.4, 0.8)),
    SwimJobClass("huge", weight=0.02, num_tasks=range(64, 128),
                 input_bytes=(384 * MB, 1024 * MB),
                 footprint_bytes=(0, int(1.5 * GB)),
                 num_reduces=range(4, 12), shuffle_fraction=(0.5, 0.9)),
]

#: Every reduce phase dominant: the mix that stresses shuffle traffic
#: and reduce-slot contention rather than map throughput.
SHUFFLE_HEAVY_CLASSES: List[SwimJobClass] = [
    SwimJobClass("etl", weight=0.5, num_tasks=range(2, 8),
                 input_bytes=(128 * MB, 384 * MB),
                 num_reduces=range(1, 4), shuffle_fraction=(0.5, 0.9)),
    SwimJobClass("join", weight=0.35, num_tasks=range(4, 16),
                 input_bytes=(256 * MB, 512 * MB),
                 num_reduces=range(2, 6), shuffle_fraction=(0.6, 0.95)),
    SwimJobClass("aggregate", weight=0.15, num_tasks=range(8, 32),
                 input_bytes=(256 * MB, 768 * MB),
                 num_reduces=range(4, 10), shuffle_fraction=(0.7, 1.0)),
]

#: The FACEBOOK mix with memory-hungry *stateful* bodies: reduce-
#: bearing bins hold large in-memory aggregation state and their maps
#: carry moderate footprints, so task slots hold multi-hundred-MB
#: resident sets -- the workload of the memory-oversubscription
#: (``memscale``) study.  Footprints are sized so a node's *running*
#: set (2 map slots + 1 reduce slot at the class maxima, plus JVM
#: bases) always fits in the study's RAM + swap: wait/kill replays
#: never OOM on their own, and only suspend *stacking* can
#: oversubscribe a node past Section III-A's constraint.
MEMORY_HEAVY_CLASSES: List[SwimJobClass] = [
    SwimJobClass("tiny", weight=0.50, num_tasks=range(1, 3),
                 input_bytes=(32 * MB, 128 * MB)),
    SwimJobClass("small", weight=0.25, num_tasks=range(2, 8),
                 input_bytes=(64 * MB, 256 * MB),
                 num_reduces=range(1, 2), shuffle_fraction=(0.1, 0.3),
                 reduce_footprint_bytes=(256 * MB, 512 * MB)),
    SwimJobClass("medium", weight=0.15, num_tasks=range(8, 24),
                 input_bytes=(128 * MB, 512 * MB),
                 footprint_bytes=(256 * MB, 384 * MB),
                 num_reduces=range(1, 4), shuffle_fraction=(0.2, 0.5),
                 reduce_footprint_bytes=(512 * MB, 896 * MB)),
    SwimJobClass("large", weight=0.08, num_tasks=range(24, 64),
                 input_bytes=(256 * MB, 768 * MB),
                 footprint_bytes=(320 * MB, 512 * MB),
                 num_reduces=range(2, 8), shuffle_fraction=(0.4, 0.8),
                 reduce_footprint_bytes=(640 * MB, 1152 * MB)),
    SwimJobClass("huge", weight=0.02, num_tasks=range(64, 128),
                 input_bytes=(384 * MB, 1024 * MB),
                 footprint_bytes=(384 * MB, 640 * MB),
                 num_reduces=range(4, 12), shuffle_fraction=(0.5, 0.9),
                 reduce_footprint_bytes=(896 * MB, 1408 * MB)),
]

#: One homogeneous bin of long map-only jobs (1-2 tasks of roughly
#: 300-600 s each).  Arrivals outpace completions for most of the
#: replay, so the cluster holds its whole workload live at once --
#: hundreds of concurrent jobs for the JobTracker to scan per
#: heartbeat.  This is the regime the batched heartbeat dispatch
#: amortizes, and the mix bench_guard's 2000/5000-tracker scale cells
#: replay.
STEADY_CLASSES: List[SwimJobClass] = [
    SwimJobClass("span", weight=1.0, num_tasks=range(1, 3),
                 input_bytes=(2 * GB, 4 * GB)),
]

#: Named mixes the scale experiment (and the CLI) select by key.
MIXES: Dict[str, List[SwimJobClass]] = {
    "default": DEFAULT_CLASSES,
    "facebook": FACEBOOK_CLASSES,
    "shuffle-heavy": SHUFFLE_HEAVY_CLASSES,
    "memory-heavy": MEMORY_HEAVY_CLASSES,
    "steady": STEADY_CLASSES,
}


@dataclass
class ArrivalSpec:
    """How job inter-arrival times are drawn.

    * ``poisson`` -- independent exponential gaps with mean
      ``mean_interarrival`` (SWIM's baseline and the historical
      behaviour of this generator);
    * ``bursty`` -- compound arrivals: bursts of ``burst_size`` jobs
      spaced ``burst_spread`` seconds apart inside the burst, with
      exponential gaps between bursts sized so the *long-run* arrival
      rate still matches ``mean_interarrival``;
    * ``diurnal`` -- a Poisson process whose rate is modulated by
      ``1 + amplitude * sin(2*pi*t/period)``: each exponential gap is
      stretched or squeezed by the instantaneous rate, giving the slow
      day/night swell of production traces.
    """

    kind: str = "poisson"
    mean_interarrival: float = 30.0
    burst_size: range = field(default_factory=lambda: range(2, 6))
    burst_spread: float = 1.0
    period: float = 600.0
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "bursty", "diurnal"):
            raise ConfigurationError(
                f"unknown arrival kind {self.kind!r}; "
                "known: poisson, bursty, diurnal"
            )
        if self.mean_interarrival < 0:
            raise ConfigurationError("mean_interarrival may not be negative")
        if self.burst_size.start < 1 or self.burst_size.stop <= self.burst_size.start:
            raise ConfigurationError("burst_size must be a non-empty range >= 1")
        if self.burst_spread < 0:
            raise ConfigurationError("burst_spread may not be negative")
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")


class SwimGenerator:
    """Draws jobs from a class mix with a seeded arrival process."""

    def __init__(
        self,
        rng: RngStream,
        classes: Optional[Sequence[SwimJobClass]] = None,
        mean_interarrival: float = 30.0,
        arrival: Optional[ArrivalSpec] = None,
    ):
        self.rng = rng
        self.classes = (
            list(DEFAULT_CLASSES) if classes is None else list(classes)
        )
        if not self.classes:
            raise ConfigurationError("need at least one job class")
        self.arrival = arrival or ArrivalSpec(
            kind="poisson", mean_interarrival=mean_interarrival
        )
        self.mean_interarrival = self.arrival.mean_interarrival
        self._total_weight = sum(c.weight for c in self.classes)
        #: jobs left in the current burst (bursty arrivals only)
        self._burst_remaining = 0

    def _pick_class(self) -> SwimJobClass:
        point = self.rng.uniform(0.0, self._total_weight)
        acc = 0.0
        for cls in self.classes:
            acc += cls.weight
            if point <= acc:
                return cls
        return self.classes[-1]

    def generate_job(self, index: int) -> JobSpec:
        """Draw one job (submit_offset left at 0; see
        :meth:`generate_workload` for arrivals)."""
        cls = self._pick_class()
        num_tasks = self.rng.randint(cls.num_tasks.start, cls.num_tasks.stop - 1)
        tasks = []
        total_input = 0
        for t in range(num_tasks):
            footprint = self.rng.randint(*cls.footprint_bytes) if cls.footprint_bytes[1] else 0
            input_bytes = self.rng.randint(*cls.input_bytes)
            total_input += input_bytes
            tasks.append(
                TaskSpec(
                    kind=TaskKind.MAP,
                    input_bytes=input_bytes,
                    parse_rate=self.rng.uniform(*cls.parse_rate),
                    footprint_bytes=footprint,
                    profile=MemoryProfile.STATEFUL if footprint else MemoryProfile.STATELESS,
                    name=f"swim-{index}-{cls.name}-{t}",
                )
            )
        tasks.extend(self._reduce_tasks(cls, index, total_input))
        return JobSpec(name=f"swim-{index}-{cls.name}", tasks=tasks)

    def _reduce_tasks(
        self, cls: SwimJobClass, index: int, total_map_input: int
    ) -> List[TaskSpec]:
        """The job's reduce phase: ``shuffle_fraction`` of the map input
        split evenly over the drawn number of reduces.

        Footprint draws are guarded so classes without stateful
        reduces consume exactly the RNG stream they always did --
        existing mixes' workloads (and every digest pinned on them)
        are unchanged.
        """
        if cls.max_reduces <= 0:
            return []
        num_reduces = self.rng.randint(cls.num_reduces.start, cls.max_reduces)
        if num_reduces <= 0:
            return []
        fraction = self.rng.uniform(*cls.shuffle_fraction)
        share = int(total_map_input * fraction / num_reduces)
        tasks = []
        for t in range(num_reduces):
            footprint = (
                self.rng.randint(*cls.reduce_footprint_bytes)
                if cls.reduce_footprint_bytes[1]
                else 0
            )
            tasks.append(
                TaskSpec(
                    kind=TaskKind.REDUCE,
                    input_bytes=share,
                    parse_rate=self.rng.uniform(*cls.parse_rate),
                    shuffle_bytes=share,
                    footprint_bytes=footprint,
                    profile=(
                        MemoryProfile.STATEFUL
                        if footprint
                        else MemoryProfile.STATELESS
                    ),
                    name=f"swim-{index}-{cls.name}-r{t}",
                )
            )
        return tasks

    # -- arrivals -------------------------------------------------------------

    def _next_gap(self, clock: float) -> float:
        """Seconds until the next arrival after ``clock``."""
        spec = self.arrival
        if spec.kind == "poisson":
            return self.rng.exponential(spec.mean_interarrival)
        if spec.kind == "bursty":
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
                return self.rng.exponential(spec.burst_spread)
            size = self.rng.randint(
                spec.burst_size.start, spec.burst_size.stop - 1
            )
            # Every job still arrives every mean_interarrival seconds
            # in the long run: the inter-burst gap carries the burst's
            # whole budget minus the expected intra-burst spacing the
            # burst itself will consume.
            self._burst_remaining = size - 1
            budget = spec.mean_interarrival * size - spec.burst_spread * (size - 1)
            return self.rng.exponential(max(budget, 0.0))
        # diurnal: stretch each exponential gap by the instantaneous
        # rate 1 + A*sin(2*pi*t/period) (>= 1-A > 0 by validation).
        rate = 1.0 + spec.amplitude * math.sin(
            2.0 * math.pi * clock / spec.period
        )
        return self.rng.exponential(spec.mean_interarrival) / rate

    def generate_workload(self, num_jobs: int) -> List[JobSpec]:
        """Draw ``num_jobs`` jobs with the configured arrival process."""
        if num_jobs < 0:
            raise ConfigurationError("num_jobs may not be negative")
        self._burst_remaining = 0
        jobs = []
        clock = 0.0
        for i in range(num_jobs):
            job = self.generate_job(i)
            job.submit_offset = clock
            jobs.append(job)
            clock += self._next_gap(clock)
        return jobs
