"""SWIM-like synthetic workload generation.

The paper references the SWIM workload generator (Chen et al.,
MASCOTS 2011) as the model for its synthetic jobs.  SWIM derives job
mixes from production traces: many small jobs, a long tail of large
ones, Poisson-ish arrivals.  This module generates such mixes for the
scheduler-level experiments (eviction-policy study, HFSP study); the
two-job microbenchmark in :mod:`repro.workloads.synthetic` covers the
paper's own figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.rng import RngStream
from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec


@dataclass
class SwimJobClass:
    """One bin of the job-size histogram.

    ``weight`` is the class's share of generated jobs; task counts and
    sizes are drawn uniformly from the given ranges, mirroring how
    SWIM bins Facebook trace jobs.
    """

    name: str
    weight: float
    num_tasks: range = field(default_factory=lambda: range(1, 3))
    input_bytes: tuple = (64 * MB, 512 * MB)
    footprint_bytes: tuple = (0, 0)
    parse_rate: tuple = (6 * MB, 9 * MB)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError("class weight must be positive")


#: A small default mix: mostly tiny jobs, some medium, few large --
#: the canonical heavy-tailed MapReduce mix SWIM reports.
DEFAULT_CLASSES: List[SwimJobClass] = [
    SwimJobClass("small", weight=0.6, num_tasks=range(1, 3),
                 input_bytes=(64 * MB, 256 * MB)),
    SwimJobClass("medium", weight=0.3, num_tasks=range(2, 6),
                 input_bytes=(256 * MB, 512 * MB)),
    SwimJobClass("large", weight=0.1, num_tasks=range(4, 10),
                 input_bytes=(512 * MB, 1024 * MB),
                 footprint_bytes=(0, int(1.5 * GB))),
]


class SwimGenerator:
    """Draws jobs from a class mix with exponential inter-arrivals."""

    def __init__(
        self,
        rng: RngStream,
        classes: Optional[Sequence[SwimJobClass]] = None,
        mean_interarrival: float = 30.0,
    ):
        self.rng = rng
        self.classes = (
            list(DEFAULT_CLASSES) if classes is None else list(classes)
        )
        if not self.classes:
            raise ConfigurationError("need at least one job class")
        self.mean_interarrival = mean_interarrival
        self._total_weight = sum(c.weight for c in self.classes)

    def _pick_class(self) -> SwimJobClass:
        point = self.rng.uniform(0.0, self._total_weight)
        acc = 0.0
        for cls in self.classes:
            acc += cls.weight
            if point <= acc:
                return cls
        return self.classes[-1]

    def generate_job(self, index: int) -> JobSpec:
        """Draw one job (submit_offset left at 0; see
        :meth:`generate_workload` for arrivals)."""
        cls = self._pick_class()
        num_tasks = self.rng.randint(cls.num_tasks.start, cls.num_tasks.stop - 1)
        tasks = []
        for t in range(num_tasks):
            footprint = self.rng.randint(*cls.footprint_bytes) if cls.footprint_bytes[1] else 0
            tasks.append(
                TaskSpec(
                    kind=TaskKind.MAP,
                    input_bytes=self.rng.randint(*cls.input_bytes),
                    parse_rate=self.rng.uniform(*cls.parse_rate),
                    footprint_bytes=footprint,
                    profile=MemoryProfile.STATEFUL if footprint else MemoryProfile.STATELESS,
                    name=f"swim-{index}-{cls.name}-{t}",
                )
            )
        return JobSpec(name=f"swim-{index}-{cls.name}", tasks=tasks)

    def generate_workload(self, num_jobs: int) -> List[JobSpec]:
        """Draw ``num_jobs`` jobs with exponential inter-arrival times."""
        if num_jobs < 0:
            raise ConfigurationError("num_jobs may not be negative")
        jobs = []
        clock = 0.0
        for i in range(num_jobs):
            job = self.generate_job(i)
            job.submit_offset = clock
            jobs.append(job)
            clock += self.rng.exponential(self.mean_interarrival)
        return jobs
