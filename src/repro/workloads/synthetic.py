"""The paper's synthetic two-job microbenchmark.

Section IV-A: "our dummy scheduler runs two single-task, map-only
jobs, called th and tl (h and l stand for high and low priority
respectively).  tl processes a single-block file stored on HDFS, with
size 512 MB; th processes a single HDFS input block of size 512 MB.
Both jobs run synthetic mappers, which read and parse the randomly
generated input."

``light_task`` models the baseline experiments (stateless mappers
whose memory is just the execution engine); ``heavy_task`` models the
worst-case experiments (2 GB of dirtied state, "writing random values
to all memory at task startup, and reading them back when finalizing
the tasks").
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.units import GB, MB
from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec

#: Input block size used throughout the paper's evaluation.
PAPER_INPUT_BYTES = 512 * MB

#: Parse rate calibrated so a task lasts ~73 s, landing the baseline
#: wait curve on Figure 2a's endpoints (see repro.experiments.params).
DEFAULT_PARSE_RATE = 7 * MB

#: Worst-case footprint from Section IV-C ("2 GB in our case").
WORST_CASE_FOOTPRINT = 2 * GB


def light_task(
    input_bytes: int = PAPER_INPUT_BYTES,
    parse_rate: float = DEFAULT_PARSE_RATE,
    name: str = "",
    input_path: Optional[str] = None,
) -> TaskSpec:
    """A stateless synthetic mapper (the paper's baseline tasks)."""
    return TaskSpec(
        kind=TaskKind.MAP,
        input_bytes=input_bytes,
        parse_rate=parse_rate,
        footprint_bytes=0,
        profile=MemoryProfile.STATELESS,
        name=name,
        input_path=input_path,
    )


def heavy_task(
    footprint_bytes: int = WORST_CASE_FOOTPRINT,
    input_bytes: int = PAPER_INPUT_BYTES,
    parse_rate: float = DEFAULT_PARSE_RATE,
    name: str = "",
    input_path: Optional[str] = None,
) -> TaskSpec:
    """A stateful synthetic mapper (the paper's worst-case tasks)."""
    return TaskSpec(
        kind=TaskKind.MAP,
        input_bytes=input_bytes,
        parse_rate=parse_rate,
        footprint_bytes=footprint_bytes,
        profile=MemoryProfile.STATEFUL,
        name=name,
        input_path=input_path,
    )


def make_job(name: str, task: TaskSpec, priority: int = 0) -> JobSpec:
    """Wrap a single task spec as a single-task, map-only job."""
    return JobSpec(name=name, tasks=[task], priority=priority)


def two_job_microbenchmark(
    heavy: bool = False,
    tl_footprint: int = WORST_CASE_FOOTPRINT,
    th_footprint: int = WORST_CASE_FOOTPRINT,
    input_bytes: int = PAPER_INPUT_BYTES,
    parse_rate: float = DEFAULT_PARSE_RATE,
) -> Tuple[JobSpec, JobSpec]:
    """Build (tl, th): the low- and high-priority single-task jobs.

    With ``heavy=False`` both jobs are light-weight (Figure 2); with
    ``heavy=True`` both allocate the given footprints (Figures 3-4).
    """
    if heavy:
        tl_spec = heavy_task(tl_footprint, input_bytes, parse_rate, name="tl")
        th_spec = heavy_task(th_footprint, input_bytes, parse_rate, name="th")
    else:
        tl_spec = light_task(input_bytes, parse_rate, name="tl")
        th_spec = light_task(input_bytes, parse_rate, name="th")
    tl = JobSpec(name="tl", tasks=[tl_spec], priority=0)
    th = JobSpec(name="th", tasks=[th_spec], priority=10)
    return tl, th
