"""Workload specifications and generators.

The paper evaluates with synthetic map-only jobs ("synthetic mappers,
which read and parse the randomly generated input"), noting the setup
is analogous to SWIM-generated workloads.  This package provides:

* :mod:`repro.workloads.jobspec` -- declarative job/task specs the
  Hadoop engine turns into work plans;
* :mod:`repro.workloads.synthetic` -- the paper's two-job
  microbenchmark (light-weight and memory-hungry variants);
* :mod:`repro.workloads.swim` -- a SWIM-like trace generator for the
  multi-job scheduler studies.
"""

from repro.workloads.jobspec import JobSpec, MemoryProfile, TaskKind, TaskSpec
from repro.workloads.swim import SwimGenerator, SwimJobClass
from repro.workloads.synthetic import (
    heavy_task,
    light_task,
    make_job,
    two_job_microbenchmark,
)

__all__ = [
    "JobSpec",
    "TaskSpec",
    "TaskKind",
    "MemoryProfile",
    "SwimGenerator",
    "SwimJobClass",
    "light_task",
    "heavy_task",
    "make_job",
    "two_job_microbenchmark",
]
