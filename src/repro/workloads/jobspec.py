"""Declarative job and task specifications.

A :class:`TaskSpec` captures everything the Hadoop engine needs to
build a task's work plan: how much input it parses and at what rate,
how much memory it allocates (and whether it re-reads it when
finalising, as the paper's memory-hungry tasks do), and how much
output it commits.  A :class:`JobSpec` is a named bag of task specs
plus scheduling metadata (priority, submission offset).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.units import MB


class TaskKind(enum.Enum):
    """Map or Reduce (the paper's experiments are map-only, but the
    primitive "behaves in the same way for both Map and Reduce
    tasks")."""

    MAP = "map"
    REDUCE = "reduce"


class MemoryProfile(enum.Enum):
    """How a task treats its allocated state.

    ``STATELESS`` tasks allocate only the execution-engine footprint
    (JVM, I/O buffers).  ``STATEFUL`` tasks additionally allocate
    ``footprint_bytes`` at setup, dirty it all (random writes), and
    read it back at finalisation -- the paper's worst case.
    """

    STATELESS = "stateless"
    STATEFUL = "stateful"


@dataclass
class TaskSpec:
    """One task's resource demands.

    Attributes
    ----------
    kind:
        Map or reduce.
    input_bytes:
        Bytes of input read and parsed (one HDFS block in the paper).
    parse_rate:
        Bytes parsed per second per core; the knob that sets task
        duration.
    footprint_bytes:
        Extra anonymous memory allocated at setup (0 for light tasks;
        2 GB and 2.5 GB in the paper's worst-case experiments).
    profile:
        Whether the footprint is dirtied and re-read (STATEFUL) or the
        task is a pure streaming parser (STATELESS).
    output_bytes:
        Bytes written at commit.
    input_path:
        Optional HDFS path; when set, locality information is taken
        from the namenode and the attempt prefers replica hosts.
    shuffle_bytes:
        Reduce only: bytes fetched from map outputs.
    shuffle_sources:
        Reduce only: ``(host, bytes)`` pairs naming where the map
        outputs live.  Attached at attempt-creation time by clusters
        with a network fabric (see
        :meth:`repro.hadoop.cluster.HadoopCluster`); when empty, the
        shuffle falls back to the local disk-read stand-in.
    resume_read_bytes:
        Bytes of checkpoint read back at startup before real work;
        used by Natjam-style fast-forwarded reschedules.
    """

    kind: TaskKind = TaskKind.MAP
    input_bytes: int = 512 * MB
    parse_rate: float = 7 * MB
    footprint_bytes: int = 0
    profile: MemoryProfile = MemoryProfile.STATELESS
    output_bytes: int = 8 * MB
    input_path: Optional[str] = None
    shuffle_bytes: int = 0
    shuffle_sources: tuple = ()
    resume_read_bytes: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.output_bytes < 0 or self.footprint_bytes < 0:
            raise ConfigurationError("task sizes may not be negative")
        if self.parse_rate <= 0:
            raise ConfigurationError("parse_rate must be positive")
        if self.shuffle_bytes < 0 or self.resume_read_bytes < 0:
            raise ConfigurationError("shuffle/resume sizes may not be negative")
        if self.kind is TaskKind.MAP and (self.shuffle_bytes or self.shuffle_sources):
            raise ConfigurationError("map tasks do not shuffle")
        if any(nbytes < 0 for _, nbytes in self.shuffle_sources):
            raise ConfigurationError("shuffle source sizes may not be negative")

    @property
    def stateful(self) -> bool:
        """True when the task dirties and re-reads a memory footprint."""
        return self.profile is MemoryProfile.STATEFUL and self.footprint_bytes > 0

    def with_footprint(self, footprint_bytes: int) -> "TaskSpec":
        """Copy of this spec with a (stateful) memory footprint."""
        return replace(
            self,
            footprint_bytes=footprint_bytes,
            profile=MemoryProfile.STATEFUL if footprint_bytes else self.profile,
        )


_job_ids = itertools.count(1)


@dataclass
class JobSpec:
    """A named collection of task specs plus scheduling metadata.

    ``deadline_seconds`` (relative to submission) is consumed by the
    deadline scheduler; other schedulers ignore it.
    """

    name: str
    tasks: List[TaskSpec] = field(default_factory=list)
    priority: int = 0
    submit_offset: float = 0.0
    user: str = "default"
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"job-{next(_job_ids)}"
        if self.submit_offset < 0:
            raise ConfigurationError("submit_offset may not be negative")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be positive")

    @property
    def map_tasks(self) -> List[TaskSpec]:
        """The map task specs."""
        return [t for t in self.tasks if t.kind is TaskKind.MAP]

    @property
    def reduce_tasks(self) -> List[TaskSpec]:
        """The reduce task specs."""
        return [t for t in self.tasks if t.kind is TaskKind.REDUCE]

    @property
    def total_input_bytes(self) -> int:
        """Sum of all task inputs -- the 'size' that size-based
        schedulers such as HFSP prioritise on."""
        return sum(t.input_bytes for t in self.tasks)

    def estimated_serial_seconds(self) -> float:
        """Rough single-slot runtime estimate (used by HFSP's virtual
        size and by the deadline scheduler)."""
        return sum(t.input_bytes / t.parse_rate for t in self.tasks)
