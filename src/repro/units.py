"""Units helpers: data sizes, rates, and time formatting.

The simulator accounts memory and I/O in plain integers (bytes) and
floats (seconds).  This module centralises the constants and the
parsing/formatting helpers so experiment code can say ``MB * 512`` or
``parse_size("2.5 GB")`` instead of sprinkling magic numbers.

All sizes are binary units (1 KB = 1024 bytes), matching how Hadoop
configuration and ``/proc`` report memory.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

#: One kibibyte in bytes.
KB = 1024
#: One mebibyte in bytes.
MB = 1024 * KB
#: One gibibyte in bytes.
GB = 1024 * MB
#: One tebibyte in bytes.
TB = 1024 * GB

#: Page size used by the OS model (bytes).  Linux x86-64 default.
PAGE_SIZE = 4 * KB

_SIZE_RE = re.compile(
    r"""^\s*
        (?P<value>\d+(?:\.\d+)?)
        \s*
        (?P<unit>[KMGT]?i?B?|[kmgt]?i?b?)?
        \s*$""",
    re.VERBOSE,
)

_UNIT_FACTORS = {
    "": 1,
    "b": 1,
    "k": KB,
    "kb": KB,
    "kib": KB,
    "m": MB,
    "mb": MB,
    "mib": MB,
    "g": GB,
    "gb": GB,
    "gib": GB,
    "t": TB,
    "tb": TB,
    "tib": TB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable data size into bytes.

    Accepts plain numbers (taken as bytes) and suffixed strings such as
    ``"512 MB"``, ``"2.5GB"``, ``"4GiB"``, or ``"128k"``.

    >>> parse_size("512 MB") == 512 * MB
    True
    >>> parse_size(4096)
    4096

    Raises :class:`~repro.errors.ConfigurationError` for unparseable
    input or negative values.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ConfigurationError(f"size may not be negative: {text!r}")
        return int(text)
    match = _SIZE_RE.match(text)
    if not match:
        raise ConfigurationError(f"unparseable data size: {text!r}")
    value = float(match.group("value"))
    unit = (match.group("unit") or "").lower()
    factor = _UNIT_FACTORS.get(unit)
    if factor is None:
        raise ConfigurationError(f"unknown size unit in {text!r}")
    return int(value * factor)


def format_size(num_bytes: int | float, precision: int = 1) -> str:
    """Format a byte count as a short human-readable string.

    >>> format_size(512 * MB)
    '512.0 MB'
    >>> format_size(1536)
    '1.5 KB'
    """
    value = float(num_bytes)
    sign = "-" if value < 0 else ""
    value = abs(value)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if value >= factor:
            return f"{sign}{value / factor:.{precision}f} {unit}"
    return f"{sign}{value:.0f} B"


def format_duration(seconds: float) -> str:
    """Format a duration in seconds as ``1h02m03.4s`` style text.

    >>> format_duration(3723.4)
    '1h02m03.4s'
    >>> format_duration(42.0)
    '42.0s'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    hours, rem = divmod(seconds, 3600.0)
    minutes, secs = divmod(rem, 60.0)
    if hours >= 1:
        return f"{int(hours)}h{int(minutes):02d}m{secs:04.1f}s"
    if minutes >= 1:
        return f"{int(minutes)}m{secs:04.1f}s"
    return f"{secs:.1f}s"


def pages_for(num_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Number of whole pages needed to hold ``num_bytes`` bytes.

    >>> pages_for(1)
    1
    >>> pages_for(8192)
    2
    """
    if num_bytes <= 0:
        return 0
    return -(-num_bytes // page_size)


def page_align(num_bytes: int, page_size: int = PAGE_SIZE) -> int:
    """Round ``num_bytes`` up to a whole number of pages (in bytes)."""
    return pages_for(num_bytes, page_size) * page_size
