"""Fault injection and recovery studies.

The paper evaluates suspend/resume preemption on healthy clusters;
this package supplies the missing axis: *what happens under failure*.
ATLAS reports that ~40% of production Hadoop tasks experience failures
the scheduler should anticipate, and preemption telemetry from the
Open Science Grid shows wasted work is the metric that separates
recovery strategies.  The pieces:

* :mod:`repro.faults.plan` -- declarative, seeded fault plans (node
  crash + restart, slow-node degradation, transient task failures,
  page-cache corruption);
* :mod:`repro.faults.injector` -- delivers planned faults through the
  same code paths real faults take (silent tracker death, degraded
  rate resources, SIGTERM to victim processes);
* :mod:`repro.faults.scenarios` -- the canonical scenario library the
  ``faults`` experiment, benchmarks and tests share.

Recovery itself lives in the Hadoop layer (heartbeat-timeout tracker
expiry, attempt retry caps, blacklisting, completed-map re-execution,
speculative execution); this package only breaks things.
"""

from repro.faults.injector import FaultInjector, InjectorStats
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, random_plan
from repro.faults.scenarios import build_scenario, list_scenarios

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultInjector",
    "InjectorStats",
    "random_plan",
    "build_scenario",
    "list_scenarios",
]
