"""Canonical fault scenarios for the comparative studies.

Each scenario is a named :class:`~repro.faults.plan.FaultPlan` builder
with the timing tuned to the two-job contention window the paper's
experiments revolve around: the background job is well underway, the
urgent job has (or is about to) arrive, and then something breaks.
Keeping the scenarios here -- instead of inline in the experiment --
lets tests, benchmarks and the CLI refer to the same fault sequences.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan

#: scenario-name -> builder(hosts) registry
SCENARIOS: Dict[str, Callable[[List[str]], FaultPlan]] = {}


def scenario(name: str):
    """Register a scenario builder under ``name``."""

    def register(builder: Callable[[List[str]], FaultPlan]):
        SCENARIOS[name] = builder
        return builder

    return register


def build_scenario(name: str, hosts: List[str]) -> FaultPlan:
    """Build a registered scenario for a concrete host list."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown fault scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        )
    if not hosts:
        raise ConfigurationError("a fault scenario needs at least one host")
    return SCENARIOS[name](hosts)


def list_scenarios() -> List[str]:
    """Registered scenario names."""
    return sorted(SCENARIOS)


@scenario("none")
def _healthy(hosts: List[str]) -> FaultPlan:
    """Control: no faults (isolates the preemption primitive's cost)."""
    return FaultPlan()


@scenario("node-crash")
def _node_crash(hosts: List[str]) -> FaultPlan:
    """The last node crashes mid-contention and reboots 45 s later.

    The last host is chosen (rather than the first) so the crash hits
    a node running background work, not the one that usually hosts the
    job setup task.
    """
    return FaultPlan().crash(at=45.0, host=hosts[-1], restart_after=45.0)


@scenario("straggler")
def _straggler(hosts: List[str]) -> FaultPlan:
    """One node degrades to 30% speed early and never recovers --
    the classic speculative-execution target."""
    return FaultPlan().slow_node(at=12.0, host=hosts[-1], factor=0.3)


@scenario("transient-failure")
def _transient(hosts: List[str]) -> FaultPlan:
    """Two task attempts die of transient errors, spaced out so the
    retry of the first can itself be running when the second hits."""
    return FaultPlan().fail_task(at=30.0).fail_task(at=70.0)


@scenario("cache-corruption")
def _corruption(hosts: List[str]) -> FaultPlan:
    """A latent disk error invalidates the first node's page cache and
    kills the attempt reading through it."""
    return FaultPlan().corrupt_cache(
        at=40.0, host=hosts[0], fraction=1.0, fail_running=True
    )
