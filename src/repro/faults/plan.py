"""Declarative fault plans.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records
-- *what* goes wrong, *where* and *when* -- decoupled from the
machinery that makes it happen (:class:`~repro.faults.injector.
FaultInjector`).  Plans are plain data so experiments can log them,
tests can assert on them, and the same scenario can be replayed under
every preemption primitive.

Determinism contract: a plan is either fully explicit (every event
carries its time and target) or generated from a named
:class:`~repro.sim.rng.RngStream`, so two runs with the same master
seed inject byte-identical fault sequences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    """The fault taxonomy the injector understands."""

    #: the node's TaskTracker (and every process on it) dies silently;
    #: optionally restarts after ``duration`` seconds
    NODE_CRASH = "node-crash"
    #: the node's CPU and disk run at ``factor`` of nominal speed,
    #: optionally recovering after ``duration`` seconds
    SLOW_NODE = "slow-node"
    #: one running task attempt aborts with a task error (retryable)
    TASK_FAIL = "task-fail"
    #: ``fraction`` of the node's page cache is corrupted and dropped;
    #: with ``fail_running`` one attempt on the node dies of an I/O error
    CACHE_CORRUPTION = "cache-corruption"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``host`` may be None for :data:`FaultKind.TASK_FAIL` (the injector
    then picks a victim attempt anywhere, deterministically); every
    other kind targets a specific node.  ``job_name`` narrows
    TASK_FAIL victims to one job's attempts.
    """

    at: float
    kind: FaultKind
    host: Optional[str] = None
    duration: Optional[float] = None
    factor: float = 1.0
    fraction: float = 1.0
    job_name: Optional[str] = None
    fail_running: bool = False

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("fault time may not be negative")
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("fault duration must be positive")
        if self.kind is FaultKind.SLOW_NODE and not 0 < self.factor < 1:
            raise ConfigurationError(
                "slow-node factor must be in (0, 1) -- 1.0 is a healthy node"
            )
        if self.kind is FaultKind.CACHE_CORRUPTION and not 0 < self.fraction <= 1:
            raise ConfigurationError("corruption fraction must be in (0, 1]")
        if self.kind in (FaultKind.NODE_CRASH, FaultKind.SLOW_NODE,
                         FaultKind.CACHE_CORRUPTION) and not self.host:
            raise ConfigurationError(f"{self.kind.value} needs a target host")

    def describe(self) -> str:
        """Short human-readable form for traces and reports."""
        bits = [f"t={self.at:g}", self.kind.value]
        if self.host:
            bits.append(self.host)
        if self.kind is FaultKind.SLOW_NODE:
            bits.append(f"x{self.factor:g}")
        if self.duration is not None:
            bits.append(f"for {self.duration:g}s")
        return " ".join(bits)


@dataclass
class FaultPlan:
    """An ordered, validated collection of fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    # -- builders (fluent, chainable) ------------------------------------------

    def crash(
        self, at: float, host: str, restart_after: Optional[float] = None
    ) -> "FaultPlan":
        """Node crash at ``at``; restarts ``restart_after`` s later if given."""
        self.events.append(
            FaultEvent(at=at, kind=FaultKind.NODE_CRASH, host=host,
                       duration=restart_after)
        )
        return self

    def slow_node(
        self, at: float, host: str, factor: float,
        duration: Optional[float] = None,
    ) -> "FaultPlan":
        """Degrade ``host`` to ``factor`` of nominal speed at ``at``."""
        self.events.append(
            FaultEvent(at=at, kind=FaultKind.SLOW_NODE, host=host,
                       factor=factor, duration=duration)
        )
        return self

    def fail_task(
        self, at: float, job_name: Optional[str] = None,
        host: Optional[str] = None,
    ) -> "FaultPlan":
        """Abort one running attempt (of ``job_name``/on ``host`` if given)."""
        self.events.append(
            FaultEvent(at=at, kind=FaultKind.TASK_FAIL, host=host,
                       job_name=job_name)
        )
        return self

    def corrupt_cache(
        self, at: float, host: str, fraction: float = 1.0,
        fail_running: bool = False,
    ) -> "FaultPlan":
        """Drop ``fraction`` of ``host``'s page cache (disk corruption)."""
        self.events.append(
            FaultEvent(at=at, kind=FaultKind.CACHE_CORRUPTION, host=host,
                       fraction=fraction, fail_running=fail_running)
        )
        return self

    # -- views ---------------------------------------------------------------------

    def ordered(self) -> List[FaultEvent]:
        """Events by injection time (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.at)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.ordered())

    def __len__(self) -> int:
        return len(self.events)

    def describe(self) -> str:
        """One line per event, in injection order."""
        return "; ".join(e.describe() for e in self.ordered()) or "<no faults>"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultPlan({self.describe()})"


def random_plan(
    rng,
    hosts: List[str],
    horizon: float,
    crashes: int = 0,
    stragglers: int = 0,
    task_failures: int = 0,
    restart_after: Optional[float] = 60.0,
    slow_factor_range=(0.2, 0.6),
) -> FaultPlan:
    """Draw a seeded random plan from an :class:`~repro.sim.rng.RngStream`.

    Event times are uniform over ``[0, horizon]`` and hosts are drawn
    uniformly, so the plan is a pure function of the stream's seed --
    the fault-study requirement that reruns reproduce identical
    numbers falls out of this.
    """
    if not hosts:
        raise ConfigurationError("random_plan needs at least one host")
    if horizon <= 0:
        raise ConfigurationError("horizon must be positive")
    plan = FaultPlan()
    for _ in range(crashes):
        plan.crash(rng.uniform(0, horizon), rng.choice(hosts),
                   restart_after=restart_after)
    for _ in range(stragglers):
        plan.slow_node(
            rng.uniform(0, horizon),
            rng.choice(hosts),
            factor=rng.uniform(*slow_factor_range),
        )
    for _ in range(task_failures):
        plan.fail_task(rng.uniform(0, horizon))
    return plan
