"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan`
into simulator events.

Every fault is delivered through the same interfaces real faults use:

* **node crash** kills the TaskTracker daemon silently -- no goodbye
  message -- so detection happens through the JobTracker's
  heartbeat-timeout monitor, and recovery through attempt requeueing
  and completed-map re-execution;
* **slow node** degrades the node's CPU and disk
  :class:`~repro.osmodel.resources.RateResource` objects, so running
  attempts genuinely slow down (and speculative execution sees real
  progress-rate divergence, not a scripted flag);
* **transient task failure** delivers SIGTERM to one victim process,
  which surfaces as a FAILED attempt in the next heartbeat and goes
  through the ``mapred.map.max.attempts`` retry path;
* **cache corruption** drops (a fraction of) a node's page cache --
  modelling latent sector errors under the cached input -- optionally
  killing the attempt that was reading it.

Victim selection for TASK_FAIL draws from the cluster's seeded
``faults`` RNG stream over a deterministically ordered candidate list,
so a plan injects the same faults on every same-seed run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.hadoop.attempt import AttemptRole, TaskAttempt
from repro.osmodel.signals import Signal

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.cluster import HadoopCluster


@dataclass
class InjectionRecord:
    """What actually happened when one fault event fired."""

    at: float
    event: FaultEvent
    detail: str = ""


@dataclass
class InjectorStats:
    """Aggregate injection counters for reports and tests."""

    crashes: int = 0
    restarts: int = 0
    slowdowns: int = 0
    task_failures: int = 0
    corruptions: int = 0
    skipped: int = 0
    records: List[InjectionRecord] = field(default_factory=list)


class FaultInjector:
    """Schedules and executes a fault plan against one cluster."""

    RNG_STREAM = "faults"

    def __init__(self, cluster: "HadoopCluster", plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.rng = cluster.sim.rng.stream(self.RNG_STREAM)
        self.stats = InjectorStats()
        self._installed = False
        #: per-host generation counter so a bounded slow-node fault's
        #: heal event cannot clobber a newer degradation of the host
        self._slow_generation: dict = {}

    # -- wiring ----------------------------------------------------------------

    def install(self) -> None:
        """Schedule every plan event on the cluster's sim clock."""
        if self._installed:
            return
        self._installed = True
        for event in self.plan.ordered():
            self.cluster.sim.schedule_at(
                event.at,
                self._fire,
                event,
                label=f"fault.{event.kind.value}",
            )

    def _fire(self, event: FaultEvent) -> None:
        self.cluster.trace("fault.inject", fault=event.describe())
        if event.kind is FaultKind.NODE_CRASH:
            self._crash(event)
        elif event.kind is FaultKind.SLOW_NODE:
            self._slow_node(event)
        elif event.kind is FaultKind.TASK_FAIL:
            self._fail_task(event)
        elif event.kind is FaultKind.CACHE_CORRUPTION:
            self._corrupt_cache(event)

    def _record(self, event: FaultEvent, detail: str) -> None:
        self.stats.records.append(
            InjectionRecord(at=self.cluster.sim.now, event=event, detail=detail)
        )

    # -- fault implementations ----------------------------------------------------

    def _crash(self, event: FaultEvent) -> None:
        tracker = self.cluster.trackers.get(event.host)
        if tracker is None or not tracker.started:
            self.stats.skipped += 1
            self._record(event, "skipped: tracker not running")
            return
        self.cluster.crash_tracker(event.host)
        self.stats.crashes += 1
        self._record(event, "crashed")
        if event.duration is not None:
            self.cluster.sim.schedule(
                event.duration,
                self._restart,
                event,
                label=f"fault.restart:{event.host}",
            )

    def _restart(self, event: FaultEvent) -> None:
        tracker = self.cluster.trackers.get(event.host)
        if tracker is None or tracker.started:
            self.stats.skipped += 1
            self._record(event, "restart skipped")
            return
        self.cluster.restart_tracker(event.host)
        self.stats.restarts += 1
        self._record(event, "restarted")

    def _slow_node(self, event: FaultEvent) -> None:
        kernel = self.cluster.kernels.get(event.host)
        if kernel is None:
            self.stats.skipped += 1
            self._record(event, "skipped: unknown host")
            return
        generation = self._slow_generation.get(event.host, 0) + 1
        self._slow_generation[event.host] = generation
        self._set_node_speed(kernel, event.factor)
        self.stats.slowdowns += 1
        self._record(event, f"degraded to x{event.factor:g}")
        if event.duration is not None:
            self.cluster.sim.schedule(
                event.duration,
                self._heal_node,
                event,
                generation,
                label=f"fault.heal:{event.host}",
            )

    def _heal_node(self, event: FaultEvent, generation: int) -> None:
        if self._slow_generation.get(event.host) != generation:
            # A newer slow-node fault superseded this one; its heal (if
            # any) owns the host now.
            self._record(event, "heal superseded")
            return
        kernel = self.cluster.kernels.get(event.host)
        if kernel is None:
            return
        self._set_node_speed(kernel, 1.0)
        self._record(event, "healed")

    @staticmethod
    def _set_node_speed(kernel, factor: float) -> None:
        # One virtual-rate update per device; in-flight claims keep
        # their completion order and only the armed crossing events
        # move (no fleet-wide reschedule).
        kernel.set_speed_factor(factor)

    def _fail_task(self, event: FaultEvent) -> None:
        victim = self._pick_victim(event)
        if victim is None:
            self.stats.skipped += 1
            self._record(event, "skipped: no victim attempt")
            return
        self.stats.task_failures += 1
        self._record(event, f"SIGTERM {victim.attempt_id}")
        # SIGTERM with the default disposition -> ExitReason.TERMINATED
        # -> AttemptState.FAILED -> the JobTracker's retry path.
        victim.kernel.signal(victim.pid, Signal.SIGTERM)

    def _corrupt_cache(self, event: FaultEvent) -> None:
        kernel = self.cluster.kernels.get(event.host)
        if kernel is None:
            self.stats.skipped += 1
            self._record(event, "skipped: unknown host")
            return
        cache = kernel.vmm.page_cache
        dropped = cache.shrink(int(cache.size * event.fraction))
        self.stats.corruptions += 1
        detail = f"dropped {dropped} cached bytes"
        if event.fail_running:
            victim = self._pick_victim(
                FaultEvent(at=event.at, kind=FaultKind.TASK_FAIL,
                           host=event.host)
            )
            if victim is not None:
                detail += f"; SIGTERM {victim.attempt_id}"
                self.stats.task_failures += 1
                victim.kernel.signal(victim.pid, Signal.SIGTERM)
        self._record(event, detail)

    # -- victim selection -------------------------------------------------------------

    def _pick_victim(self, event: FaultEvent) -> Optional[TaskAttempt]:
        """One live, running work attempt matching the event's filters.

        Candidates are gathered in sorted attempt-id order and drawn
        from the seeded stream, so selection is deterministic.
        """
        job_id: Optional[str] = None
        if event.job_name is not None:
            for job in self.cluster.jobtracker.jobs.values():
                if job.spec.name == event.job_name:
                    job_id = job.job_id
            if job_id is None:
                return None
        candidates: List[TaskAttempt] = []
        for host in sorted(self.cluster.trackers):
            if event.host is not None and host != event.host:
                continue
            tracker = self.cluster.trackers[host]
            for attempt_id in sorted(tracker.attempts):
                attempt = tracker.attempts[attempt_id]
                if attempt.state.terminal or attempt.role is not AttemptRole.TASK:
                    continue
                if attempt.process is None or not attempt.process.running:
                    continue  # suspended images cannot hit a task error
                if job_id is not None and attempt.job_id != job_id:
                    continue
                candidates.append(attempt)
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FaultInjector(events={len(self.plan)}, "
            f"crashes={self.stats.crashes}, fails={self.stats.task_failures})"
        )
