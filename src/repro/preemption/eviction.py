"""Task eviction policies (Section V-A).

"An important topic that falls under the responsibility of the
schedulers is to decide which task(s) to evict once a high-priority
job needs time to execute."  The paper discusses two concrete
policies and our experiments add baselines:

* **closest-to-completion** (Cho et al.): suspend tasks nearest their
  end "to have all tasks of a job as close to each other as
  possible";
* **smallest-memory-footprint** (the paper's suggestion): "another
  possible strategy may aim to suspend tasks with smaller memory
  footprints, which reduces overheads according to our experimental
  results";
* furthest-from-completion, largest-memory and random as controls.

A policy ranks :class:`EvictionCandidate` views of running tasks; the
caller (a scheduler or the experiment harness) preempts the top ``k``
with its chosen primitive.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress
from repro.sim.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.cluster import HadoopCluster


@dataclass
class EvictionCandidate:
    """A running task as seen by an eviction policy."""

    tip: TaskInProgress
    progress: float
    resident_bytes: int
    tracker: str

    @property
    def tip_id(self) -> str:
        """Convenience accessor."""
        return self.tip.tip_id


def collect_candidates(
    cluster: "HadoopCluster", protect_jobs: Optional[set] = None
) -> List[EvictionCandidate]:
    """All preemptible (RUNNING) work tasks in the cluster, excluding
    jobs in ``protect_jobs`` (by spec name)."""
    protect = protect_jobs or set()
    candidates = []
    for tracker in cluster.trackers.values():
        for attempt in tracker.attempts.values():
            if attempt.state.value not in ("RUNNING", "STARTING"):
                continue
            if attempt.role.value != "task":
                continue
            job = cluster.jobtracker.jobs.get(attempt.job_id)
            if job is None or job.spec.name in protect:
                continue
            tip = cluster.jobtracker.tip(attempt.tip_id)
            if tip.state is not TipState.RUNNING:
                continue
            candidates.append(
                EvictionCandidate(
                    tip=tip,
                    progress=attempt.progress(),
                    resident_bytes=attempt.resident_bytes(),
                    tracker=tracker.host,
                )
            )
    return candidates


class EvictionPolicy(abc.ABC):
    """Ranks candidates; lower rank is evicted first."""

    name = "abstract"

    @abc.abstractmethod
    def rank(self, candidates: List[EvictionCandidate]) -> List[EvictionCandidate]:
        """Return candidates ordered by eviction preference."""

    def choose(
        self, candidates: List[EvictionCandidate], count: int
    ) -> List[EvictionCandidate]:
        """The ``count`` candidates to evict."""
        if count <= 0:
            return []
        return self.rank(list(candidates))[:count]


class ClosestToCompletionPolicy(EvictionPolicy):
    """Suspend the most-complete tasks (Natjam's SRT-style policy):
    their remaining work is shortest, so resuming them soon keeps job
    completion times tight."""

    name = "closest-to-completion"

    def rank(self, candidates: List[EvictionCandidate]) -> List[EvictionCandidate]:
        return sorted(candidates, key=lambda c: (-c.progress, c.tip_id))


class FurthestFromCompletionPolicy(EvictionPolicy):
    """Evict the least-complete tasks: if the primitive is kill, this
    wastes the least work."""

    name = "furthest-from-completion"

    def rank(self, candidates: List[EvictionCandidate]) -> List[EvictionCandidate]:
        return sorted(candidates, key=lambda c: (c.progress, c.tip_id))


class SmallestMemoryPolicy(EvictionPolicy):
    """Evict tasks with the smallest resident footprint -- the paper's
    suggestion for suspend/resume, since paging overhead scales with
    the memory that may hit swap (Figure 4)."""

    name = "smallest-memory"

    def rank(self, candidates: List[EvictionCandidate]) -> List[EvictionCandidate]:
        return sorted(candidates, key=lambda c: (c.resident_bytes, c.tip_id))


class SuspendCostPolicy(EvictionPolicy):
    """Resident-footprint x progress cost model for suspend victims.

    A suspension's overhead scales with the resident bytes that may
    round-trip through swap (Figure 4), while the *scheduling* cost of
    freezing a task scales with the work it still has to do -- a
    nearly-done task resumes and completes quickly (Cho et al.'s
    closest-to-completion argument), a barely-started one holds its
    job open for its whole body.  The policy evicts the candidate with
    the smallest

        resident_bytes * (alpha + 1 - progress)

    first: small footprints and high progress are cheap; ``alpha``
    keeps the footprint term alive for tasks at the finish line (and
    breaks the degenerate all-zero ordering for stateless fleets).
    """

    name = "suspend-cost"

    def __init__(self, alpha: float = 0.25):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha

    def rank(self, candidates: List[EvictionCandidate]) -> List[EvictionCandidate]:
        return sorted(
            candidates,
            key=lambda c: (
                c.resident_bytes * (self.alpha + 1.0 - c.progress),
                c.tip_id,
            ),
        )


class LargestMemoryPolicy(EvictionPolicy):
    """Control policy: evict the biggest tasks first (worst case for
    suspend/resume paging)."""

    name = "largest-memory"

    def rank(self, candidates: List[EvictionCandidate]) -> List[EvictionCandidate]:
        return sorted(candidates, key=lambda c: (-c.resident_bytes, c.tip_id))


class RandomPolicy(EvictionPolicy):
    """Control policy: uniform-random victims."""

    name = "random"

    def __init__(self, rng: RngStream):
        self.rng = rng

    def rank(self, candidates: List[EvictionCandidate]) -> List[EvictionCandidate]:
        shuffled = sorted(candidates, key=lambda c: c.tip_id)
        self.rng.shuffle(shuffled)
        return shuffled
