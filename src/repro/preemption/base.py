"""The preemption-primitive interface.

A primitive answers two calls:

* :meth:`PreemptionPrimitive.preempt` -- take the slot away from a
  running task (or decide not to, for ``wait``);
* :meth:`PreemptionPrimitive.restore` -- give the task its resources
  back once the high-priority work is done (resume, reschedule, or
  no-op depending on the strategy).

Primitives are deliberately *mechanism only*: choosing which task to
evict is an eviction policy (:mod:`repro.preemption.eviction`), and
choosing when is the scheduler's business -- exactly the separation
the paper draws between Sections III and V.
"""

from __future__ import annotations

import abc
import enum
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError, NotPreemptibleError
from repro.hadoop.states import TipState
from repro.hadoop.task import TaskInProgress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hadoop.cluster import HadoopCluster


class PrimitiveName(enum.Enum):
    """Registry keys for the four primitives."""

    WAIT = "wait"
    KILL = "kill"
    SUSPEND = "suspend"
    NATJAM = "natjam"


class PreemptionPrimitive(abc.ABC):
    """Base class: a preemption mechanism bound to a cluster."""

    name: PrimitiveName

    def __init__(self, cluster: "HadoopCluster"):
        self.cluster = cluster
        self.jobtracker = cluster.jobtracker
        self.preempt_count = 0
        self.restore_count = 0

    # -- mechanism ---------------------------------------------------------

    @abc.abstractmethod
    def preempt(self, tip: TaskInProgress) -> None:
        """Take the slot from ``tip``'s running attempt."""

    @abc.abstractmethod
    def restore(self, tip: TaskInProgress) -> None:
        """Give ``tip`` its resources back (semantics vary by strategy)."""

    # -- shared helpers ------------------------------------------------------

    def _require_running(self, tip: TaskInProgress) -> None:
        if tip.state is not TipState.RUNNING:
            raise NotPreemptibleError(
                f"{tip.tip_id} is {tip.state.value}, not RUNNING"
            )

    def attempt_of(self, tip: TaskInProgress):
        """The live attempt object behind a TIP (or None)."""
        if tip.tracker is None or tip.active_attempt_id is None:
            return None
        tracker = self.cluster.trackers.get(tip.tracker)
        if tracker is None:
            return None
        return tracker.attempts.get(tip.active_attempt_id)

    def trace(self, label: str, **fields) -> None:
        """Record a primitive-level trace event."""
        self.cluster.trace(f"preempt.{label}", primitive=self.name.value, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


def make_primitive(
    name, cluster: "HadoopCluster", **kwargs
) -> PreemptionPrimitive:
    """Factory: build a primitive by name ('wait', 'kill', 'suspend',
    'natjam' or a :class:`PrimitiveName`)."""
    from repro.preemption.kill import KillPrimitive
    from repro.preemption.natjam import NatjamPrimitive
    from repro.preemption.suspend import SuspendResumePrimitive
    from repro.preemption.wait import WaitPrimitive

    if isinstance(name, str):
        try:
            name = PrimitiveName(name)
        except ValueError:
            raise ConfigurationError(f"unknown primitive {name!r}")
    registry = {
        PrimitiveName.WAIT: WaitPrimitive,
        PrimitiveName.KILL: KillPrimitive,
        PrimitiveName.SUSPEND: SuspendResumePrimitive,
        PrimitiveName.NATJAM: NatjamPrimitive,
    }
    return registry[name](cluster, **kwargs)
